#include "search/worker_protocol.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <cerrno>
#include <csignal>
#include <cstring>
#include <poll.h>
#include <unistd.h>
#endif

#include "data/preprocess.hpp"
#include "flops/profiler.hpp"
#include "util/backend_registry.hpp"
#include "util/fault_injection.hpp"
#include "util/interrupt.hpp"
#include "util/logging.hpp"
#include "util/socket.hpp"
#include "util/subprocess.hpp"

namespace qhdl::search {

// --- framing --------------------------------------------------------------

#if defined(__unix__) || defined(__APPLE__)

bool write_frame(int fd, const std::string& payload) {
  const std::string wire = frame_wire(payload);
  std::size_t written = 0;
  while (written < wire.size()) {
    const ssize_t n =
        ::write(fd, wire.data() + written, wire.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // EPIPE/EBADF: the peer is gone
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

#else

bool write_frame(int, const std::string&) { return false; }

#endif

std::string frame_wire(const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) {
    throw ProtocolError("refusing to send oversized frame (" +
                        std::to_string(payload.size()) + " bytes exceeds " +
                        std::to_string(kMaxFrameBytes) + "-byte limit)");
  }
  const auto length = static_cast<std::uint32_t>(payload.size());
  char frame_header[4] = {
      static_cast<char>((length >> 24) & 0xff),
      static_cast<char>((length >> 16) & 0xff),
      static_cast<char>((length >> 8) & 0xff),
      static_cast<char>(length & 0xff),
  };
  std::string wire{frame_header, 4};
  wire += payload;
  return wire;
}

void FrameReader::feed(const char* data, std::size_t size) {
  buffer_.append(data, size);
}

std::optional<std::string> FrameReader::next() {
  if (buffer_.size() < 4) return std::nullopt;
  const auto byte = [&](std::size_t i) {
    return static_cast<std::uint32_t>(
        static_cast<unsigned char>(buffer_[i]));
  };
  const std::uint32_t length =
      (byte(0) << 24) | (byte(1) << 16) | (byte(2) << 8) | byte(3);
  if (length > kMaxFrameBytes) {
    throw ProtocolError("frame length " + std::to_string(length) +
                        " exceeds the " + std::to_string(kMaxFrameBytes) +
                        "-byte limit (corrupt stream)");
  }
  if (buffer_.size() < 4 + static_cast<std::size_t>(length)) {
    return std::nullopt;
  }
  std::string payload = buffer_.substr(4, length);
  buffer_.erase(0, 4 + static_cast<std::size_t>(length));
  return payload;
}

std::string FrameReader::pending_description() const {
  if (buffer_.empty()) return "";
  if (buffer_.size() < 4) {
    return std::to_string(buffer_.size()) + " of 4 header bytes";
  }
  const auto byte = [&](std::size_t i) {
    return static_cast<std::uint32_t>(
        static_cast<unsigned char>(buffer_[i]));
  };
  const std::uint32_t length =
      (byte(0) << 24) | (byte(1) << 16) | (byte(2) << 8) | byte(3);
  return std::to_string(buffer_.size() - 4) + " of " +
         std::to_string(length) + " payload bytes";
}

#if defined(__unix__) || defined(__APPLE__)

FrameReadStatus read_frame(int fd, FrameReader& reader,
                           const util::Deadline& deadline,
                           std::string* payload) {
  char buffer[4096];
  while (true) {
    if (auto frame = reader.next()) {  // may throw on a garbage length
      *payload = std::move(*frame);
      return FrameReadStatus::Frame;
    }
    util::throw_if_interrupted();
    if (deadline.expired()) return FrameReadStatus::Timeout;

    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const std::uint64_t remaining = deadline.remaining_ms();
    const int timeout = static_cast<int>(remaining < 100 ? remaining : 100);
    const int ready = ::poll(&pfd, 1, timeout);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw ProtocolError(std::string{"poll failed during frame read: "} +
                          std::strerror(errno));
    }
    if (ready == 0) continue;  // slice elapsed; loop re-checks the deadline

    const auto mode = util::FaultInjector::instance().on_socket_read();
    if (mode == util::SocketFaultMode::Slow) {
      // A slow-loris peer: stall without consuming anything so the
      // deadline, not the peer, bounds the wait.
      std::this_thread::sleep_for(std::chrono::milliseconds(120));
      continue;
    }
    ssize_t n;
    if (mode == util::SocketFaultMode::Disconnect) {
      n = 0;  // emulate the peer vanishing
    } else {
      const std::size_t cap =
          mode == util::SocketFaultMode::ShortRead ? 1 : sizeof(buffer);
      n = ::read(fd, buffer, cap);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNRESET) {
        n = 0;  // reset counts as a disconnect, handled below
      } else {
        throw ProtocolError(std::string{"read failed during frame read: "} +
                            std::strerror(errno));
      }
    }
    if (n == 0) {
      if (reader.mid_frame()) {
        throw ProtocolError("truncated frame: peer closed with " +
                            reader.pending_description() + " received");
      }
      return FrameReadStatus::Eof;
    }
    reader.feed(buffer, static_cast<std::size_t>(n));
  }
}

#else

FrameReadStatus read_frame(int, FrameReader&, const util::Deadline&,
                           std::string*) {
  return FrameReadStatus::Eof;
}

#endif

// --- JSON codecs ----------------------------------------------------------

namespace {

/// util::Json numbers are doubles; 64-bit seeds ride as decimal strings so
/// every bit survives the round trip.
util::Json u64_to_json(std::uint64_t value) {
  return util::Json{std::to_string(value)};
}

std::uint64_t u64_from_json(const util::Json& json) {
  return std::stoull(json.as_string());
}

std::string geometry_name(BaseGeometry geometry) {
  return geometry == BaseGeometry::Spiral ? "spiral" : "rings";
}

BaseGeometry geometry_from_name(const std::string& name) {
  if (name == "spiral") return BaseGeometry::Spiral;
  if (name == "rings") return BaseGeometry::Rings;
  throw ProtocolError("unknown geometry '" + name + "'");
}

std::string activation_name(qnn::Activation activation) {
  return activation == qnn::Activation::Tanh ? "tanh" : "relu";
}

qnn::Activation activation_from_name(const std::string& name) {
  if (name == "tanh") return qnn::Activation::Tanh;
  if (name == "relu") return qnn::Activation::ReLU;
  throw ProtocolError("unknown activation '" + name + "'");
}

}  // namespace

util::Json sweep_config_to_json(const SweepConfig& config) {
  util::Json json = util::Json::object();
  json["feature_sizes"] = util::Json::array_of(config.feature_sizes);
  util::Json spiral = util::Json::object();
  spiral["points"] = config.spiral.points;
  spiral["classes"] = config.spiral.classes;
  spiral["turns"] = config.spiral.turns;
  spiral["radial_noise"] = config.spiral.radial_noise;
  json["spiral"] = std::move(spiral);
  json["geometry"] = geometry_name(config.geometry);
  json["dataset_seed"] = u64_to_json(config.dataset_seed);

  const SearchConfig& search = config.search;
  util::Json s = util::Json::object();
  s["accuracy_threshold"] = search.accuracy_threshold;
  s["runs_per_model"] = search.runs_per_model;
  s["repetitions"] = search.repetitions;
  s["validation_fraction"] = search.validation_fraction;
  s["classical_activation"] = activation_name(search.classical_activation);
  s["seed"] = u64_to_json(search.seed);
  s["prune_margin"] = search.prune_margin;
  s["max_candidates"] = search.max_candidates;
  s["threads"] = search.threads;
  s["lookahead"] = search.lookahead;
  s["run_retries"] = search.run_retries;

  const nn::TrainConfig& train = search.train;
  util::Json t = util::Json::object();
  t["epochs"] = train.epochs;
  t["batch_size"] = train.batch_size;
  t["learning_rate"] = train.learning_rate;
  t["finite_guard"] = train.finite_guard;
  t["early_stop_accuracy"] = train.early_stop_accuracy;
  t["shuffle"] = train.shuffle;
  t["patience"] = train.patience;
  // train.on_epoch is a process-local callback and cannot cross the wire.
  s["train"] = std::move(t);

  const flops::CostModel& cost = search.cost_model;
  util::Json c = util::Json::object();
  c["matmul_mac"] = cost.matmul_mac;
  c["bias_per_element"] = cost.bias_per_element;
  c["activation_forward"] = cost.activation_forward;
  c["activation_backward"] = cost.activation_backward;
  c["softmax_forward"] = cost.softmax_forward;
  c["gate_per_amplitude"] = cost.gate_per_amplitude;
  c["rotation_setup"] = cost.rotation_setup;
  c["entangler_per_amplitude"] = cost.entangler_per_amplitude;
  c["expval_per_amplitude"] = cost.expval_per_amplitude;
  c["observable_apply_per_amplitude"] = cost.observable_apply_per_amplitude;
  c["inner_product_per_amplitude"] = cost.inner_product_per_amplitude;
  s["cost_model"] = std::move(c);

  json["search"] = std::move(s);
  return json;
}

SweepConfig sweep_config_from_json(const util::Json& json) {
  SweepConfig config;
  config.feature_sizes.clear();
  const util::Json& sizes = json.at("feature_sizes");
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    config.feature_sizes.push_back(
        static_cast<std::size_t>(sizes.at(i).as_number()));
  }
  const util::Json& spiral = json.at("spiral");
  config.spiral.points =
      static_cast<std::size_t>(spiral.at("points").as_number());
  config.spiral.classes =
      static_cast<std::size_t>(spiral.at("classes").as_number());
  config.spiral.turns = spiral.at("turns").as_number();
  config.spiral.radial_noise = spiral.at("radial_noise").as_number();
  config.geometry = geometry_from_name(json.at("geometry").as_string());
  config.dataset_seed = u64_from_json(json.at("dataset_seed"));

  const util::Json& s = json.at("search");
  SearchConfig& search = config.search;
  search.accuracy_threshold = s.at("accuracy_threshold").as_number();
  search.runs_per_model =
      static_cast<std::size_t>(s.at("runs_per_model").as_number());
  search.repetitions =
      static_cast<std::size_t>(s.at("repetitions").as_number());
  search.validation_fraction = s.at("validation_fraction").as_number();
  search.classical_activation =
      activation_from_name(s.at("classical_activation").as_string());
  search.seed = u64_from_json(s.at("seed"));
  search.prune_margin = s.at("prune_margin").as_number();
  search.max_candidates =
      static_cast<std::size_t>(s.at("max_candidates").as_number());
  search.threads = static_cast<std::size_t>(s.at("threads").as_number());
  search.lookahead = static_cast<std::size_t>(s.at("lookahead").as_number());
  search.run_retries =
      static_cast<std::size_t>(s.at("run_retries").as_number());

  const util::Json& t = s.at("train");
  nn::TrainConfig& train = search.train;
  train.epochs = static_cast<std::size_t>(t.at("epochs").as_number());
  train.batch_size = static_cast<std::size_t>(t.at("batch_size").as_number());
  train.learning_rate = t.at("learning_rate").as_number();
  train.finite_guard = t.at("finite_guard").as_bool();
  train.early_stop_accuracy = t.at("early_stop_accuracy").as_number();
  train.shuffle = t.at("shuffle").as_bool();
  train.patience = static_cast<std::size_t>(t.at("patience").as_number());

  const util::Json& c = s.at("cost_model");
  flops::CostModel& cost = search.cost_model;
  cost.matmul_mac = c.at("matmul_mac").as_number();
  cost.bias_per_element = c.at("bias_per_element").as_number();
  cost.activation_forward = c.at("activation_forward").as_number();
  cost.activation_backward = c.at("activation_backward").as_number();
  cost.softmax_forward = c.at("softmax_forward").as_number();
  cost.gate_per_amplitude = c.at("gate_per_amplitude").as_number();
  cost.rotation_setup = c.at("rotation_setup").as_number();
  cost.entangler_per_amplitude = c.at("entangler_per_amplitude").as_number();
  cost.expval_per_amplitude = c.at("expval_per_amplitude").as_number();
  cost.observable_apply_per_amplitude =
      c.at("observable_apply_per_amplitude").as_number();
  cost.inner_product_per_amplitude =
      c.at("inner_product_per_amplitude").as_number();
  return config;
}

util::Json rng_to_json(const util::Rng& rng) {
  const util::Rng::Snapshot snap = rng.snapshot();
  util::Json json = util::Json::object();
  util::Json state = util::Json::array();
  for (std::uint64_t word : snap.state) state.push_back(u64_to_json(word));
  json["state"] = std::move(state);
  json["has_cached_normal"] = snap.has_cached_normal;
  json["cached_normal"] = snap.cached_normal;
  return json;
}

util::Rng rng_from_json(const util::Json& json) {
  util::Rng::Snapshot snap;
  const util::Json& state = json.at("state");
  if (state.size() != snap.state.size()) {
    throw ProtocolError("rng snapshot must have " +
                        std::to_string(snap.state.size()) + " state words");
  }
  for (std::size_t i = 0; i < snap.state.size(); ++i) {
    snap.state[i] = u64_from_json(state.at(i));
  }
  snap.has_cached_normal = json.at("has_cached_normal").as_bool();
  snap.cached_normal = json.at("cached_normal").as_number();
  return util::Rng::restore(snap);
}

util::Json work_unit_to_json(const WorkUnit& unit) {
  util::Json json = util::Json::object();
  util::Json key = util::Json::object();
  key["family"] = unit.key.family;
  key["features"] = unit.key.features;
  key["repetition"] = unit.key.repetition;
  key["candidate"] = unit.key.candidate;
  json["key"] = std::move(key);
  json["spec"] = model_spec_to_json(unit.spec);
  util::Json streams = util::Json::array();
  for (const util::Rng& stream : unit.streams) {
    streams.push_back(rng_to_json(stream));
  }
  json["streams"] = std::move(streams);
  return json;
}

WorkUnit work_unit_from_json(const util::Json& json) {
  WorkUnit unit;
  const util::Json& key = json.at("key");
  unit.key.family = key.at("family").as_string();
  unit.key.features =
      static_cast<std::size_t>(key.at("features").as_number());
  unit.key.repetition =
      static_cast<std::size_t>(key.at("repetition").as_number());
  unit.key.candidate =
      static_cast<std::size_t>(key.at("candidate").as_number());
  unit.spec = model_spec_from_json(json.at("spec"));
  const util::Json& streams = json.at("streams");
  unit.streams.reserve(streams.size());
  for (std::size_t i = 0; i < streams.size(); ++i) {
    unit.streams.push_back(rng_from_json(streams.at(i)));
  }
  return unit;
}

util::Json registration_to_json(const WorkerRegistration& registration) {
  util::Json json = util::Json::object();
  json["type"] = "register";
  json["version"] = registration.version;
  json["backend"] = registration.backend;
  json["slots"] = registration.slots;
  json["slot"] = registration.slot;
  json["pid"] = registration.pid;
  return json;
}

WorkerRegistration registration_from_json(const util::Json& json) {
  WorkerRegistration registration;
  try {
    if (json.at("type").as_string() != "register") {
      throw std::runtime_error("frame type is not 'register'");
    }
    registration.version = static_cast<int>(json.at("version").as_number());
    registration.backend = json.at("backend").as_string();
    registration.slots =
        static_cast<std::size_t>(json.at("slots").as_number());
    registration.slot = static_cast<std::size_t>(json.at("slot").as_number());
    registration.pid = static_cast<long>(json.at("pid").as_number());
  } catch (const std::exception& error) {
    throw ProtocolError(std::string{"bad register frame: "} + error.what());
  }
  return registration;
}

std::uint64_t backoff_with_jitter_ms(std::uint64_t initial_ms,
                                     std::uint64_t max_ms,
                                     std::size_t failures, std::uint64_t seed,
                                     std::uint64_t salt) {
  if (failures == 0) failures = 1;
  std::uint64_t base = initial_ms == 0 ? 1 : initial_ms;
  for (std::size_t i = 1; i < failures && base < max_ms; ++i) base *= 2;
  if (max_ms > 0 && base > max_ms) base = max_ms;
  // SplitMix64 over (seed, salt, failures): deterministic, decorrelated
  // across salts so simultaneous losers fan out instead of stampeding.
  std::uint64_t x = seed ^ (salt * 0x9e3779b97f4a7c15ULL) ^
                    (static_cast<std::uint64_t>(failures) << 32);
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  const std::uint64_t half = base / 2;
  return base - half + (half == 0 ? 0 : x % (half + 1));
}

bool parse_host_port(const std::string& text, std::string* host,
                     std::uint16_t* port) {
  const auto colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= text.size()) {
    return false;
  }
  const std::string digits = text.substr(colon + 1);
  if (digits.find_first_not_of("0123456789") != std::string::npos ||
      digits.size() > 5) {
    return false;
  }
  const unsigned long value = std::stoul(digits);
  if (value > 65535) return false;
  *host = text.substr(0, colon);
  *port = static_cast<std::uint16_t>(value);
  return true;
}

// --- unit evaluation ------------------------------------------------------

struct UnitDataCache::Impl {
  struct Entry {
    std::size_t features = 0;
    std::size_t repetition = 0;
    std::shared_ptr<const data::TrainValSplit> split;
  };
  std::mutex mutex;
  std::deque<Entry> entries;  // most-recently-used at the back
};

UnitDataCache::UnitDataCache() : impl_(std::make_shared<Impl>()) {}

std::shared_ptr<const data::TrainValSplit> UnitDataCache::split_for(
    const SweepConfig& config, std::size_t features, std::size_t repetition) {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    for (const Impl::Entry& entry : impl_->entries) {
      if (entry.features == features && entry.repetition == repetition) {
        return entry.split;
      }
    }
  }
  // Replay exactly what run_repeated_search does for this repetition: the
  // repetition stream is the (repetition+1)-th split of the root search
  // stream, and the stratified split consumes it before any training draws.
  const data::Dataset dataset = level_dataset(features, config);
  util::Rng root{config.search.seed};
  util::Rng rep_rng = root.split();
  for (std::size_t rep = 0; rep < repetition; ++rep) rep_rng = root.split();
  auto split = std::make_shared<data::TrainValSplit>(data::stratified_split(
      dataset, config.search.validation_fraction, rep_rng));
  data::standardize_split(*split);

  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->entries.push_back(Impl::Entry{features, repetition, split});
  // Bound memory: a worker streams units grouped by (level, repetition), so
  // a short MRU window gets all the reuse there is.
  constexpr std::size_t kMaxEntries = 8;
  while (impl_->entries.size() > kMaxEntries) impl_->entries.pop_front();
  return split;
}

CandidateResult evaluate_unit(const SweepConfig& config, const WorkUnit& unit,
                              UnitDataCache& cache) {
  const std::shared_ptr<const data::TrainValSplit> split =
      cache.split_for(config, unit.key.features, unit.key.repetition);
  // evaluate_candidate validates the stream count against runs_per_model.
  std::vector<util::Rng> streams = unit.streams;
  return evaluate_candidate(unit.spec, *split, config.search, streams);
}

CandidateResult quarantined_unit_result(
    const SweepConfig& config, const WorkUnit& unit,
    const std::vector<std::string>& attempt_causes) {
  CandidateResult result;
  result.spec = unit.spec;
  // Analytic metadata needs no training and stays informative in the
  // quarantine record.
  const flops::FlopsReport report = flops::profile_layers(
      spec_layer_infos(unit.spec, unit.key.features, config.spiral.classes,
                       config.search.classical_activation),
      config.search.cost_model);
  result.flops = report.total();
  result.flops_forward = report.forward_total;
  result.parameter_count = report.parameter_count;
  // runs = 0 keeps the unit out of every accuracy mean, exactly like a unit
  // whose every run tripped the non-finite guard.
  result.runs = 0;
  result.failed_runs = config.search.runs_per_model;
  result.meets_threshold = false;
  result.failures.reserve(attempt_causes.size());
  for (std::size_t attempt = 0; attempt < attempt_causes.size(); ++attempt) {
    RunFailure failure;
    failure.run = 0;
    failure.attempt = attempt;
    failure.epoch = 0;
    failure.cause = "worker:" + attempt_causes[attempt];
    result.failures.push_back(std::move(failure));
  }
  return result;
}

// --- worker entry point ---------------------------------------------------

#if defined(__unix__) || defined(__APPLE__)

namespace {

/// Serializes one worker output stream: the heartbeat thread and the unit
/// loop both emit frames on it (stdout for pipe workers, the connected
/// socket for TCP daemons).
class FrameChannel {
 public:
  explicit FrameChannel(int fd) : fd_(fd) {}

  bool send(const util::Json& payload) { return send_raw(payload.dump()); }

  bool send_raw(const std::string& payload) {
    std::lock_guard<std::mutex> lock(mutex_);
    return write_frame(fd_, payload);
  }

 private:
  int fd_;
  std::mutex mutex_;
};

/// Emits heartbeat frames for one unit on a fixed cadence until stopped.
class HeartbeatTicker {
 public:
  HeartbeatTicker(std::string key, std::uint64_t interval_ms,
                  FrameChannel& out)
      : key_(std::move(key)), interval_ms_(interval_ms), out_(out) {
    thread_ = std::thread([this] { run(); });
  }

  ~HeartbeatTicker() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void run() {
    util::Json frame = util::Json::object();
    frame["type"] = "heartbeat";
    frame["key"] = key_;
    const std::string payload = frame.dump();
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_) {
      if (cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                       [this] { return stop_; })) {
        return;
      }
      // A failed write means the supervisor is gone; training still runs to
      // completion and the final result write fails the same way.
      (void)out_.send_raw(payload);
    }
  }

  std::string key_;
  std::uint64_t interval_ms_;
  FrameChannel& out_;
  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// How one protocol session over a descriptor ended.
enum class WorkerLoopEnd {
  Shutdown,   ///< supervisor sent a shutdown frame
  Eof,        ///< supervisor closed the stream at a frame boundary
  PeerGone,   ///< a write to the supervisor failed mid-session
  Malformed,  ///< the inbound stream was garbage
};

struct WorkerLoopResult {
  WorkerLoopEnd end = WorkerLoopEnd::Eof;
  bool saw_init = false;  ///< the session got far enough to be real work
};

/// The worker side of the protocol, generic over the stream: blocking reads
/// from `in_fd`, replies through `out`. Shared by pipe workers (stdin/
/// stdout) and TCP daemon slots (the connected socket, both directions).
WorkerLoopResult run_worker_loop(int in_fd, FrameChannel& out,
                                 UnitDataCache& cache) {
  FrameReader reader;
  std::optional<SweepConfig> config;
  std::uint64_t heartbeat_interval_ms = 250;
  WorkerLoopResult outcome;

  char buffer[4096];
  while (true) {
    std::optional<std::string> payload;
    try {
      payload = reader.next();
    } catch (const ProtocolError& error) {
      util::log_error(std::string{"worker: "} + error.what());
      outcome.end = WorkerLoopEnd::Malformed;
      return outcome;
    }
    if (!payload.has_value()) {
      const ssize_t n = ::read(in_fd, buffer, sizeof(buffer));
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == ECONNRESET) {  // a reset peer is a gone peer
          outcome.end = WorkerLoopEnd::Eof;
          return outcome;
        }
        util::log_error("worker: stream read failed");
        outcome.end = WorkerLoopEnd::Malformed;
        return outcome;
      }
      if (n == 0) {  // supervisor closed the stream: clean shutdown
        outcome.end = WorkerLoopEnd::Eof;
        return outcome;
      }
      reader.feed(buffer, static_cast<std::size_t>(n));
      continue;
    }

    util::Json frame;
    std::string type;
    try {
      frame = util::Json::parse(*payload);
      type = frame.at("type").as_string();
    } catch (const std::exception& error) {
      util::log_error(std::string{"worker: bad frame: "} + error.what());
      outcome.end = WorkerLoopEnd::Malformed;
      return outcome;
    }

    if (type == "shutdown") {
      outcome.end = WorkerLoopEnd::Shutdown;
      return outcome;
    }

    if (type == "init") {
      try {
        const int version =
            static_cast<int>(frame.at("version").as_number());
        if (version != kWorkerProtocolVersion) {
          util::log_error("worker: unsupported protocol version " +
                          std::to_string(version));
          outcome.end = WorkerLoopEnd::Malformed;
          return outcome;
        }
        config = sweep_config_from_json(frame.at("config"));
        heartbeat_interval_ms = static_cast<std::uint64_t>(
            frame.at("heartbeat_interval_ms").as_number());
      } catch (const std::exception& error) {
        util::log_error(std::string{"worker: bad init frame: "} +
                        error.what());
        outcome.end = WorkerLoopEnd::Malformed;
        return outcome;
      }
      outcome.saw_init = true;
      util::Json ready = util::Json::object();
      ready["type"] = "ready";
      ready["pid"] = static_cast<long>(::getpid());
      if (!out.send(ready)) {
        outcome.end = WorkerLoopEnd::PeerGone;
        return outcome;
      }
      continue;
    }

    if (type != "unit") {
      util::log_error("worker: unknown frame type '" + type + "'");
      outcome.end = WorkerLoopEnd::Malformed;
      return outcome;
    }
    if (!config.has_value()) {
      util::log_error("worker: unit frame before init");
      outcome.end = WorkerLoopEnd::Malformed;
      return outcome;
    }

    WorkUnit unit;
    try {
      unit = work_unit_from_json(frame.at("unit"));
    } catch (const std::exception& error) {
      util::log_error(std::string{"worker: bad unit frame: "} + error.what());
      outcome.end = WorkerLoopEnd::Malformed;
      return outcome;
    }
    const std::string key = unit.key.to_string();

    // Injectable process-level failures (fault_injection.hpp `worker` site):
    // these emulate what a real crashed/wedged/corrupted worker does, so the
    // supervisor's reaping paths are exercised end to end.
    switch (util::FaultInjector::instance().on_worker_unit(key)) {
      case util::WorkerFaultMode::Crash:
        util::log_warn("worker: injected crash on " + key);
        std::abort();
        break;
      case util::WorkerFaultMode::Hang:
        // Wedge silently — no heartbeats, no result — until the supervisor
        // kills this process (or, over TCP, gives up on the connection).
        while (true) {
          std::this_thread::sleep_for(std::chrono::seconds(1));
        }
        break;
      case util::WorkerFaultMode::Garbage: {
        util::log_warn("worker: injected garbage frame on " + key);
        // Valid length prefix, payload that is not JSON.
        (void)out.send_raw("\x01\x02garbage, not JSON\x03");
        ::_exit(3);
        break;
      }
      case util::WorkerFaultMode::None:
        break;
    }

    try {
      CandidateResult result;
      {
        HeartbeatTicker ticker{key, heartbeat_interval_ms, out};
        result = evaluate_unit(*config, unit, cache);
      }
      util::Json reply = util::Json::object();
      reply["type"] = "result";
      reply["key"] = key;
      reply["result"] = candidate_result_to_json(result);
      if (!out.send(reply)) {
        outcome.end = WorkerLoopEnd::PeerGone;
        return outcome;
      }
    } catch (const std::exception& error) {
      // A clean in-worker failure (bad spec, stream-count mismatch, ...):
      // report it instead of dying so the supervisor can retry or
      // quarantine without paying a respawn.
      util::Json reply = util::Json::object();
      reply["type"] = "error";
      reply["key"] = key;
      reply["message"] = std::string{error.what()};
      if (!out.send(reply)) {
        outcome.end = WorkerLoopEnd::PeerGone;
        return outcome;
      }
    }
  }
}

}  // namespace

int worker_main() {
  // The supervisor may die while this worker writes to it; a broken pipe
  // should surface as a failed write, not SIGPIPE.
  util::install_sigpipe_guard();
  FrameChannel out{STDOUT_FILENO};
  UnitDataCache cache;
  const WorkerLoopResult outcome = run_worker_loop(STDIN_FILENO, out, cache);
  return (outcome.end == WorkerLoopEnd::Shutdown ||
          outcome.end == WorkerLoopEnd::Eof)
             ? 0
             : 2;
}

int remote_worker_main(const RemoteWorkerOptions& options) {
  util::install_sigpipe_guard();
  const std::size_t slots = options.slots == 0 ? 1 : options.slots;
  std::atomic<bool> gave_up{false};
  std::vector<std::thread> threads;
  threads.reserve(slots);
  for (std::size_t slot = 0; slot < slots; ++slot) {
    threads.emplace_back([&options, slots, slot, &gave_up] {
      const std::string tag =
          "qhdl_worker slot " + std::to_string(slot) + ": ";
      // Level splits are derived from the sweep config, not the connection;
      // keeping the cache across reconnects avoids re-deriving them after a
      // supervisor restart.
      UnitDataCache cache;
      std::size_t failures = 0;
      const auto back_off = [&](const std::string& why) {
        failures += 1;
        if (options.max_reconnect_failures > 0 &&
            failures >= options.max_reconnect_failures) {
          util::log_error(tag + "giving up after " +
                          std::to_string(failures) + " failed attempts: " +
                          why);
          gave_up.store(true);
          return false;
        }
        const std::uint64_t wait = backoff_with_jitter_ms(
            options.reconnect_initial_ms, options.reconnect_max_ms, failures,
            options.jitter_seed, slot);
        util::log_warn(tag + why + "; retrying in " + std::to_string(wait) +
                       " ms");
        std::this_thread::sleep_for(std::chrono::milliseconds(wait));
        return true;
      };

      while (true) {
        util::Socket socket;
        try {
          socket = util::connect_tcp(options.host, options.port,
                                     options.connect_timeout_ms);
        } catch (const std::exception& error) {
          if (!back_off(error.what())) return;
          continue;
        }
        FrameChannel out{socket.fd()};
        WorkerRegistration registration;
        registration.backend = util::simd::active_backend().name;
        registration.slots = slots;
        registration.slot = slot;
        registration.pid = static_cast<long>(::getpid());
        if (!out.send(registration_to_json(registration))) {
          if (!back_off("registration write failed")) return;
          continue;
        }
        util::log_info(tag + "registered with " + options.host + ":" +
                       std::to_string(options.port));
        const WorkerLoopResult served =
            run_worker_loop(socket.fd(), out, cache);
        if (served.end == WorkerLoopEnd::Shutdown) {
          if (!options.persist) {
            util::log_info(tag + "shutdown from supervisor; exiting");
            return;
          }
          util::log_info(tag + "shutdown from supervisor; reconnecting "
                               "(--persist)");
          failures = 0;
          continue;
        }
        // A served session resets the failure streak: this disconnect is
        // the first failure of a new one.
        if (served.saw_init) failures = 0;
        if (!back_off("connection to supervisor lost")) return;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  return gave_up.load() ? 1 : 0;
}

#else

int worker_main() {
  util::log_error("worker: --worker-mode requires a POSIX platform");
  return 2;
}

int remote_worker_main(const RemoteWorkerOptions&) {
  util::log_error("worker: --connect requires a POSIX platform");
  return 2;
}

#endif

}  // namespace qhdl::search
