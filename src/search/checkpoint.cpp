#include "search/checkpoint.hpp"

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "qnn/ansatz.hpp"

namespace qhdl::search {

namespace {

/// Shortest round-tripping decimal form — the same formatting the JSON
/// serializer uses, so a hashed double and its manifest encoding agree.
std::string canonical_double(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

util::Json model_spec_to_json(const ModelSpec& spec) {
  util::Json json = util::Json::object();
  if (spec.family == ModelSpec::Family::Classical) {
    json["family"] = "classical";
    json["hidden"] = util::Json::array_of(spec.classical.hidden);
  } else {
    json["family"] = "hybrid";
    json["qubits"] = spec.hybrid.qubits;
    json["depth"] = spec.hybrid.depth;
    json["ansatz"] = qnn::ansatz_name(spec.hybrid.ansatz);
  }
  return json;
}

ModelSpec model_spec_from_json(const util::Json& json) {
  const std::string& family = json.at("family").as_string();
  if (family == "classical") {
    std::vector<std::size_t> hidden;
    const util::Json& widths = json.at("hidden");
    hidden.reserve(widths.size());
    for (std::size_t i = 0; i < widths.size(); ++i) {
      hidden.push_back(static_cast<std::size_t>(widths.at(i).as_number()));
    }
    return ModelSpec::make_classical(std::move(hidden));
  }
  if (family == "hybrid") {
    return ModelSpec::make_hybrid(
        static_cast<std::size_t>(json.at("qubits").as_number()),
        static_cast<std::size_t>(json.at("depth").as_number()),
        qnn::ansatz_from_name(json.at("ansatz").as_string()));
  }
  throw std::runtime_error("checkpoint: unknown model family '" + family +
                           "'");
}

std::string UnitKey::to_string() const {
  return family + "/f" + std::to_string(features) + "/r" +
         std::to_string(repetition) + "/c" + std::to_string(candidate);
}

util::Json candidate_result_to_json(const CandidateResult& result) {
  util::Json json = util::Json::object();
  json["spec"] = model_spec_to_json(result.spec);
  json["avg_best_train_accuracy"] = result.avg_best_train_accuracy;
  json["avg_best_val_accuracy"] = result.avg_best_val_accuracy;
  json["flops"] = result.flops;
  json["flops_forward"] = result.flops_forward;
  json["parameter_count"] = result.parameter_count;
  json["runs"] = result.runs;
  json["failed_runs"] = result.failed_runs;
  json["meets_threshold"] = result.meets_threshold;
  if (!result.failures.empty()) {
    util::Json failures = util::Json::array();
    for (const RunFailure& failure : result.failures) {
      util::Json entry = util::Json::object();
      entry["run"] = failure.run;
      entry["attempt"] = failure.attempt;
      entry["epoch"] = failure.epoch;
      entry["cause"] = failure.cause;
      failures.push_back(std::move(entry));
    }
    json["failures"] = std::move(failures);
  }
  return json;
}

CandidateResult candidate_result_from_json(const util::Json& json) {
  CandidateResult result;
  result.spec = model_spec_from_json(json.at("spec"));
  result.avg_best_train_accuracy =
      json.at("avg_best_train_accuracy").as_number();
  result.avg_best_val_accuracy = json.at("avg_best_val_accuracy").as_number();
  result.flops = json.at("flops").as_number();
  result.flops_forward = json.at("flops_forward").as_number();
  result.parameter_count =
      static_cast<std::size_t>(json.at("parameter_count").as_number());
  result.runs = static_cast<std::size_t>(json.at("runs").as_number());
  result.failed_runs =
      static_cast<std::size_t>(json.at("failed_runs").as_number());
  result.meets_threshold = json.at("meets_threshold").as_bool();
  if (json.contains("failures")) {
    const util::Json& failures = json.at("failures");
    result.failures.reserve(failures.size());
    for (std::size_t i = 0; i < failures.size(); ++i) {
      const util::Json& entry = failures.at(i);
      RunFailure failure;
      failure.run = static_cast<std::size_t>(entry.at("run").as_number());
      failure.attempt =
          static_cast<std::size_t>(entry.at("attempt").as_number());
      failure.epoch = static_cast<std::size_t>(entry.at("epoch").as_number());
      failure.cause = entry.at("cause").as_string();
      result.failures.push_back(std::move(failure));
    }
  }
  return result;
}

StudyCheckpoint::StudyCheckpoint(std::string path, std::string config_hash)
    : path_(std::move(path)), hash_(std::move(config_hash)) {}

std::size_t StudyCheckpoint::load() {
  std::lock_guard<std::mutex> lock(mutex_);
  units_.clear();
  if (path_.empty() || !std::filesystem::exists(path_)) return 0;
  util::Json manifest;
  try {
    manifest = util::Json::parse_file(path_);
  } catch (const std::exception& e) {
    throw std::runtime_error("checkpoint: corrupt manifest at " + path_ +
                             ": " + e.what());
  }
  try {
    const auto version =
        static_cast<std::size_t>(manifest.at("version").as_number());
    if (version != 1) {
      throw std::runtime_error("unsupported manifest version " +
                               std::to_string(version));
    }
    const std::string& stored = manifest.at("config_hash").as_string();
    if (stored != hash_) {
      throw std::runtime_error(
          "stale checkpoint: manifest config_hash " + stored +
          " does not match the current configuration's " + hash_ +
          " (different protocol, seeds, or dataset); delete " + path_ +
          " or pass --fresh to start over");
    }
    for (const auto& [key, value] : manifest.at("units").object_items()) {
      // Eagerly validate each record so a resume fails up front, not midway
      // through the sweep; the Json itself is what we store and replay.
      (void)candidate_result_from_json(value);
      units_.emplace(key, value);
    }
  } catch (const std::runtime_error&) {
    throw;
  } catch (const std::exception& e) {
    throw std::runtime_error("checkpoint: corrupt manifest at " + path_ +
                             ": " + e.what());
  }
  return units_.size();
}

std::optional<CandidateResult> StudyCheckpoint::find(
    const UnitKey& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = units_.find(key.to_string());
  if (it == units_.end()) {
    ++replay_misses_;
    return std::nullopt;
  }
  ++replay_hits_;
  return candidate_result_from_json(it->second);
}

std::size_t StudyCheckpoint::replay_hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return replay_hits_;
}

std::size_t StudyCheckpoint::replay_misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return replay_misses_;
}

void StudyCheckpoint::record(const UnitKey& key,
                             const CandidateResult& result) {
  util::Json json = candidate_result_to_json(result);
  std::lock_guard<std::mutex> lock(mutex_);
  units_[key.to_string()] = std::move(json);
}

void StudyCheckpoint::flush() const {
  if (path_.empty()) return;  // memory-only checkpoint
  util::Json manifest = util::Json::object();
  manifest["version"] = std::size_t{1};
  manifest["config_hash"] = hash_;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    util::Json units = util::Json::object();
    for (const auto& [key, value] : units_) units[key] = value;
    manifest["units"] = std::move(units);
  }
  manifest.write_file(path_);
}

std::size_t StudyCheckpoint::completed_units() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return units_.size();
}

std::string sweep_config_hash(const SweepConfig& config) {
  // Canonical field dump: every result-affecting knob, labelled so that two
  // fields can never alias by concatenation. threads/lookahead are omitted
  // deliberately — results are invariant in them (DESIGN.md §7), so a resume
  // may use a different parallelism than the original run.
  std::string canon;
  canon.reserve(1024);
  canon += "features:";
  for (std::size_t f : config.feature_sizes) {
    canon += std::to_string(f);
    canon += ',';
  }
  canon += ";spiral:" + std::to_string(config.spiral.points) + ',' +
           std::to_string(config.spiral.classes) + ',' +
           canonical_double(config.spiral.turns) + ',' +
           canonical_double(config.spiral.radial_noise);
  canon += ";geometry:" + std::to_string(static_cast<int>(config.geometry));
  canon += ";dataset_seed:" + std::to_string(config.dataset_seed);
  const SearchConfig& search = config.search;
  canon += ";search:" + canonical_double(search.accuracy_threshold) + ',' +
           std::to_string(search.runs_per_model) + ',' +
           std::to_string(search.repetitions) + ',' +
           canonical_double(search.validation_fraction) + ',' +
           std::to_string(static_cast<int>(search.classical_activation)) +
           ',' + std::to_string(search.seed) + ',' +
           canonical_double(search.prune_margin) + ',' +
           std::to_string(search.max_candidates) + ',' +
           std::to_string(search.run_retries);
  const nn::TrainConfig& train = search.train;
  canon += ";train:" + std::to_string(train.epochs) + ',' +
           std::to_string(train.batch_size) + ',' +
           canonical_double(train.learning_rate) + ',' +
           std::to_string(train.finite_guard ? 1 : 0) + ',' +
           canonical_double(train.early_stop_accuracy) + ',' +
           std::to_string(train.shuffle ? 1 : 0) + ',' +
           std::to_string(train.patience);
  const flops::CostModel& cost = search.cost_model;
  canon += ";cost:";
  for (double value :
       {cost.matmul_mac, cost.bias_per_element, cost.activation_forward,
        cost.activation_backward, cost.softmax_forward,
        cost.gate_per_amplitude, cost.rotation_setup,
        cost.entangler_per_amplitude, cost.expval_per_amplitude,
        cost.observable_apply_per_amplitude,
        cost.inner_product_per_amplitude}) {
    canon += canonical_double(value);
    canon += ',';
  }

  // FNV-1a 64-bit over the canonical string.
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : canon) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(hash));
  return hex;
}

}  // namespace qhdl::search
