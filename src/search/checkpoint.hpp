// Crash-safe resumable study execution (DESIGN.md §10).
//
// The paper's full pipeline is an hours-long sweep; this checkpoint makes
// it durable. The unit of work is one candidate evaluation, keyed by
// (family, features, repetition, candidate index in FLOPs order). Completed
// units are recorded in a JSON manifest and flushed with an atomic
// temp+flush+rename at every unit boundary, so a crash, OOM kill, or
// SIGTERM at ANY point leaves either the previous complete manifest or the
// new one — never a truncated file.
//
// Resume correctness is exact, not approximate: the search draws every RNG
// split in the original order whether a unit is replayed or retrained
// (search_once), doubles round-trip the JSON encoder bit-for-bit (%.17g),
// and a config/dataset-seed hash rejects a manifest produced by a different
// protocol. A study interrupted at an arbitrary unit boundary and resumed
// therefore produces a StudyResult::to_json() byte-identical to an
// uninterrupted run — the property the resume tests pin.
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "search/experiment.hpp"
#include "util/json.hpp"

namespace qhdl::search {

/// Identity of one completed work unit.
struct UnitKey {
  std::string family;         ///< family_name() ("" for standalone searches)
  std::size_t features = 0;   ///< complexity level
  std::size_t repetition = 0;
  std::size_t candidate = 0;  ///< index in FLOPs order

  /// Manifest key: "<family>/f<features>/r<repetition>/c<candidate>".
  std::string to_string() const;
};

/// Durable manifest of completed work units plus their results.
/// Thread-safe: concurrent sweep levels record and flush through one
/// instance.
class StudyCheckpoint {
 public:
  /// Binds to `path`; nothing is read or written yet. `config_hash`
  /// (sweep_config_hash) guards resumes against stale manifests. An empty
  /// path makes the checkpoint memory-only: load() restores nothing and
  /// flush() is a no-op (the serve layer's cache uses this when disk spill
  /// is disabled).
  StudyCheckpoint(std::string path, std::string config_hash);

  /// Loads an existing manifest if `path` exists; returns the number of
  /// restored units (0 when starting fresh). Throws std::runtime_error on a
  /// config-hash mismatch (stale checkpoint — different protocol or seeds)
  /// or a corrupt manifest.
  std::size_t load();

  /// Recorded result for a unit, or nullopt when it has not completed.
  std::optional<CandidateResult> find(const UnitKey& key) const;

  /// Records a completed unit (in memory; flush() persists).
  void record(const UnitKey& key, const CandidateResult& result);

  /// Atomically persists the manifest via util::atomic_write_file.
  void flush() const;

  std::size_t completed_units() const;
  const std::string& path() const { return path_; }
  const std::string& config_hash() const { return hash_; }

  /// Replay counters: how many find() lookups hit a recorded unit vs came
  /// up empty since construction. The serve layer's result cache surfaces
  /// these as its per-config hit/miss statistics (a fully warmed repeat of
  /// a sweep is 100% hits), and the golden cache-determinism test asserts
  /// on them.
  std::size_t replay_hits() const;
  std::size_t replay_misses() const;

 private:
  std::string path_;
  std::string hash_;
  mutable std::mutex mutex_;
  // std::map keeps manifest keys sorted -> deterministic file bytes.
  std::map<std::string, util::Json> units_;
  mutable std::size_t replay_hits_ = 0;
  mutable std::size_t replay_misses_ = 0;
};

/// FNV-1a hash (hex) over every SweepConfig field that affects results —
/// protocol counts, seeds, dataset geometry, thresholds, cost model — and
/// none that cannot (threads, lookahead: results are invariant in them by
/// the §7 determinism guarantee, so a resume may change them freely).
std::string sweep_config_hash(const SweepConfig& config);

/// Exact (bit-round-tripping) CandidateResult <-> JSON conversion used by
/// the manifest; exposed for the resume tests.
util::Json candidate_result_to_json(const CandidateResult& result);
CandidateResult candidate_result_from_json(const util::Json& json);

/// ModelSpec <-> JSON, shared by the manifest and the worker protocol
/// (search/worker_protocol.hpp) so both speak the same encoding.
util::Json model_spec_to_json(const ModelSpec& spec);
ModelSpec model_spec_from_json(const util::Json& json);

}  // namespace qhdl::search
