// Serialization of sweep results to CSV/JSON for the bench drivers.
#pragma once

#include <string>

#include "search/experiment.hpp"
#include "util/csv.hpp"
#include "util/json.hpp"

namespace qhdl::search {

/// One CSV row per (feature size, repetition): winner spec, FLOPs, params,
/// accuracies. Repetitions without a winner emit empty winner fields.
util::CsvWriter sweep_to_csv(const SweepResult& sweep);

/// Full machine-readable manifest of a sweep.
util::Json sweep_to_json(const SweepResult& sweep);

/// Per-level means table (feature size, mean FLOPs, mean params) used by
/// the Fig. 10 comparison bench.
util::CsvWriter sweep_means_to_csv(const SweepResult& sweep);

}  // namespace qhdl::search
