// Search-space enumeration (paper Sections III-B and III-C).
//
// Classical: all layer sequences of length 1..max_layers over the neuron
// options; the count follows the paper's formula m·(mⁿ−1)/(m−1)
// (= 155 for m = {2,4,6,8,10}, n = 3).
//
// Hybrid: the Cartesian product of qubit options and depths for a fixed
// ansatz (= 30 for qubits {3,4,5} × depth 1..10).
#pragma once

#include <vector>

#include "search/candidate.hpp"

namespace qhdl::search {

/// m·(mⁿ−1)/(m−1): total sequences of length 1..n over m options.
std::size_t classical_combination_count(std::size_t m, std::size_t n);

/// Enumerates all hidden-layer configurations, shortest first, in
/// lexicographic option order within a length.
std::vector<ModelSpec> classical_search_space(
    const std::vector<std::size_t>& neuron_options, std::size_t max_layers);

/// Enumerates (qubits × depth) hybrid candidates for one ansatz.
std::vector<ModelSpec> hybrid_search_space(
    const std::vector<std::size_t>& qubit_options, std::size_t max_depth,
    qnn::AnsatzKind ansatz);

/// The paper's exact spaces.
std::vector<ModelSpec> paper_classical_space();           ///< 155 candidates
std::vector<ModelSpec> paper_hybrid_space(qnn::AnsatzKind ansatz);  ///< 30

}  // namespace qhdl::search
