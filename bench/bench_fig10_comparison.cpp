// Reproduces paper Fig. 10 and the headline percentages: the rate of
// increase in FLOPs and parameter count — classical vs hybrid (BEL) vs
// hybrid (SEL) — as problem complexity grows from the lowest to the highest
// feature size.
//
// Paper reference values (Section IV-E):
//   FLOPs increase:  classical +88.5% | BEL +80.13% | SEL +53.1%
//   params increase: classical +88.5% | BEL +89.6%  | SEL +81.4%
// The paper's claim is the ORDERING (SEL grows slowest), not the absolute
// numbers; EXPERIMENTS.md records measured-vs-paper for this driver.
#include <cstdio>

#include "common/driver.hpp"
#include "core/analysis.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace qhdl;
  util::Cli cli{"bench_fig10_comparison",
                "Fig. 10 — rate of increase in FLOPs and parameters, "
                "classical vs hybrid"};
  bench::add_protocol_options(cli);
  try {
    if (!cli.parse(argc, argv)) return 0;
    const bench::Protocol protocol = bench::protocol_from_cli(cli);
    bench::print_banner(
        "Fig. 10 — classical vs hybrid growth in FLOPs and parameters",
        protocol);

    const bool force = cli.flag("force");
    std::vector<core::FamilyGrowth> growths;
    std::vector<std::pair<std::string, core::LevelSeries>> series_list;
    for (search::Family family :
         {search::Family::Classical, search::Family::HybridBel,
          search::Family::HybridSel}) {
      const auto sweep = bench::load_or_run_sweep(family, protocol, force);
      series_list.emplace_back(search::family_name(family),
                               core::sweep_series(sweep));
      try {
        growths.push_back(core::analyze_growth(sweep));
      } catch (const std::invalid_argument& e) {
        std::printf("(!) %s: %s\n", search::family_name(family).c_str(),
                    e.what());
      }
    }

    std::printf("\nPer-level mean winner series (Fig. 10 curves):\n");
    util::Table series_table(
        {"family", "features", "mean FLOPs", "mean parameters"});
    for (const auto& [name, series] : series_list) {
      for (std::size_t i = 0; i < series.features.size(); ++i) {
        series_table.add_row({name, std::to_string(series.features[i]),
                              util::format_double(series.mean_flops[i], 1),
                              util::format_double(
                                  series.mean_parameters[i], 1)});
      }
    }
    series_table.print();

    std::printf("\nGrowth from lowest to highest complexity level:\n");
    std::fputs(core::growth_comparison_to_string(growths).c_str(), stdout);

    std::printf("\nPaper reference: FLOPs increase classical +88.5%% | "
                "BEL +80.1%% | SEL +53.1%%\n");
    std::printf("                 params increase classical +88.5%% | "
                "BEL +89.6%% | SEL +81.4%%\n");

    const std::string path = protocol.results_dir + "/fig10_growth.csv";
    core::growth_comparison_to_csv(growths).write_file(path);
    std::printf("csv: %s\n", path.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
