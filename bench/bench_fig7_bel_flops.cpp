// Reproduces paper Fig. 7: FLOPs consumption of the best-performing hybrid
// models with the Basic Entangling Layer (BEL) ansatz, per complexity level.
// The expected shape (paper Section IV-B): a fixed small circuit suffices at
// low feature counts — FLOPs grow only through the classical input layer —
// until higher complexity forces more qubits/depth.
#include <cstdio>

#include "common/driver.hpp"

int main(int argc, char** argv) {
  using namespace qhdl;
  util::Cli cli{"bench_fig7_bel_flops",
                "Fig. 7 — FLOPs of best hybrid (BEL) models vs problem "
                "complexity"};
  bench::add_protocol_options(cli);
  try {
    if (!cli.parse(argc, argv)) return 0;
    const bench::Protocol protocol = bench::protocol_from_cli(cli);
    bench::print_banner("Fig. 7 — FLOPs of best-performing hybrid (BEL) models",
                        protocol);
    const search::SweepResult sweep = bench::load_or_run_sweep(
        search::Family::HybridBel, protocol, cli.flag("force"));
    bench::print_sweep_figure(sweep);
    bench::write_figure_csvs(sweep, protocol, "fig7_bel");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
