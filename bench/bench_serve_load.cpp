// Serve-layer load benchmark: drives an in-process serve::Server over real
// TCP with concurrent clients and reports request-latency percentiles plus
// the admission-control shed rate, written to BENCH_serve.json via the
// shared JSON reporter (same shape as BENCH_micro.json / BENCH_figs.json).
//
// Three phases:
//   cold     — unique tiny study configs (every unit is a cache miss),
//   hot      — the same config repeated (served from the result cache),
//   overload — sleep jobs against a 1-executor, tiny-queue server; most
//              requests must be shed with "rejected: overloaded".
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/json_report.hpp"
#include "core/config.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"
#include "util/socket.hpp"

namespace {

using namespace qhdl;
using Clock = std::chrono::steady_clock;

search::SweepConfig tiny_study(std::uint64_t seed) {
  search::SweepConfig config = core::test_scale();
  config.feature_sizes = {4};
  config.search.max_candidates = 1;
  config.search.repetitions = 1;
  config.search.runs_per_model = 1;
  config.search.train.epochs = 2;
  config.search.seed = seed;
  return config;
}

struct PhaseResult {
  std::vector<double> latencies_ms;  // successful (non-shed) replies
  std::size_t requests = 0;
  std::size_t shed = 0;
  std::size_t unit_hits = 0;
  std::size_t unit_misses = 0;
};

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

double mean_ms(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

/// Fires `total` requests at the server from `threads` concurrent clients.
/// `request_for(i)` builds the i-th request.
template <typename RequestFn>
PhaseResult run_phase(std::uint16_t port, std::size_t total,
                      std::size_t threads, RequestFn request_for) {
  PhaseResult result;
  result.requests = total;
  std::mutex mutex;
  std::vector<std::thread> pool;
  std::size_t next = 0;
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      for (;;) {
        std::size_t index;
        {
          std::lock_guard<std::mutex> lock(mutex);
          if (next >= total) return;
          index = next++;
        }
        const util::Json request = request_for(index);
        const auto start = Clock::now();
        util::Json reply;
        try {
          reply = serve::round_trip("127.0.0.1", port, request, 120000);
        } catch (const std::exception& e) {
          std::fprintf(stderr, "bench_serve_load: transport error: %s\n",
                       e.what());
          continue;
        }
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() - start)
                .count();
        std::lock_guard<std::mutex> lock(mutex);
        if (reply.at("type").as_string() == "rejected") {
          result.shed += 1;
          continue;
        }
        result.latencies_ms.push_back(ms);
        if (reply.contains("cache")) {
          const util::Json& cache = reply.at("cache");
          result.unit_hits +=
              static_cast<std::size_t>(cache.at("unit_hits").as_number());
          result.unit_misses +=
              static_cast<std::size_t>(cache.at("unit_misses").as_number());
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();
  return result;
}

bench::BenchEntry entry_for(const std::string& name,
                            const PhaseResult& phase) {
  bench::BenchEntry entry;
  entry.name = name;
  entry.ns_per_op = mean_ms(phase.latencies_ms) * 1e6;
  entry.extra["p50_ms"] = percentile(phase.latencies_ms, 0.50);
  entry.extra["p99_ms"] = percentile(phase.latencies_ms, 0.99);
  entry.extra["requests"] = static_cast<double>(phase.requests);
  entry.extra["shed"] = static_cast<double>(phase.shed);
  entry.extra["shed_rate"] =
      phase.requests == 0
          ? 0.0
          : static_cast<double>(phase.shed) /
                static_cast<double>(phase.requests);
  return entry;
}

void print_phase(const char* label, const PhaseResult& phase) {
  std::printf("  %-10s %3zu req  p50 %8.2f ms  p99 %8.2f ms  shed %zu "
              "(%.0f%%)  cache %zu/%zu hit/miss\n",
              label, phase.requests, percentile(phase.latencies_ms, 0.50),
              percentile(phase.latencies_ms, 0.99), phase.shed,
              100.0 * static_cast<double>(phase.shed) /
                  static_cast<double>(std::max<std::size_t>(phase.requests,
                                                            1)),
              phase.unit_hits, phase.unit_misses);
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli{"bench_serve_load",
                "Latency/shed-rate benchmark for the qhdl serve layer"};
  cli.add_int("cold", 4, "Unique-config study requests (all cache misses)");
  cli.add_int("hot", 32, "Repeated-config study requests (cache-served)");
  cli.add_int("overload", 16, "Sleep requests fired at the tiny server");
  cli.add_int("clients", 4, "Concurrent client threads");
  cli.add_string("out", "BENCH_serve.json", "Output JSON path");
  if (!cli.parse(argc, argv)) return 0;
  util::set_log_level(util::LogLevel::Warn);
  if (!util::sockets_supported()) {
    std::fprintf(stderr, "bench_serve_load: sockets unsupported here\n");
    return 0;
  }

  const std::size_t clients = static_cast<std::size_t>(cli.get_int("clients"));
  std::printf("bench_serve_load: %zu concurrent clients\n", clients);

  // Phase 1+2: a roomy server (nothing sheds) for cold/hot latency.
  serve::ServerConfig roomy;
  roomy.executors = 2;
  roomy.max_queue = 256;
  serve::Server server{roomy};
  server.start();

  const PhaseResult cold = run_phase(
      server.port(), static_cast<std::size_t>(cli.get_int("cold")), clients,
      [](std::size_t i) {
        return serve::make_study_request(search::Family::Classical,
                                         tiny_study(1000 + i));
      });
  print_phase("cold", cold);

  const PhaseResult hot = run_phase(
      server.port(), static_cast<std::size_t>(cli.get_int("hot")), clients,
      [](std::size_t) {
        return serve::make_study_request(search::Family::Classical,
                                         tiny_study(1000));
      });
  print_phase("hot", hot);
  server.stop();

  // Phase 3: a deliberately tiny server; most sleep jobs must shed.
  serve::ServerConfig tiny;
  tiny.executors = 1;
  tiny.max_queue = 2;
  serve::Server small{tiny};
  small.start();
  const PhaseResult overload = run_phase(
      small.port(), static_cast<std::size_t>(cli.get_int("overload")),
      clients, [](std::size_t) {
        util::Json request = util::Json::object();
        request["type"] = "sleep";
        request["ms"] = 200;
        return request;
      });
  print_phase("overload", overload);
  small.stop();

  bench::BenchEntry cold_entry = entry_for("serve_cold_study", cold);
  cold_entry.extra["unit_misses"] = static_cast<double>(cold.unit_misses);
  bench::BenchEntry hot_entry = entry_for("serve_hot_cached", hot);
  hot_entry.extra["unit_hits"] = static_cast<double>(hot.unit_hits);
  hot_entry.extra["unit_misses"] = static_cast<double>(hot.unit_misses);
  const bench::BenchEntry shed_entry =
      entry_for("serve_overload_shed", overload);

  const std::string out = cli.get_string("out");
  bench::write_bench_json(out, bench::collect_metadata(),
                          {cold_entry, hot_entry, shed_entry});
  std::printf("bench_serve_load: wrote %s\n", out.c_str());
  return 0;
}
