// Reproduces paper Fig. 4: (a) the spiral dataset's base structure and
// (b) the demonstration that raising the feature count (with the coupled
// noise schedule noise = 0.1 + 0.003·F) makes the task progressively harder.
//
// (a) is emitted as a CSV of the first two features per class (plus an
// ASCII density sketch); (b) trains a FIXED probe model at every complexity
// level and reports its accuracy decay — the quantitative analogue of the
// paper's "increasing problem complexity" panel.
#include <cstdio>

#include "common/driver.hpp"
#include "data/preprocess.hpp"
#include "nn/trainer.hpp"
#include "search/grid_search.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace {

using namespace qhdl;

/// Coarse ASCII scatter of the first two features (classes as digits).
void print_ascii_spiral(const data::Dataset& dataset) {
  constexpr int kGrid = 29;
  std::vector<std::string> canvas(kGrid, std::string(kGrid, ' '));
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const double x = dataset.x.at(i, 0);
    const double y = dataset.x.at(i, 1);
    const int col = static_cast<int>((x + 1.1) / 2.2 * (kGrid - 1));
    const int row = static_cast<int>((1.1 - y) / 2.2 * (kGrid - 1));
    if (col < 0 || col >= kGrid || row < 0 || row >= kGrid) continue;
    canvas[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] =
        static_cast<char>('0' + dataset.y[i] % 10);
  }
  std::printf("Fig 4(a): first two features (digit = class)\n");
  for (const auto& line : canvas) std::printf("  %s\n", line.c_str());
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli{"bench_fig4_dataset",
                "Fig. 4 — spiral dataset and complexity demonstration"};
  bench::add_protocol_options(cli);
  cli.add_int("probe-epochs", 40, "Epochs for the fixed probe model");
  try {
    if (!cli.parse(argc, argv)) return 0;
    const bench::Protocol protocol = bench::protocol_from_cli(cli);
    bench::print_banner("Fig. 4 — dataset structure and complexity scaling",
                        protocol);
    const auto& config = protocol.config;

    // (a) base spiral.
    const data::Dataset base = search::level_dataset(2, config);
    print_ascii_spiral(base);
    util::CsvWriter scatter({"x0", "x1", "class"});
    for (std::size_t i = 0; i < base.size(); ++i) {
      scatter.add_row({util::format_double(base.x.at(i, 0), 5),
                       util::format_double(base.x.at(i, 1), 5),
                       std::to_string(base.y[i])});
    }
    const std::string scatter_path =
        protocol.results_dir + "/fig4a_spiral.csv";
    scatter.write_file(scatter_path);
    std::printf("csv: %s\n\n", scatter_path.c_str());

    // (b) fixed probe accuracy vs complexity level.
    std::printf("Fig 4(b): fixed probe model ([10,10] classical) accuracy "
                "vs feature size\n");
    util::Table table({"features", "noise", "train acc", "val acc"});
    util::CsvWriter decay({"features", "noise", "train_acc", "val_acc"});
    for (std::size_t features : config.feature_sizes) {
      const data::Dataset dataset = search::level_dataset(features, config);
      util::Rng rng{config.search.seed + features};
      data::TrainValSplit split = data::stratified_split(
          dataset, config.search.validation_fraction, rng);
      data::standardize_split(split);

      auto model = search::build_from_spec(
          search::ModelSpec::make_classical({10, 10}), features,
          dataset.classes, qnn::Activation::Tanh, rng);
      nn::Adam optimizer{config.search.train.learning_rate};
      nn::TrainConfig train_config = config.search.train;
      train_config.epochs =
          static_cast<std::size_t>(cli.get_int("probe-epochs"));
      train_config.early_stop_accuracy = 0.0;  // measure the full curve
      const auto history = nn::train_classifier(
          *model, optimizer, split.train.x, split.train.y, split.val.x,
          split.val.y, train_config, rng);

      const double noise = data::noise_for_features(features);
      table.add_row({std::to_string(features),
                     util::format_double(noise, 3),
                     util::format_double(history.best_train_accuracy, 3),
                     util::format_double(history.best_val_accuracy, 3)});
      decay.add_row({std::to_string(features), util::format_double(noise, 3),
                     util::format_double(history.best_train_accuracy, 4),
                     util::format_double(history.best_val_accuracy, 4)});
    }
    table.print();
    const std::string decay_path =
        protocol.results_dir + "/fig4b_probe_decay.csv";
    decay.write_file(decay_path);
    std::printf("csv: %s\n", decay_path.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
