// Extension experiment for the paper's Q2 ("does the quantum part add
// anything qualitatively different?") through the KERNEL lens its reference
// [30] (Schnabel & Roth) scrutinizes: the same spiral task solved by kernel
// ridge classification under (a) a classical RBF kernel, (b) the trivially
// factorizable product angle kernel, and (c) the entangling ZZ fidelity
// kernel. If quantumness per se helped, (c) should beat (a) somewhere.
#include <cstdio>
#include <filesystem>

#include "data/preprocess.hpp"
#include "data/spiral.hpp"
#include "nn/kernel_ridge.hpp"
#include "qnn/quantum_kernel.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

using namespace qhdl;

int main(int argc, char** argv) {
  util::Cli cli{"bench_kernel_methods",
                "Classical vs quantum kernels on the spiral task"};
  cli.add_int("train", 150, "Training samples (kernel cost is O(n^2))");
  cli.add_int("test", 60, "Held-out samples");
  cli.add_double("ridge", 1e-2, "Kernel ridge regularizer");
  cli.add_double("rbf-gamma", 0.5, "RBF bandwidth");
  cli.add_int("seed", 13, "RNG seed");
  cli.add_string("results-dir", "qhdl_results", "CSV output directory");
  try {
    if (!cli.parse(argc, argv)) return 0;
    const auto n_train = static_cast<std::size_t>(cli.get_int("train"));
    const auto n_test = static_cast<std::size_t>(cli.get_int("test"));
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

    std::printf("=== Kernel ridge classification: RBF vs quantum fidelity "
                "kernels ===\n\n");
    util::Table table({"features", "kernel", "train acc", "test acc"});
    util::CsvWriter csv({"features", "kernel", "train_acc", "test_acc"});

    for (std::size_t features : {std::size_t{4}, std::size_t{8}}) {
      data::SpiralConfig spiral;
      spiral.points = n_train + n_test;
      const data::Dataset dataset =
          data::make_complexity_dataset(features, spiral, seed + features);
      util::Rng rng{seed};
      data::TrainValSplit split = data::stratified_split(
          dataset, static_cast<double>(n_test) /
                       static_cast<double>(n_train + n_test),
          rng);
      data::standardize_split(split);
      const tensor::Tensor& x_train = split.train.x;
      const tensor::Tensor& x_test = split.val.x;
      const auto& y_train = split.train.y;
      const auto& y_test = split.val.y;

      struct KernelCase {
        std::string name;
        tensor::Tensor gram;
        tensor::Tensor cross;
      };
      std::vector<KernelCase> kernels;

      const double gamma = cli.get_double("rbf-gamma");
      kernels.push_back({"RBF (classical)",
                         qnn::rbf_kernel_matrix(x_train, gamma),
                         qnn::rbf_cross_kernel_matrix(x_test, x_train,
                                                      gamma)});

      qnn::QuantumKernelConfig angle_config;
      angle_config.map = qnn::FeatureMapKind::Angle;
      kernels.push_back(
          {"Angle (product states)",
           qnn::kernel_matrix(angle_config, x_train),
           qnn::cross_kernel_matrix(angle_config, x_test, x_train)});

      qnn::QuantumKernelConfig zz_config;
      zz_config.map = qnn::FeatureMapKind::ZZ;
      zz_config.repetitions = 2;
      kernels.push_back(
          {"ZZ (entangling)", qnn::kernel_matrix(zz_config, x_train),
           qnn::cross_kernel_matrix(zz_config, x_test, x_train)});

      for (const KernelCase& kernel : kernels) {
        nn::KernelRidgeClassifier classifier{cli.get_double("ridge")};
        classifier.fit(kernel.gram, y_train, dataset.classes);
        const double train_acc = classifier.score(kernel.gram, y_train);
        const double test_acc = classifier.score(kernel.cross, y_test);
        table.add_row({std::to_string(features), kernel.name,
                       util::format_double(train_acc, 3),
                       util::format_double(test_acc, 3)});
        csv.add_row({std::to_string(features), kernel.name,
                     util::format_double(train_acc, 4),
                     util::format_double(test_acc, 4)});
      }
    }
    table.print();
    std::printf("\nReading: the product-state Angle kernel is classically "
                "simulable in closed\nform, so any gap between it and the "
                "ZZ kernel isolates the contribution of\nentanglement; the "
                "RBF row is the classical reference point.\n");

    std::filesystem::create_directories(cli.get_string("results-dir"));
    const std::string path =
        cli.get_string("results-dir") + "/kernel_methods.csv";
    csv.write_file(path);
    std::printf("csv: %s\n", path.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
