// JSON bench reporting: metadata (git SHA, build flags, kernel mode) plus
// per-benchmark entries with ns/op and derived amplitudes/sec, written in
// the same shape tools/check_bench_regression.py consumes. The micro
// benches get this shape via tools/bench_report.py from google-benchmark's
// --benchmark_format=json output; the figure-level driver
// (bench_figs_report) uses this header directly.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace qhdl::bench {

struct BenchMetadata {
  std::string git_sha;      ///< GITHUB_SHA env, else `git rev-parse HEAD`
  std::string compiler;     ///< compiler + version string
  std::string build_flags;  ///< NDEBUG / optimization summary
  bool force_generic_kernels = false;  ///< escape-hatch state at run time
  bool force_uncompiled = false;  ///< compiled-plan escape hatch at run time
};

/// Collects metadata from the environment/process.
BenchMetadata collect_metadata();

struct BenchEntry {
  std::string name;
  double ns_per_op = 0.0;
  /// Derived throughput: amplitude-pair updates per second (0 = not
  /// applicable for this benchmark).
  double amps_per_sec = 0.0;
  std::map<std::string, double> extra;  ///< free-form extra counters
};

/// Writes {"metadata": {...}, "benchmarks": [...]} to `path`.
void write_bench_json(const std::string& path, const BenchMetadata& metadata,
                      const std::vector<BenchEntry>& entries);

}  // namespace qhdl::bench
