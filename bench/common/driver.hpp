// Shared infrastructure for the figure/table bench drivers.
//
// Every driver accepts the same protocol flags (`--paper` switches from the
// reduced bench protocol to the paper's full protocol) and caches sweep
// results as CSV under --results-dir so that drivers which consume the same
// sweep (Figs. 6-10) do not recompute each other's work.
#pragma once

#include <optional>
#include <string>

#include "core/config.hpp"
#include "search/results.hpp"
#include "util/cli.hpp"

namespace qhdl::bench {

struct Protocol {
  search::SweepConfig config;
  bool paper = false;
  std::string results_dir = "qhdl_results";
};

/// Registers the shared protocol flags on a Cli.
void add_protocol_options(util::Cli& cli);

/// Builds the protocol from parsed flags.
Protocol protocol_from_cli(const util::Cli& cli);

/// File path for a family's cached sweep under this protocol.
std::string sweep_cache_path(const Protocol& protocol,
                             search::Family family);

/// Loads a cached sweep if present (and the cache matches the protocol),
/// otherwise runs the sweep and caches it. Set `force` to recompute.
search::SweepResult load_or_run_sweep(search::Family family,
                                      const Protocol& protocol,
                                      bool force = false);

/// Parses a winner spec string produced by ModelSpec::to_string:
/// "[2,10]" or "BEL(q=3,d=2)" / "SEL(q=3,d=2)".
std::optional<search::ModelSpec> parse_spec(const std::string& text);

/// Prints the standard bench banner (what is being reproduced, protocol).
void print_banner(const std::string& experiment, const Protocol& protocol);

/// Prints the Fig. 6/7/8-style per-level table: one row per repetition's
/// winner (spec, FLOPs, params, accuracies) plus the level mean.
void print_sweep_figure(const search::SweepResult& sweep);

/// Writes the per-repetition rows and per-level means CSVs for a figure.
void write_figure_csvs(const search::SweepResult& sweep,
                       const Protocol& protocol, const std::string& stem);

}  // namespace qhdl::bench
