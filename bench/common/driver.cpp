#include "common/driver.hpp"

#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace qhdl::bench {

void add_protocol_options(util::Cli& cli) {
  cli.add_flag("paper",
               "Run the paper's full protocol (5 runs x 5 repetitions, 100 "
               "epochs, 1500 points, features 10..110) instead of the "
               "reduced bench protocol");
  cli.add_flag("force", "Recompute sweeps even if cached results exist");
  cli.add_flag("verbose", "Log search progress");
  cli.add_string("results-dir", "qhdl_results",
                 "Directory for cached sweeps and emitted CSV files");
  cli.add_int("seed", 42, "Search seed (dataset seeds derive from it)");
  cli.add_int("threads", 1,
              "Concurrency for the search (candidate lookahead, per-"
              "candidate runs, quantum batches, sweep levels); results are "
              "identical for any value");
}

Protocol protocol_from_cli(const util::Cli& cli) {
  Protocol protocol;
  protocol.paper = cli.flag("paper");
  protocol.config =
      protocol.paper ? core::paper_scale() : core::bench_scale();
  protocol.config.search.seed =
      static_cast<std::uint64_t>(cli.get_int("seed"));
  protocol.config.search.threads =
      static_cast<std::size_t>(cli.get_int("threads"));
  protocol.results_dir = cli.get_string("results-dir");
  if (cli.flag("verbose")) {
    util::set_log_level(util::LogLevel::Info);
  }
  std::filesystem::create_directories(protocol.results_dir);
  return protocol;
}

std::string sweep_cache_path(const Protocol& protocol,
                             search::Family family) {
  // Encode the effective protocol into the name so paper/bench runs and
  // different seeds never alias.
  const auto& config = protocol.config;
  std::string key = search::family_name(family) + "_" +
                    (protocol.paper ? "paper" : "bench") + "_s" +
                    std::to_string(config.search.seed) + "_p" +
                    std::to_string(config.spiral.points) + "_e" +
                    std::to_string(config.search.train.epochs) + "_r" +
                    std::to_string(config.search.runs_per_model) + "x" +
                    std::to_string(config.search.repetitions);
  return protocol.results_dir + "/sweep_" + key + ".csv";
}

namespace {

/// Rebuilds a SweepResult (winner-level detail only) from a cached
/// sweep_to_csv document.
search::SweepResult sweep_from_csv(const util::CsvDocument& doc,
                                   search::Family family) {
  search::SweepResult sweep;
  sweep.family = family;

  // Rows are ordered by (features, repetition); rebuild levels in order.
  for (const auto& row : doc.rows) {
    if (row.size() < 10) {
      throw std::runtime_error("sweep cache: malformed row");
    }
    const std::size_t features =
        static_cast<std::size_t>(std::stoul(row[1]));
    if (sweep.levels.empty() || sweep.levels.back().features != features) {
      search::LevelResult level;
      level.features = features;
      sweep.levels.push_back(level);
    }
    search::SearchOutcome outcome;
    outcome.candidates_trained =
        static_cast<std::size_t>(std::stoul(row[9]));
    if (!row[3].empty()) {
      search::CandidateResult winner;
      const auto spec = parse_spec(row[3]);
      if (!spec.has_value()) {
        throw std::runtime_error("sweep cache: bad spec '" + row[3] + "'");
      }
      winner.spec = *spec;
      winner.flops = std::stod(row[4]);
      winner.flops_forward = std::stod(row[5]);
      winner.parameter_count =
          static_cast<std::size_t>(std::stoul(row[6]));
      winner.avg_best_train_accuracy = std::stod(row[7]);
      winner.avg_best_val_accuracy = std::stod(row[8]);
      winner.meets_threshold = true;
      outcome.winner = winner;
    }
    sweep.levels.back().search.repetitions.push_back(std::move(outcome));
  }

  // Recompute aggregates.
  for (auto& level : sweep.levels) {
    auto& rs = level.search;
    double flops_sum = 0.0, param_sum = 0.0;
    for (const auto& outcome : rs.repetitions) {
      if (!outcome.winner.has_value()) continue;
      ++rs.successful_repetitions;
      flops_sum += outcome.winner->flops;
      param_sum += static_cast<double>(outcome.winner->parameter_count);
      if (!rs.smallest_winner.has_value() ||
          outcome.winner->flops < rs.smallest_winner->flops) {
        rs.smallest_winner = outcome.winner;
      }
    }
    if (rs.successful_repetitions > 0) {
      const double n = static_cast<double>(rs.successful_repetitions);
      rs.mean_winner_flops = flops_sum / n;
      rs.mean_winner_parameters = param_sum / n;
    }
  }
  return sweep;
}

}  // namespace

search::SweepResult load_or_run_sweep(search::Family family,
                                      const Protocol& protocol, bool force) {
  const std::string path = sweep_cache_path(protocol, family);
  if (!force && std::filesystem::exists(path)) {
    std::printf("[cache] loading %s sweep from %s\n",
                search::family_name(family).c_str(), path.c_str());
    return sweep_from_csv(util::read_csv_file(path), family);
  }
  std::printf("[run] %s sweep (%s protocol) ...\n",
              search::family_name(family).c_str(),
              protocol.paper ? "paper" : "bench");
  std::fflush(stdout);
  const search::SweepResult sweep =
      search::run_complexity_sweep(family, protocol.config);
  search::sweep_to_csv(sweep).write_file(path);
  std::printf("[run] cached -> %s\n", path.c_str());
  return sweep;
}

std::optional<search::ModelSpec> parse_spec(const std::string& text) {
  if (text.empty()) return std::nullopt;
  if (text.front() == '[') {
    if (text.back() != ']') return std::nullopt;
    const std::string inner = text.substr(1, text.size() - 2);
    std::vector<std::size_t> hidden;
    for (const auto& part : util::split(inner, ',')) {
      const std::string trimmed = util::trim(part);
      if (trimmed.empty()) return std::nullopt;
      hidden.push_back(static_cast<std::size_t>(std::stoul(trimmed)));
    }
    return search::ModelSpec::make_classical(std::move(hidden));
  }
  // "BEL(q=3,d=2)" / "SEL(q=3,d=2)".
  const auto open = text.find("(q=");
  const auto comma = text.find(",d=");
  const auto close = text.find(')');
  if (open == std::string::npos || comma == std::string::npos ||
      close == std::string::npos) {
    return std::nullopt;
  }
  try {
    const auto ansatz = qnn::ansatz_from_name(text.substr(0, open));
    const std::size_t qubits = static_cast<std::size_t>(
        std::stoul(text.substr(open + 3, comma - open - 3)));
    const std::size_t depth = static_cast<std::size_t>(
        std::stoul(text.substr(comma + 3, close - comma - 3)));
    return search::ModelSpec::make_hybrid(qubits, depth, ansatz);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

void print_banner(const std::string& experiment, const Protocol& protocol) {
  const auto& c = protocol.config;
  std::printf("=== %s ===\n", experiment.c_str());
  std::printf(
      "protocol: %s | points=%zu classes=%zu | threshold=%.2f | "
      "runs=%zu reps=%zu epochs=%zu batch=%zu lr=%g | levels:",
      protocol.paper ? "paper" : "bench (use --paper for full protocol)",
      c.spiral.points, c.spiral.classes, c.search.accuracy_threshold,
      c.search.runs_per_model, c.search.repetitions, c.search.train.epochs,
      c.search.train.batch_size, c.search.train.learning_rate);
  for (std::size_t f : c.feature_sizes) std::printf(" %zu", f);
  std::printf("\n\n");
}

void print_sweep_figure(const search::SweepResult& sweep) {
  for (const auto& level : sweep.levels) {
    std::printf("-- feature size %zu --\n", level.features);
    util::Table table({"repetition", "winner", "FLOPs (fwd+bwd)",
                       "parameters", "train acc", "val acc",
                       "models trained"});
    for (std::size_t rep = 0; rep < level.search.repetitions.size(); ++rep) {
      const auto& outcome = level.search.repetitions[rep];
      if (outcome.winner.has_value()) {
        const auto& w = *outcome.winner;
        table.add_row({std::to_string(rep + 1), w.spec.to_string(),
                       util::format_double(w.flops, 1),
                       std::to_string(w.parameter_count),
                       util::format_double(w.avg_best_train_accuracy, 3),
                       util::format_double(w.avg_best_val_accuracy, 3),
                       std::to_string(outcome.candidates_trained)});
      } else {
        table.add_row({std::to_string(rep + 1), "(no winner)", "-", "-", "-",
                       "-", std::to_string(outcome.candidates_trained)});
      }
    }
    table.print();
    if (level.search.successful_repetitions > 0) {
      std::printf("mean winner FLOPs = %s | mean winner params = %s\n\n",
                  util::format_double(level.search.mean_winner_flops, 1)
                      .c_str(),
                  util::format_double(level.search.mean_winner_parameters, 1)
                      .c_str());
    } else {
      std::printf("no repetition met the accuracy threshold\n\n");
    }
  }
}

void write_figure_csvs(const search::SweepResult& sweep,
                       const Protocol& protocol, const std::string& stem) {
  const std::string rows_path =
      protocol.results_dir + "/" + stem + "_winners.csv";
  const std::string means_path =
      protocol.results_dir + "/" + stem + "_means.csv";
  search::sweep_to_csv(sweep).write_file(rows_path);
  search::sweep_means_to_csv(sweep).write_file(means_path);
  std::printf("csv: %s\ncsv: %s\n", rows_path.c_str(), means_path.c_str());
}

}  // namespace qhdl::bench
