#include "common/json_report.hpp"

#include <array>
#include <cstdio>
#include <cstdlib>

#include "quantum/kernels.hpp"
#include "util/json.hpp"

namespace qhdl::bench {

namespace {

std::string run_command_line(const char* command) {
  std::array<char, 128> buffer{};
  std::string output;
  FILE* pipe = popen(command, "r");
  if (pipe == nullptr) return {};
  while (fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    output += buffer.data();
  }
  pclose(pipe);
  while (!output.empty() &&
         (output.back() == '\n' || output.back() == '\r')) {
    output.pop_back();
  }
  return output;
}

}  // namespace

BenchMetadata collect_metadata() {
  BenchMetadata metadata;
  if (const char* sha = std::getenv("GITHUB_SHA");
      sha != nullptr && sha[0] != '\0') {
    metadata.git_sha = sha;
  } else {
    metadata.git_sha = run_command_line("git rev-parse HEAD 2>/dev/null");
    if (metadata.git_sha.empty()) metadata.git_sha = "unknown";
  }
#if defined(__clang__)
  metadata.compiler = "clang " __clang_version__;
#elif defined(__GNUC__)
  metadata.compiler = "gcc " __VERSION__;
#else
  metadata.compiler = "unknown";
#endif
#ifdef NDEBUG
  metadata.build_flags = "NDEBUG";
#else
  metadata.build_flags = "assertions";
#endif
  metadata.force_generic_kernels = quantum::kernels::force_generic();
  metadata.force_uncompiled = quantum::kernels::force_uncompiled();
  return metadata;
}

void write_bench_json(const std::string& path, const BenchMetadata& metadata,
                      const std::vector<BenchEntry>& entries) {
  util::Json root = util::Json::object();
  util::Json meta = util::Json::object();
  meta["git_sha"] = util::Json{metadata.git_sha};
  meta["compiler"] = util::Json{metadata.compiler};
  meta["build_flags"] = util::Json{metadata.build_flags};
  meta["force_generic_kernels"] =
      util::Json{metadata.force_generic_kernels};
  meta["force_uncompiled"] = util::Json{metadata.force_uncompiled};
  root["metadata"] = meta;

  util::Json benchmarks = util::Json::array();
  for (const BenchEntry& entry : entries) {
    util::Json row = util::Json::object();
    row["name"] = util::Json{entry.name};
    row["ns_per_op"] = util::Json{entry.ns_per_op};
    if (entry.amps_per_sec > 0.0) {
      row["amps_per_sec"] = util::Json{entry.amps_per_sec};
    }
    for (const auto& [key, value] : entry.extra) {
      row[key] = util::Json{value};
    }
    benchmarks.push_back(row);
  }
  root["benchmarks"] = benchmarks;
  root.write_file(path);
}

}  // namespace qhdl::bench
