// Reproduces paper Fig. 6: FLOPs consumption of the best-performing
// CLASSICAL models at each problem-complexity level. For every feature size
// the grid search (Section III) is repeated; each repetition's winning model
// and its per-sample forward+backward FLOPs are reported, matching the
// paper's per-subplot "top five performing models".
#include <cstdio>

#include "common/driver.hpp"

int main(int argc, char** argv) {
  using namespace qhdl;
  util::Cli cli{"bench_fig6_classical_flops",
                "Fig. 6 — FLOPs of best classical models vs problem "
                "complexity"};
  bench::add_protocol_options(cli);
  try {
    if (!cli.parse(argc, argv)) return 0;
    const bench::Protocol protocol = bench::protocol_from_cli(cli);
    bench::print_banner(
        "Fig. 6 — FLOPs of best-performing classical models", protocol);
    const search::SweepResult sweep = bench::load_or_run_sweep(
        search::Family::Classical, protocol, cli.flag("force"));
    bench::print_sweep_figure(sweep);
    bench::write_figure_csvs(sweep, protocol, "fig6_classical");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
