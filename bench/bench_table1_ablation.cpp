// Reproduces paper Table I: the FLOPs breakdown of hybrid networks into
// Total (TF), Encoding+Classical (Enc+CL), Classical (CL), Encoding (Enc),
// and Quantum-Layer (QL) stages, for the best (qubits, depth) combination at
// feature sizes 10/40/80/110.
//
// Two modes:
//  * default — uses the paper's reported best combinations (BEL: (3,2) ->
//    (3,4) -> (4,4); SEL: (3,2) everywhere), so the table is regenerated
//    without any training;
//  * --from-search — derives the combinations from this repo's own cached
//    hybrid sweeps (runs them if missing).
#include <cstdio>

#include "common/driver.hpp"
#include "core/ablation.hpp"
#include "core/study.hpp"

int main(int argc, char** argv) {
  using namespace qhdl;
  util::Cli cli{"bench_table1_ablation",
                "Table I — FLOPs breakdown (Enc / CL / QL) of hybrid models"};
  bench::add_protocol_options(cli);
  cli.add_flag("from-search",
               "Derive best combinations from this repo's hybrid sweeps "
               "instead of the paper's reported combinations");
  try {
    if (!cli.parse(argc, argv)) return 0;
    const bench::Protocol protocol = bench::protocol_from_cli(cli);
    bench::print_banner("Table I — hybrid FLOPs ablation", protocol);

    std::vector<core::AblationSelection> selection;
    if (cli.flag("from-search")) {
      const bool force = cli.flag("force");
      const auto bel = bench::load_or_run_sweep(search::Family::HybridBel,
                                                protocol, force);
      const auto sel = bench::load_or_run_sweep(search::Family::HybridSel,
                                                protocol, force);
      for (const auto* sweep : {&bel, &sel}) {
        const auto rows = core::ablation_from_sweep(*sweep);
        selection.insert(selection.end(), rows.begin(), rows.end());
      }
      std::printf("best combinations taken from this repo's searches\n\n");
    } else {
      selection = core::paper_table1_selection();
      std::printf("best combinations taken from the paper (use "
                  "--from-search to derive from local sweeps)\n\n");
    }

    const auto rows = core::run_ablation(selection,
                                         protocol.config.spiral.classes,
                                         protocol.config.search.cost_model);
    std::fputs(core::ablation_to_string(rows).c_str(), stdout);

    std::printf(
        "\nPaper Table I (TF/Enc+CL/CL/Enc/QL, TF-profiler counts):\n"
        "  BEL 10/(3,2)=977/749/283/466/228   110/(4,4)=4797/3901/2769/1132/896\n"
        "  SEL 10/(3,2)=1589/749/283/466/840  110/(3,2)=3389/2549/2083/466/840\n"
        "Shape checks reproduced here: Enc depends only on qubits; SEL QL is\n"
        "constant across feature sizes; BEL QL grows once (q,d) grows; CL\n"
        "grows linearly in features.\n");

    const std::string path = protocol.results_dir + "/table1_ablation.csv";
    core::ablation_to_csv(rows).write_file(path);
    std::printf("csv: %s\n", path.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
