// Micro-benchmarks of the classical NN substrate (google-benchmark):
// blocked GEMM at the search-space shapes, dense forward/backward vs width,
// fused softmax-cross-entropy, the workspace vs reference training step, and
// an end-to-end candidate training run — the wall-clock counterpart of the
// analytic FLOPs model.
#include <benchmark/benchmark.h>

#include <optional>
#include <string>

#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "nn/fastpath.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/trainer.hpp"
#include "nn/workspace.hpp"
#include "qnn/hybrid_model.hpp"
#include "tensor/init.hpp"
#include "tensor/ops.hpp"
#include "util/backend_registry.hpp"

namespace {

using namespace qhdl;
using tensor::Shape;
using tensor::Tensor;

/// Blocked GEMM on the shapes the classical search actually runs:
/// batch 8 forward (m=8, k=F, n=hidden), full-dataset eval (m=rows), and a
/// square reference point. Args: {m, k, n}.
void BM_Gemm(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const auto n = static_cast<std::size_t>(state.range(2));
  util::Rng rng{1};
  const Tensor a = tensor::uniform(Shape{m, k}, -1, 1, rng);
  const Tensor b = tensor::uniform(Shape{k, n}, -1, 1, rng);
  Tensor c{Shape{m, n}};
  for (auto _ : state) {
    tensor::matmul_into(a, b, c);
    benchmark::DoNotOptimize(c.data().data());
  }
}
BENCHMARK(BM_Gemm)
    ->Args({8, 10, 10})     // batch forward, F=10 hidden 10
    ->Args({8, 110, 10})    // batch forward, F=110 hidden 10
    ->Args({300, 110, 10})  // full-dataset eval forward
    ->Args({128, 128, 128});

/// dW = Xᵀ·dY accumulation (the backward transpose-A case). Args: {batch, in,
/// out}.
void BM_GemmTransposeA(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const auto in = static_cast<std::size_t>(state.range(1));
  const auto out = static_cast<std::size_t>(state.range(2));
  util::Rng rng{2};
  const Tensor x = tensor::uniform(Shape{batch, in}, -1, 1, rng);
  const Tensor g = tensor::uniform(Shape{batch, out}, -1, 1, rng);
  Tensor dw{Shape{in, out}};
  for (auto _ : state) {
    tensor::matmul_transpose_a_into(x, g, dw, /*accumulate=*/true);
    benchmark::DoNotOptimize(dw.data().data());
  }
}
BENCHMARK(BM_GemmTransposeA)->Args({8, 110, 10})->Args({8, 10, 10});

/// dX = dY·Wᵀ (the backward transpose-B case). Args: {batch, in, out}.
void BM_GemmTransposeB(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const auto in = static_cast<std::size_t>(state.range(1));
  const auto out = static_cast<std::size_t>(state.range(2));
  util::Rng rng{3};
  const Tensor g = tensor::uniform(Shape{batch, out}, -1, 1, rng);
  const Tensor w = tensor::uniform(Shape{in, out}, -1, 1, rng);
  Tensor dx{Shape{batch, in}};
  for (auto _ : state) {
    tensor::matmul_transpose_b_into(g, w, dx);
    benchmark::DoNotOptimize(dx.data().data());
  }
}
BENCHMARK(BM_GemmTransposeB)->Args({8, 110, 10})->Args({8, 10, 10});

void BM_DenseForward(benchmark::State& state) {
  const auto width = static_cast<std::size_t>(state.range(0));
  util::Rng rng{1};
  nn::Dense layer{width, width, rng};
  const Tensor x = tensor::uniform(Shape{8, width}, -1, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(layer.forward(x).data().data());
  }
}
BENCHMARK(BM_DenseForward)->RangeMultiplier(4)->Range(4, 256);

void BM_DenseForwardBackward(benchmark::State& state) {
  const auto width = static_cast<std::size_t>(state.range(0));
  util::Rng rng{2};
  nn::Dense layer{width, width, rng};
  const Tensor x = tensor::uniform(Shape{8, width}, -1, 1, rng);
  const Tensor g = tensor::uniform(Shape{8, width}, -1, 1, rng);
  for (auto _ : state) {
    layer.zero_grad();
    layer.forward(x);
    benchmark::DoNotOptimize(layer.backward(g).data().data());
  }
}
BENCHMARK(BM_DenseForwardBackward)->RangeMultiplier(4)->Range(4, 256);

/// One optimizer step on a batch for a classical [10,10] model at F=110 —
/// the training inner loop of the classical searches, on the zero-allocation
/// workspace fast path (the one train_classifier actually uses).
void BM_ClassicalTrainStep(benchmark::State& state) {
  util::Rng rng{3};
  qnn::ClassicalConfig config;
  config.features = 110;
  config.hidden = {10, 10};
  auto model = qnn::build_classical_model(config, rng);
  auto workspace = nn::TrainWorkspace::compile(*model, 8, 8);
  nn::Adam optimizer{1e-3};
  const Tensor x = tensor::uniform(Shape{8, 110}, -1, 1, rng);
  const std::vector<std::size_t> y{0, 1, 2, 0, 1, 2, 0, 1};
  const std::vector<std::size_t> rows{0, 1, 2, 3, 4, 5, 6, 7};
  for (auto _ : state) {
    benchmark::DoNotOptimize(workspace->train_step(x, y, rows, optimizer));
  }
}
BENCHMARK(BM_ClassicalTrainStep);

/// The same training step through the reference Module path
/// (QHDL_FORCE_REFERENCE_NN) — the before/after counterpart of
/// BM_ClassicalTrainStep.
void BM_ReferenceTrainStep(benchmark::State& state) {
  util::Rng rng{3};
  qnn::ClassicalConfig config;
  config.features = 110;
  config.hidden = {10, 10};
  auto model = qnn::build_classical_model(config, rng);
  nn::Adam optimizer{1e-3};
  nn::SoftmaxCrossEntropy loss;
  const Tensor x = tensor::uniform(Shape{8, 110}, -1, 1, rng);
  const std::vector<std::size_t> y{0, 1, 2, 0, 1, 2, 0, 1};
  for (auto _ : state) {
    model->zero_grad();
    const Tensor logits = model->forward(x);
    const auto result = loss.evaluate(logits, y);
    model->backward(result.grad);
    optimizer.step(model->parameters());
    benchmark::DoNotOptimize(result.value);
  }
}
BENCHMARK(BM_ReferenceTrainStep);

/// End-to-end candidate training (train_classifier: batches + epoch evals)
/// at search scale. Arg 0: feature count F. Arg 1: 0 = workspace fast path,
/// 1 = forced reference path.
void BM_CandidateTrain(benchmark::State& state) {
  const auto features = static_cast<std::size_t>(state.range(0));
  const bool force_reference = state.range(1) != 0;
  util::Rng rng{5};
  constexpr std::size_t kTrainRows = 100, kValRows = 25, kClasses = 3;
  const Tensor x_train =
      tensor::uniform(Shape{kTrainRows, features}, -1, 1, rng);
  const Tensor x_val = tensor::uniform(Shape{kValRows, features}, -1, 1, rng);
  std::vector<std::size_t> y_train(kTrainRows), y_val(kValRows);
  for (std::size_t i = 0; i < kTrainRows; ++i) y_train[i] = i % kClasses;
  for (std::size_t i = 0; i < kValRows; ++i) y_val[i] = i % kClasses;

  qnn::ClassicalConfig config;
  config.features = features;
  config.hidden = {10, 10};
  nn::TrainConfig train_config;
  train_config.epochs = 3;
  train_config.batch_size = 8;

  nn::fastpath::set_force_reference(force_reference);
  for (auto _ : state) {
    util::Rng run_rng{7};
    auto model = qnn::build_classical_model(config, run_rng);
    nn::Adam optimizer{1e-3};
    const auto history =
        nn::train_classifier(*model, optimizer, x_train, y_train, x_val,
                             y_val, train_config, run_rng);
    benchmark::DoNotOptimize(history.best_val_accuracy);
  }
  nn::fastpath::set_force_reference(std::nullopt);
}
BENCHMARK(BM_CandidateTrain)
    ->Args({10, 0})
    ->Args({10, 1})
    ->Args({110, 0})
    ->Args({110, 1});

/// Same for the hybrid SEL(3,2) model at F=110 — quantifies the simulation
/// overhead per training step relative to BM_ClassicalTrainStep.
void BM_HybridTrainStep(benchmark::State& state) {
  util::Rng rng{4};
  qnn::HybridConfig config;
  config.features = 110;
  config.qubits = 3;
  config.depth = 2;
  config.ansatz = qnn::AnsatzKind::StronglyEntangling;
  auto model = qnn::build_hybrid_model(config, rng);
  nn::Adam optimizer{1e-3};
  nn::SoftmaxCrossEntropy loss;
  const Tensor x = tensor::uniform(Shape{8, 110}, -1, 1, rng);
  const std::vector<std::size_t> y{0, 1, 2, 0, 1, 2, 0, 1};
  for (auto _ : state) {
    model->zero_grad();
    const Tensor logits = model->forward(x);
    const auto result = loss.evaluate(logits, y);
    model->backward(result.grad);
    optimizer.step(model->parameters());
    benchmark::DoNotOptimize(result.value);
  }
}
BENCHMARK(BM_HybridTrainStep);

void BM_SoftmaxCrossEntropy(benchmark::State& state) {
  util::Rng rng{5};
  nn::SoftmaxCrossEntropy loss;
  const Tensor logits = tensor::uniform(Shape{64, 3}, -2, 2, rng);
  std::vector<std::size_t> y(64);
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = i % 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(loss.evaluate(logits, y).value);
  }
}
BENCHMARK(BM_SoftmaxCrossEntropy);

/// The allocation-free fused loss core used by the workspace trainer
/// (forward + gradient straight into a preallocated buffer).
void BM_FusedSoftmaxXent(benchmark::State& state) {
  util::Rng rng{6};
  const Tensor logits = tensor::uniform(Shape{64, 3}, -2, 2, rng);
  std::vector<std::size_t> y(64);
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = i % 3;
  std::vector<double> grad(64 * 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::detail::softmax_xent_forward_grad(
        logits.data().data(), 64, 3, y.data(), grad.data()));
  }
}
BENCHMARK(BM_FusedSoftmaxXent);

void BM_AdamStep(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  nn::Parameter p{"w", Tensor::zeros(Shape{size})};
  p.grad.fill(0.01);
  nn::Adam optimizer{1e-3};
  for (auto _ : state) {
    optimizer.step({&p});
    benchmark::DoNotOptimize(p.value.data().data());
  }
}
BENCHMARK(BM_AdamStep)->RangeMultiplier(8)->Range(64, 4096);

// ---------------------------------------------------------------------------
// Per-backend packed-GEMM variants, registered dynamically as
// `BM_GemmPacked@<backend>/<size>` for every supported non-reference
// backend. Size 256 (k*n = 65536) is far past the direct-path dispatch
// bounds, so the registry-dispatched 4x4 micro-kernel dominates the timing.
// tools/check_bench_regression.py understands the `@<backend>` suffix and
// compares like-for-like.

void run_gemm_packed_backend(benchmark::State& state,
                             const std::string& backend) {
  util::simd::set_backend(backend);
  const auto size = static_cast<std::size_t>(state.range(0));
  util::Rng rng{1};
  const Tensor a = tensor::uniform(Shape{size, size}, -1, 1, rng);
  const Tensor b = tensor::uniform(Shape{size, size}, -1, 1, rng);
  Tensor c{Shape{size, size}};
  for (auto _ : state) {
    tensor::matmul_into(a, b, c);
    benchmark::DoNotOptimize(c.data().data());
  }
  state.SetItemsProcessed(state.iterations());
  util::simd::set_backend(std::nullopt);
}

void register_backend_variants() {
  for (const util::simd::Backend* backend : util::simd::backends()) {
    if (backend->reference || !backend->supported()) continue;
    const std::string name = backend->name;
    benchmark::RegisterBenchmark(
        ("BM_GemmPacked@" + name).c_str(),
        [name](benchmark::State& state) {
          run_gemm_packed_backend(state, name);
        })
        ->Arg(256);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_backend_variants();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
