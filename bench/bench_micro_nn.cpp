// Micro-benchmarks of the classical NN substrate (google-benchmark):
// dense forward/backward vs width, a full hybrid training step vs a
// classical training step — the wall-clock counterpart of the analytic
// FLOPs model.
#include <benchmark/benchmark.h>

#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "qnn/hybrid_model.hpp"
#include "tensor/init.hpp"

namespace {

using namespace qhdl;
using tensor::Shape;
using tensor::Tensor;

void BM_DenseForward(benchmark::State& state) {
  const auto width = static_cast<std::size_t>(state.range(0));
  util::Rng rng{1};
  nn::Dense layer{width, width, rng};
  const Tensor x = tensor::uniform(Shape{8, width}, -1, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(layer.forward(x).data().data());
  }
}
BENCHMARK(BM_DenseForward)->RangeMultiplier(4)->Range(4, 256);

void BM_DenseForwardBackward(benchmark::State& state) {
  const auto width = static_cast<std::size_t>(state.range(0));
  util::Rng rng{2};
  nn::Dense layer{width, width, rng};
  const Tensor x = tensor::uniform(Shape{8, width}, -1, 1, rng);
  const Tensor g = tensor::uniform(Shape{8, width}, -1, 1, rng);
  for (auto _ : state) {
    layer.zero_grad();
    layer.forward(x);
    benchmark::DoNotOptimize(layer.backward(g).data().data());
  }
}
BENCHMARK(BM_DenseForwardBackward)->RangeMultiplier(4)->Range(4, 256);

/// One optimizer step on a batch for a classical [10,10] model at F=110 —
/// the training inner loop of the classical searches.
void BM_ClassicalTrainStep(benchmark::State& state) {
  util::Rng rng{3};
  qnn::ClassicalConfig config;
  config.features = 110;
  config.hidden = {10, 10};
  auto model = qnn::build_classical_model(config, rng);
  nn::Adam optimizer{1e-3};
  nn::SoftmaxCrossEntropy loss;
  const Tensor x = tensor::uniform(Shape{8, 110}, -1, 1, rng);
  const std::vector<std::size_t> y{0, 1, 2, 0, 1, 2, 0, 1};
  for (auto _ : state) {
    model->zero_grad();
    const Tensor logits = model->forward(x);
    const auto result = loss.evaluate(logits, y);
    model->backward(result.grad);
    optimizer.step(model->parameters());
    benchmark::DoNotOptimize(result.value);
  }
}
BENCHMARK(BM_ClassicalTrainStep);

/// Same for the hybrid SEL(3,2) model at F=110 — quantifies the simulation
/// overhead per training step relative to BM_ClassicalTrainStep.
void BM_HybridTrainStep(benchmark::State& state) {
  util::Rng rng{4};
  qnn::HybridConfig config;
  config.features = 110;
  config.qubits = 3;
  config.depth = 2;
  config.ansatz = qnn::AnsatzKind::StronglyEntangling;
  auto model = qnn::build_hybrid_model(config, rng);
  nn::Adam optimizer{1e-3};
  nn::SoftmaxCrossEntropy loss;
  const Tensor x = tensor::uniform(Shape{8, 110}, -1, 1, rng);
  const std::vector<std::size_t> y{0, 1, 2, 0, 1, 2, 0, 1};
  for (auto _ : state) {
    model->zero_grad();
    const Tensor logits = model->forward(x);
    const auto result = loss.evaluate(logits, y);
    model->backward(result.grad);
    optimizer.step(model->parameters());
    benchmark::DoNotOptimize(result.value);
  }
}
BENCHMARK(BM_HybridTrainStep);

void BM_SoftmaxCrossEntropy(benchmark::State& state) {
  util::Rng rng{5};
  nn::SoftmaxCrossEntropy loss;
  const Tensor logits = tensor::uniform(Shape{64, 3}, -2, 2, rng);
  std::vector<std::size_t> y(64);
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = i % 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(loss.evaluate(logits, y).value);
  }
}
BENCHMARK(BM_SoftmaxCrossEntropy);

void BM_AdamStep(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  nn::Parameter p{"w", Tensor::zeros(Shape{size})};
  p.grad.fill(0.01);
  nn::Adam optimizer{1e-3};
  for (auto _ : state) {
    optimizer.step({&p});
    benchmark::DoNotOptimize(p.value.data().data());
  }
}
BENCHMARK(BM_AdamStep)->RangeMultiplier(8)->Range(64, 4096);

}  // namespace

BENCHMARK_MAIN();
