// Ablation on the paper's Table-I remark that "the availability of
// quantum-native datasets would eliminate the need for data encoding":
// amplitude encoding is the closest simulable stand-in — 2^q features enter
// the register directly, removing both the Dense(F→q) compressor (the CL
// column) and the per-qubit rotation encoding (the Enc column).
//
// Compares, at F = 8 and F = 16 on the spiral:
//   classical MLP  |  angle-encoded hybrid  |  amplitude-encoded hybrid
// on accuracy, parameters, and the analytic FLOPs split.
#include <cstdio>
#include <filesystem>

#include "data/preprocess.hpp"
#include "data/spiral.hpp"
#include "flops/profiler.hpp"
#include "nn/dense.hpp"
#include "nn/trainer.hpp"
#include "qnn/amplitude_layer.hpp"
#include "qnn/hybrid_model.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace {

using namespace qhdl;

struct Row {
  std::string model;
  std::size_t params;
  double flops_total;
  double flops_classical;
  double flops_encoding;
  double train_acc;
  double val_acc;
};

Row evaluate(const std::string& label, nn::Sequential& model,
             const data::TrainValSplit& split, std::size_t epochs,
             util::Rng& rng) {
  const auto report = flops::profile_model(model);
  nn::Adam optimizer{5e-3};
  nn::TrainConfig config;
  config.epochs = epochs;
  config.batch_size = 8;
  const auto history = nn::train_classifier(
      model, optimizer, split.train.x, split.train.y, split.val.x,
      split.val.y, config, rng);
  return Row{label,          report.parameter_count, report.total(),
             report.classical, report.encoding,
             history.best_train_accuracy, history.best_val_accuracy};
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli{"bench_amplitude_encoding",
                "Amplitude vs angle encoding: what 'quantum-native data' "
                "would buy"};
  cli.add_int("epochs", 40, "Training epochs");
  cli.add_int("points", 600, "Dataset size");
  cli.add_int("seed", 21, "RNG seed");
  cli.add_string("results-dir", "qhdl_results", "CSV output directory");
  try {
    if (!cli.parse(argc, argv)) return 0;
    const auto epochs = static_cast<std::size_t>(cli.get_int("epochs"));
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

    util::Table table({"features", "model", "params", "FLOPs", "CL FLOPs",
                       "Enc FLOPs", "train acc", "val acc"});
    util::CsvWriter csv({"features", "model", "params", "flops",
                         "flops_classical", "flops_encoding", "train_acc",
                         "val_acc"});

    for (std::size_t features : {std::size_t{8}, std::size_t{16}}) {
      data::SpiralConfig spiral;
      spiral.points = static_cast<std::size_t>(cli.get_int("points"));
      const data::Dataset dataset =
          data::make_complexity_dataset(features, spiral, seed + features);
      util::Rng rng{seed};
      data::TrainValSplit split = data::stratified_split(dataset, 0.2, rng);
      data::standardize_split(split);

      const std::size_t amp_qubits = features == 8 ? 3 : 4;
      std::vector<Row> rows;

      {
        qnn::ClassicalConfig config;
        config.features = features;
        config.hidden = {8};
        util::Rng model_rng = rng.split();
        auto model = qnn::build_classical_model(config, model_rng);
        rows.push_back(evaluate("classical [8]", *model, split, epochs,
                                model_rng));
      }
      {
        qnn::HybridConfig config;
        config.features = features;
        config.qubits = 3;
        config.depth = 2;
        util::Rng model_rng = rng.split();
        auto model = qnn::build_hybrid_model(config, model_rng);
        rows.push_back(evaluate("angle hybrid SEL(3,2)", *model, split,
                                epochs, model_rng));
      }
      {
        util::Rng model_rng = rng.split();
        nn::Sequential model;
        qnn::AmplitudeLayerConfig config;
        config.qubits = amp_qubits;
        config.depth = 2;
        model.emplace<qnn::AmplitudeQuantumLayer>(config, model_rng);
        model.emplace<nn::Dense>(amp_qubits, dataset.classes, model_rng);
        rows.push_back(evaluate("amplitude hybrid SEL(" +
                                    std::to_string(amp_qubits) + ",2)",
                                model, split, epochs, model_rng));
      }

      for (const Row& row : rows) {
        table.add_row({std::to_string(features), row.model,
                       std::to_string(row.params),
                       util::format_double(row.flops_total, 0),
                       util::format_double(row.flops_classical, 0),
                       util::format_double(row.flops_encoding, 0),
                       util::format_double(row.train_acc, 3),
                       util::format_double(row.val_acc, 3)});
        csv.add_row({std::to_string(features), row.model,
                     std::to_string(row.params),
                     util::format_double(row.flops_total, 1),
                     util::format_double(row.flops_classical, 1),
                     util::format_double(row.flops_encoding, 1),
                     util::format_double(row.train_acc, 4),
                     util::format_double(row.val_acc, 4)});
      }
    }
    table.print();
    std::printf("\nReading: the amplitude row has CL FLOPs from the output "
                "layer only and\nEnc FLOPs = 0 — the regime the paper "
                "projects for quantum-native data.\nIts parameter count "
                "drops with the compressor; accuracy shows what that\n"
                "frugality costs on a classical dataset.\n");

    std::filesystem::create_directories(cli.get_string("results-dir"));
    const std::string path =
        cli.get_string("results-dir") + "/amplitude_encoding.csv";
    csv.write_file(path);
    std::printf("csv: %s\n", path.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
