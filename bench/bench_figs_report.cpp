// Figure-level benchmark report: times the hybrid-layer workloads the
// figures lean on (batch forward/backward, adjoint VJP) under compiled
// plans, forced-uncompiled lowering, and generic kernels, and writes
// BENCH_figs.json via the shared JSON reporter — the figure-scale
// counterpart of tools/bench_report.py's BENCH_micro.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/json_report.hpp"
#include "qnn/ansatz.hpp"
#include "qnn/encoding.hpp"
#include "qnn/quantum_layer.hpp"
#include "quantum/adjoint_diff.hpp"
#include "quantum/circuit.hpp"
#include "quantum/observable.hpp"
#include "quantum/statevector.hpp"
#include "quantum/exec_plan.hpp"
#include "quantum/kernels.hpp"
#include "tensor/tensor.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {

using namespace qhdl;

// Three execution modes per workload: cached compiled plans (default),
// QHDL_FORCE_UNCOMPILED per-call lowering, and fully generic kernels.
struct BenchMode {
  const char* suffix;
  bool generic;
  bool uncompiled;
};

constexpr BenchMode kModes[] = {
    {"", false, false},
    {"_uncompiled", false, true},
    {"_generic", true, false},
};

void apply_mode(const BenchMode& mode) {
  quantum::kernels::set_force_generic(mode.generic);
  quantum::kernels::set_force_uncompiled(mode.uncompiled);
}

double median(std::vector<double>& samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Times `fn` under every mode with the modes INTERLEAVED per repetition
/// round, then reports each mode's median ns/call. Interleaving matters:
/// this machine's clock drifts several percent over a bench run, so timing
/// one mode to completion before the next would fold that drift into the
/// mode comparison; alternating modes within each round makes adjacent
/// samples share thermal/frequency conditions so the drift cancels in the
/// medians. Each sample is a timed block of `inner` calls preceded by one
/// untimed call — the warm call restores branch predictors and caches
/// after the mode switch, and the block amortizes timer granularity.
std::vector<bench::BenchEntry> time_workload_all_modes(
    const std::string& name, std::size_t repeat, std::size_t inner,
    double amps_per_op, const std::function<void()>& fn) {
  for (const BenchMode& mode : kModes) {
    apply_mode(mode);
    fn();  // warm-up (also primes thread-local scratch and the plan cache)
  }
  std::vector<std::vector<double>> samples(std::size(kModes));
  for (std::size_t r = 0; r < repeat; ++r) {
    for (std::size_t m = 0; m < std::size(kModes); ++m) {
      apply_mode(kModes[m]);
      fn();
      const auto begin = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < inner; ++i) fn();
      const auto end = std::chrono::steady_clock::now();
      samples[m].push_back(
          std::chrono::duration<double, std::nano>(end - begin).count() /
          static_cast<double>(inner));
    }
  }
  std::vector<bench::BenchEntry> entries;
  for (std::size_t m = 0; m < std::size(kModes); ++m) {
    bench::BenchEntry entry;
    entry.name = name + kModes[m].suffix;
    entry.ns_per_op = median(samples[m]);
    if (amps_per_op > 0.0) {
      entry.amps_per_sec = amps_per_op / (entry.ns_per_op * 1e-9);
    }
    entries.push_back(entry);
  }
  return entries;
}

struct LayerWorkload {
  qnn::QuantumLayer layer;
  tensor::Tensor input;
  tensor::Tensor upstream;
  double amps_per_call = 0.0;
};

// Scalar (per-sample) workload over the raw circuit: the path taken by
// parameter-shift, shots, and noisy evaluation, where every run() call
// re-lowered the op stream before compiled plans existed.
struct ScalarWorkload {
  quantum::Circuit circuit;
  std::vector<double> params;
  std::vector<quantum::Observable> observables;
  std::vector<double> upstream;
  double amps_per_call = 0.0;
};

ScalarWorkload make_scalar_workload(std::size_t qubits, std::size_t depth,
                                    util::Rng& rng) {
  ScalarWorkload workload{quantum::Circuit{qubits}, {}, {}, {}, 0.0};
  qnn::AngleEncoding encoding;
  std::size_t count = encoding.append(workload.circuit, qubits);
  count += qnn::append_ansatz(workload.circuit,
                              qnn::AnsatzKind::StronglyEntangling, qubits,
                              depth, count);
  workload.params = rng.uniform_vector(count, -2.0, 2.0);
  for (std::size_t w = 0; w < qubits; ++w) {
    workload.observables.push_back(quantum::Observable::pauli_z(w));
    workload.upstream.push_back(rng.uniform(-1.0, 1.0));
  }
  workload.amps_per_call =
      static_cast<double>(workload.circuit.op_count()) *
      static_cast<double>(std::size_t{1} << qubits);
  return workload;
}

LayerWorkload make_layer_workload(std::size_t qubits, std::size_t depth,
                                  std::size_t batch, util::Rng& rng) {
  qnn::QuantumLayerConfig config;
  config.qubits = qubits;
  config.depth = depth;
  config.threads = 1;
  LayerWorkload workload{qnn::QuantumLayer{config, rng},
                         tensor::Tensor{tensor::Shape{batch, qubits}},
                         tensor::Tensor{tensor::Shape{batch, qubits}}, 0.0};
  for (std::size_t i = 0; i < workload.input.size(); ++i) {
    workload.input[i] = rng.uniform(-1.0, 1.0);
    workload.upstream[i] = rng.uniform(-1.0, 1.0);
  }
  workload.amps_per_call =
      static_cast<double>(batch) *
      static_cast<double>(workload.layer.executor().circuit().op_count()) *
      static_cast<double>(std::size_t{1} << qubits);
  return workload;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli{"bench_figs_report",
                "Times figure-level hybrid workloads under compiled, "
                "uncompiled, and generic execution and writes "
                "BENCH_figs.json"};
  cli.add_string("out", "BENCH_figs.json", "output JSON path");
  cli.add_int("repeat", 9, "timed repetitions per workload");
  if (!cli.parse(argc, argv)) return 0;
  const std::string out_path = cli.get_string("out");
  const auto repeat = static_cast<std::size_t>(cli.get_int("repeat"));

  util::Rng rng{29};
  std::vector<bench::BenchEntry> entries;
  quantum::plan_cache::reset_stats();

  // Cumulative plan-cache counters at the time each workload finished:
  // proves the compiled rounds hit the cache instead of recompiling. The
  // counters go on the compiled (no-suffix) entry of each workload.
  const auto attach_plan_stats = [](std::vector<bench::BenchEntry> batch) {
    const auto stats = quantum::plan_cache::stats();
    batch.front().extra["plan_cache_hits"] =
        static_cast<double>(stats.hits);
    batch.front().extra["plan_cache_misses"] =
        static_cast<double>(stats.misses);
    batch.front().extra["plan_cache_compiled"] =
        static_cast<double>(stats.compiled);
    return batch;
  };
  const auto push_all = [&](std::vector<bench::BenchEntry> batch) {
    for (bench::BenchEntry& entry : batch) {
      entries.push_back(std::move(entry));
    }
  };

  auto sel5 = make_layer_workload(5, 10, 16, rng);
  push_all(attach_plan_stats(time_workload_all_modes(
      "figs/sel_q5_d10_b16_forward", repeat, 16, sel5.amps_per_call,
      [&] { sel5.layer.forward(sel5.input); })));
  sel5.layer.forward(sel5.input);
  push_all(attach_plan_stats(time_workload_all_modes(
      "figs/sel_q5_d10_b16_backward", repeat, 4, sel5.amps_per_call,
      [&] { sel5.layer.backward(sel5.upstream); })));

  auto sel8 = make_layer_workload(8, 2, 16, rng);
  push_all(attach_plan_stats(time_workload_all_modes(
      "figs/sel_q8_d2_b16_forward", repeat, 8, sel8.amps_per_call,
      [&] { sel8.layer.forward(sel8.input); })));

  // Scalar per-sample path (parameter-shift / shots / noise route): here
  // per-call lowering is a larger fraction of the work than in the batch
  // path, whose uncompiled loop never re-analyzed ops in the first place.
  auto scalar5 = make_scalar_workload(5, 10, rng);
  push_all(attach_plan_stats(time_workload_all_modes(
      "figs/sel_q5_d10_scalar_forward", repeat, 64, scalar5.amps_per_call,
      [&] {
        quantum::StateVector state{5};
        scalar5.circuit.run(state, scalar5.params);
      })));
  push_all(attach_plan_stats(time_workload_all_modes(
      "figs/sel_q5_d10_scalar_backward", repeat, 24, scalar5.amps_per_call,
      [&] {
        quantum::adjoint_vjp(scalar5.circuit, scalar5.params,
                             scalar5.observables, scalar5.upstream);
      })));

  // Small-state scalar workload: at q3 the per-op bookkeeping is
  // comparable to the kernel arithmetic, so this is where compiled plans
  // buy the most throughput (~10% on this machine).
  auto scalar3 = make_scalar_workload(3, 10, rng);
  push_all(attach_plan_stats(time_workload_all_modes(
      "figs/sel_q3_d10_scalar_forward", repeat, 128, scalar3.amps_per_call,
      [&] {
        quantum::StateVector state{3};
        scalar3.circuit.run(state, scalar3.params);
      })));

  quantum::kernels::set_force_generic(std::nullopt);
  quantum::kernels::set_force_uncompiled(std::nullopt);

  bench::write_bench_json(out_path, bench::collect_metadata(), entries);
  std::printf("wrote %s (%zu workloads)\n", out_path.c_str(),
              entries.size());
  const auto stats = quantum::kernels::stats();
  std::printf("%s\n", stats.to_string().c_str());
  std::printf("%s\n", quantum::plan_cache::stats().to_string().c_str());
  return 0;
}
