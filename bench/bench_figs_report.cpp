// Figure-level benchmark report: times the hybrid-layer workloads the
// figures lean on (batch forward/backward, adjoint VJP) in both kernel
// modes and writes BENCH_figs.json via the shared JSON reporter — the
// figure-scale counterpart of tools/bench_report.py's BENCH_micro.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/json_report.hpp"
#include "qnn/quantum_layer.hpp"
#include "quantum/kernels.hpp"
#include "tensor/tensor.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {

using namespace qhdl;

/// Median wall-time of `repeat` runs of `fn`, as a BenchEntry.
bench::BenchEntry time_workload(const std::string& name, std::size_t repeat,
                                double amps_per_op,
                                const std::function<void()>& fn) {
  fn();  // warm-up (also primes thread-local scratch)
  std::vector<double> samples;
  samples.reserve(repeat);
  for (std::size_t r = 0; r < repeat; ++r) {
    const auto begin = std::chrono::steady_clock::now();
    fn();
    const auto end = std::chrono::steady_clock::now();
    samples.push_back(
        std::chrono::duration<double, std::nano>(end - begin).count());
  }
  std::sort(samples.begin(), samples.end());
  bench::BenchEntry entry;
  entry.name = name;
  entry.ns_per_op = samples[samples.size() / 2];
  if (amps_per_op > 0.0) {
    entry.amps_per_sec = amps_per_op / (entry.ns_per_op * 1e-9);
  }
  return entry;
}

struct LayerWorkload {
  qnn::QuantumLayer layer;
  tensor::Tensor input;
  tensor::Tensor upstream;
  double amps_per_call = 0.0;
};

LayerWorkload make_layer_workload(std::size_t qubits, std::size_t depth,
                                  std::size_t batch, util::Rng& rng) {
  qnn::QuantumLayerConfig config;
  config.qubits = qubits;
  config.depth = depth;
  config.threads = 1;
  LayerWorkload workload{qnn::QuantumLayer{config, rng},
                         tensor::Tensor{tensor::Shape{batch, qubits}},
                         tensor::Tensor{tensor::Shape{batch, qubits}}, 0.0};
  for (std::size_t i = 0; i < workload.input.size(); ++i) {
    workload.input[i] = rng.uniform(-1.0, 1.0);
    workload.upstream[i] = rng.uniform(-1.0, 1.0);
  }
  workload.amps_per_call =
      static_cast<double>(batch) *
      static_cast<double>(workload.layer.executor().circuit().op_count()) *
      static_cast<double>(std::size_t{1} << qubits);
  return workload;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli{"bench_figs_report",
                "Times figure-level hybrid workloads in both kernel modes "
                "and writes BENCH_figs.json"};
  cli.add_string("out", "BENCH_figs.json", "output JSON path");
  cli.add_int("repeat", 9, "timed repetitions per workload");
  if (!cli.parse(argc, argv)) return 0;
  const std::string out_path = cli.get_string("out");
  const auto repeat = static_cast<std::size_t>(cli.get_int("repeat"));

  util::Rng rng{29};
  std::vector<bench::BenchEntry> entries;

  for (const bool generic : {false, true}) {
    quantum::kernels::set_force_generic(generic);
    const std::string suffix = generic ? "_generic" : "";

    auto sel5 = make_layer_workload(5, 10, 16, rng);
    entries.push_back(time_workload(
        "figs/sel_q5_d10_b16_forward" + suffix, repeat, sel5.amps_per_call,
        [&] { sel5.layer.forward(sel5.input); }));
    sel5.layer.forward(sel5.input);
    entries.push_back(time_workload(
        "figs/sel_q5_d10_b16_backward" + suffix, repeat, sel5.amps_per_call,
        [&] { sel5.layer.backward(sel5.upstream); }));

    auto sel8 = make_layer_workload(8, 2, 16, rng);
    entries.push_back(time_workload(
        "figs/sel_q8_d2_b16_forward" + suffix, repeat, sel8.amps_per_call,
        [&] { sel8.layer.forward(sel8.input); }));
  }
  quantum::kernels::set_force_generic(std::nullopt);

  bench::write_bench_json(out_path, bench::collect_metadata(), entries);
  std::printf("wrote %s (%zu workloads)\n", out_path.c_str(),
              entries.size());
  const auto stats = quantum::kernels::stats();
  std::printf("%s\n", stats.to_string().c_str());
  return 0;
}
