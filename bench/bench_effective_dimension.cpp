// Extension experiment answering the paper's conclusion (A3), which leaves
// the question open "for future research to explore with a broader set of
// metrics": the EFFECTIVE DIMENSION capacity measure of Abbas et al.
// (Nature Comput. Sci. 2021 — the paper's reference [5]), computed for
// classical and hybrid architectures on the same spiral data.
//
// Normalized effective dimension d_eff / P close to 1 means the model's
// parameters span genuinely independent functional directions; Abbas et al.
// report higher values for quantum models. This driver checks whether that
// third metric agrees with the FLOPs/parameter story of Figs. 6-10.
#include <cstdio>
#include <filesystem>

#include "core/effective_dimension.hpp"
#include "data/preprocess.hpp"
#include "data/spiral.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace qhdl;
  util::Cli cli{"bench_effective_dimension",
                "Effective dimension (Abbas et al.) of classical vs hybrid "
                "architectures"};
  cli.add_int("features", 10, "Spiral feature count");
  cli.add_int("param-samples", 6, "Monte-Carlo draws over initializations");
  cli.add_int("data-samples", 24, "Samples in the Fisher batch");
  cli.add_int("n", 1500, "Effective dataset size (the n in kappa_n)");
  cli.add_int("seed", 5, "RNG seed");
  cli.add_string("results-dir", "qhdl_results", "CSV output directory");
  try {
    if (!cli.parse(argc, argv)) return 0;
    const auto features = static_cast<std::size_t>(cli.get_int("features"));
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

    data::SpiralConfig spiral;
    const data::Dataset dataset =
        data::make_complexity_dataset(features, spiral, seed);
    util::Rng rng{seed};
    data::TrainValSplit split = data::stratified_split(dataset, 0.2, rng);
    data::standardize_split(split);

    core::EffectiveDimensionConfig config;
    config.parameter_samples =
        static_cast<std::size_t>(cli.get_int("param-samples"));
    config.data_samples =
        static_cast<std::size_t>(cli.get_int("data-samples"));
    config.dataset_size = static_cast<std::size_t>(cli.get_int("n"));
    config.seed = seed;

    std::printf("=== Effective dimension, %zu-feature spiral, n=%zu ===\n\n",
                features, config.dataset_size);

    const std::vector<search::ModelSpec> candidates{
        search::ModelSpec::make_classical({2}),
        search::ModelSpec::make_classical({4}),
        search::ModelSpec::make_classical({10}),
        search::ModelSpec::make_classical({10, 10}),
        search::ModelSpec::make_hybrid(3, 2,
                                       qnn::AnsatzKind::BasicEntangler),
        search::ModelSpec::make_hybrid(3, 2,
                                       qnn::AnsatzKind::StronglyEntangling),
        search::ModelSpec::make_hybrid(3, 6,
                                       qnn::AnsatzKind::StronglyEntangling),
    };

    util::Table table({"model", "params", "d_eff", "d_eff / params",
                       "mean tr(F)"});
    util::CsvWriter csv({"model", "params", "d_eff", "d_eff_normalized",
                         "mean_fisher_trace"});
    for (const auto& spec : candidates) {
      const auto result = core::effective_dimension(
          spec, split.train.x, dataset.classes, config);
      table.add_row({spec.to_string(),
                     std::to_string(result.parameter_count),
                     util::format_double(result.effective_dimension, 2),
                     util::format_double(result.normalized, 4),
                     util::format_double(result.mean_fisher_trace, 4)});
      csv.add_row({spec.to_string(), std::to_string(result.parameter_count),
                   util::format_double(result.effective_dimension, 4),
                   util::format_double(result.normalized, 6),
                   util::format_double(result.mean_fisher_trace, 6)});
    }
    table.print();
    std::printf("\nReading: d_eff/params near 1 = parameters act "
                "independently (high capacity\nper parameter). Abbas et al. "
                "found quantum models score higher here; if the\nhybrid "
                "rows beat classical rows of similar size, this third "
                "metric supports\nthe paper's conclusion.\n");

    std::filesystem::create_directories(cli.get_string("results-dir"));
    const std::string path =
        cli.get_string("results-dir") + "/effective_dimension.csv";
    csv.write_file(path);
    std::printf("csv: %s\n", path.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
