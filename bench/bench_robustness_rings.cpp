// Robustness extension: does the paper's headline (SEL winners stay small
// while classical winners grow) survive a change of base geometry? Re-runs
// a compressed complexity study on concentric RINGS instead of the spiral,
// with the identical noise/augmentation schedule and search protocol.
#include <cstdio>

#include "common/driver.hpp"
#include "core/analysis.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace qhdl;
  util::Cli cli{"bench_robustness_rings",
                "The complexity study on a rings dataset (robustness check)"};
  bench::add_protocol_options(cli);
  try {
    if (!cli.parse(argc, argv)) return 0;
    bench::Protocol protocol = bench::protocol_from_cli(cli);
    protocol.config.geometry = search::BaseGeometry::Rings;
    if (!protocol.paper) {
      // Compressed: endpoints only, single repetition.
      protocol.config.feature_sizes = {10, 110};
      protocol.config.search.repetitions = 1;
    }
    bench::print_banner(
        "Robustness — the study's conclusions on a rings dataset", protocol);

    std::vector<core::FamilyGrowth> growths;
    util::Table table({"family", "features", "winner", "FLOPs", "params",
                       "val acc"});
    for (search::Family family :
         {search::Family::Classical, search::Family::HybridBel,
          search::Family::HybridSel}) {
      const search::SweepResult sweep =
          search::run_complexity_sweep(family, protocol.config);
      for (const auto& level : sweep.levels) {
        for (const auto& outcome : level.search.repetitions) {
          if (outcome.winner.has_value()) {
            const auto& w = *outcome.winner;
            table.add_row({search::family_name(family),
                           std::to_string(level.features),
                           w.spec.to_string(),
                           util::format_double(w.flops, 0),
                           std::to_string(w.parameter_count),
                           util::format_double(w.avg_best_val_accuracy, 3)});
          } else {
            table.add_row({search::family_name(family),
                           std::to_string(level.features), "(no winner)",
                           "-", "-", "-"});
          }
        }
      }
      search::sweep_to_csv(sweep).write_file(
          protocol.results_dir + "/rings_" + search::family_name(family) +
          ".csv");
      try {
        growths.push_back(core::analyze_growth(sweep));
      } catch (const std::invalid_argument&) {
        // Fewer than two levels with winners: skip the growth row.
      }
    }
    table.print();
    if (!growths.empty()) {
      std::printf("\nGrowth (lowest -> highest level):\n");
      std::fputs(core::growth_comparison_to_string(growths).c_str(), stdout);
    }
    std::printf("\nReading: if the same ordering (SEL grows slowest) holds "
                "here, the paper's\nconclusion is not an artifact of the "
                "spiral geometry.\n");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
