// Supporting analysis for the paper's Section III-C claim that the SEL
// ansatz is more expressive than BEL: expressibility (KL vs Haar — lower is
// better), Meyer-Wallach entangling capability (higher is better), and the
// barren-plateau diagnostic (variance of ∂⟨Z0⟩/∂θ across random parameters)
// for every (ansatz, qubits, depth) configuration in the paper's hybrid
// search space boundary.
#include <cstdio>
#include <filesystem>

#include "qnn/ansatz_metrics.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace qhdl;
  util::Cli cli{"bench_expressibility",
                "Expressibility / entanglement / gradient-variance analysis "
                "of the BEL and SEL ansätze"};
  cli.add_int("samples", 500, "Fidelity sample pairs per configuration");
  cli.add_int("grad-samples", 50, "Random draws for gradient statistics");
  cli.add_int("seed", 3, "RNG seed");
  cli.add_string("results-dir", "qhdl_results", "CSV output directory");
  try {
    if (!cli.parse(argc, argv)) return 0;
    const auto samples = static_cast<std::size_t>(cli.get_int("samples"));
    const auto grad_samples =
        static_cast<std::size_t>(cli.get_int("grad-samples"));
    util::Rng rng{static_cast<std::uint64_t>(cli.get_int("seed"))};

    std::printf("=== Ansatz analysis: why SEL beats BEL (paper Sec. III-C) "
                "===\n");
    std::printf("expressibility: KL(fidelities || Haar), LOWER = more "
                "expressive\nentanglement: Meyer-Wallach Q, higher = more "
                "entangling\ngrad var: Var[dE/dθ] over random θ (barren "
                "plateau diagnostic)\n\n");

    qnn::ExpressibilityConfig config;
    config.sample_pairs = samples;

    util::Table table({"ansatz", "qubits", "depth", "expressibility KL",
                       "entanglement Q", "grad variance", "params"});
    util::CsvWriter csv({"ansatz", "qubits", "depth", "expressibility_kl",
                         "entanglement_q", "grad_variance", "params"});
    for (qnn::AnsatzKind kind : {qnn::AnsatzKind::BasicEntangler,
                                 qnn::AnsatzKind::StronglyEntangling}) {
      for (std::size_t qubits : {std::size_t{3}, std::size_t{4},
                                 std::size_t{5}}) {
        for (std::size_t depth : {std::size_t{1}, std::size_t{2},
                                  std::size_t{5}, std::size_t{10}}) {
          const double kl =
              qnn::ansatz_expressibility(kind, qubits, depth, config, rng);
          const double q = qnn::ansatz_entangling_capability(
              kind, qubits, depth, samples / 4, rng);
          const auto grads = qnn::ansatz_gradient_stats(kind, qubits, depth,
                                                        grad_samples, rng);
          const std::size_t params =
              qnn::ansatz_weight_count(kind, qubits, depth);
          table.add_row({qnn::ansatz_name(kind), std::to_string(qubits),
                         std::to_string(depth), util::format_double(kl, 4),
                         util::format_double(q, 4),
                         util::format_double(grads.variance, 6),
                         std::to_string(params)});
          csv.add_row({qnn::ansatz_name(kind), std::to_string(qubits),
                       std::to_string(depth), util::format_double(kl, 6),
                       util::format_double(q, 6),
                       util::format_double(grads.variance, 8),
                       std::to_string(params)});
        }
      }
    }
    table.print();
    std::printf(
        "\nExpected shape: at equal (q, d), SEL shows lower KL and higher "
        "Q than BEL —\nthe quantified version of the paper's justification "
        "for why SEL(3,2) keeps\nsolving harder problems while BEL must "
        "grow. The gradient-variance column\nshows the cost of "
        "expressiveness: wider/deeper circuits flatten gradients\n(barren "
        "plateaus), bounding how far 'just add qubits' can go.\n");

    std::filesystem::create_directories(cli.get_string("results-dir"));
    const std::string path =
        cli.get_string("results-dir") + "/expressibility.csv";
    csv.write_file(path);
    std::printf("csv: %s\n", path.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
