// Cost-model sensitivity ablation (ours, motivated by DESIGN.md §5): the
// paper's conclusions rest on TF-profiler FLOPs counts whose exact op costs
// are opaque. This driver re-derives the Fig. 10-style growth comparison
// under alternative analytic cost models and reports whether the paper's
// ORDERING (SEL grows slowest) is robust to those choices:
//   * default        — DESIGN.md §5 constants;
//   * costly-cnots   — CNOT/CZ charged like dense gate applications;
//   * cheap-expvals  — measurements at 1 FLOP/amplitude;
//   * shift-backprop — quantum backward priced as parameter-shift
//                      (2 circuit evaluations per parameter) instead of
//                      adjoint, the cost a NISQ device would actually pay.
//
// No training: the analysis re-prices the winner architectures of the
// cached sweeps (Figs. 6-8) under each model.
#include <cstdio>

#include "common/driver.hpp"
#include "core/analysis.hpp"
#include "flops/profiler.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace {

using namespace qhdl;

struct Variant {
  std::string name;
  flops::CostModel cost_model;
  bool shift_backprop = false;
};

std::vector<Variant> variants() {
  std::vector<Variant> list;
  list.push_back({"default", flops::CostModel{}, false});

  flops::CostModel costly_cnots;
  costly_cnots.entangler_per_amplitude = 14.0;
  list.push_back({"costly-cnots", costly_cnots, false});

  flops::CostModel cheap_expvals;
  cheap_expvals.expval_per_amplitude = 1.0;
  cheap_expvals.observable_apply_per_amplitude = 1.0;
  list.push_back({"cheap-expvals", cheap_expvals, false});

  list.push_back({"shift-backprop", flops::CostModel{}, true});
  return list;
}

/// Re-prices one winner spec under a variant; for shift-backprop the
/// quantum backward is 2 forward circuit evaluations per trainable
/// parameter (the hardware parameter-shift cost).
double price(const search::ModelSpec& spec, std::size_t features,
             std::size_t classes, const Variant& variant) {
  const auto infos =
      search::spec_layer_infos(spec, features, classes,
                               qnn::Activation::Tanh);
  if (!variant.shift_backprop) {
    return flops::profile_layers(infos, variant.cost_model).total();
  }
  double total = 0.0;
  for (const auto& info : infos) {
    total += variant.cost_model.layer_forward(info);
    if (info.kind == "quantum") {
      const double forward =
          variant.cost_model.quantum_encoding_forward(info) +
          variant.cost_model.quantum_circuit_forward(info);
      const double trainable = static_cast<double>(info.param_gate_count);
      total += 2.0 * trainable * forward;  // two shifted evals per param
    } else {
      total += variant.cost_model.layer_backward(info);
    }
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli{"bench_ablation_costmodel",
                "Cost-model sensitivity of the Fig. 10 growth comparison"};
  bench::add_protocol_options(cli);
  try {
    if (!cli.parse(argc, argv)) return 0;
    const bench::Protocol protocol = bench::protocol_from_cli(cli);
    bench::print_banner(
        "Ablation — is the growth ordering robust to the FLOPs cost model?",
        protocol);

    const bool force = cli.flag("force");
    const std::size_t classes = protocol.config.spiral.classes;

    struct FamilySweep {
      search::Family family;
      search::SweepResult sweep;
    };
    std::vector<FamilySweep> sweeps;
    for (search::Family family :
         {search::Family::Classical, search::Family::HybridBel,
          search::Family::HybridSel}) {
      sweeps.push_back(
          {family, bench::load_or_run_sweep(family, protocol, force)});
    }

    util::Table table({"cost model", "family", "FLOPs low", "FLOPs high",
                       "increase %"});
    util::CsvWriter csv(
        {"cost_model", "family", "flops_low", "flops_high", "pct_increase"});
    for (const Variant& variant : variants()) {
      for (const auto& [family, sweep] : sweeps) {
        // Mean re-priced winner FLOPs at the first and last level with
        // winners.
        double low = 0.0, high = 0.0;
        bool have_low = false;
        for (const auto& level : sweep.levels) {
          if (level.search.successful_repetitions == 0) continue;
          double mean = 0.0;
          std::size_t n = 0;
          for (const auto& outcome : level.search.repetitions) {
            if (!outcome.winner.has_value()) continue;
            mean += price(outcome.winner->spec, level.features, classes,
                          variant);
            ++n;
          }
          mean /= static_cast<double>(n);
          if (!have_low) {
            low = mean;
            have_low = true;
          }
          high = mean;
        }
        if (!have_low || low == 0.0) continue;
        const double pct = 100.0 * (high - low) / low;
        table.add_row({variant.name, search::family_name(family),
                       util::format_double(low, 1),
                       util::format_double(high, 1),
                       util::format_double(pct, 1)});
        csv.add_row({variant.name, search::family_name(family),
                     util::format_double(low, 2),
                     util::format_double(high, 2),
                     util::format_double(pct, 2)});
      }
    }
    table.print();
    std::printf(
        "\nReading: if hybrid-sel's 'increase %%' stays below classical's "
        "across\nall cost models, the paper's conclusion does not hinge on "
        "the profiler.\nNote shift-backprop: on real NISQ hardware the "
        "quantum backward scales\nwith parameter count, which erodes the "
        "hybrid advantage for deep circuits.\n");
    const std::string path =
        protocol.results_dir + "/ablation_costmodel.csv";
    csv.write_file(path);
    std::printf("csv: %s\n", path.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
