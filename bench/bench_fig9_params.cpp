// Reproduces paper Fig. 9: parameter counts of the best-performing models —
// classical (top panel), hybrid BEL (middle), hybrid SEL (bottom) — at the
// selected complexity levels. Consumes the same cached sweeps as Figs. 6-8.
#include <cstdio>

#include "common/driver.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace {

using namespace qhdl;

void print_panel(const char* title, const search::SweepResult& sweep) {
  std::printf("%s\n", title);
  util::Table table(
      {"features", "repetition", "winner", "parameters", "mean params"});
  for (const auto& level : sweep.levels) {
    for (std::size_t rep = 0; rep < level.search.repetitions.size(); ++rep) {
      const auto& outcome = level.search.repetitions[rep];
      table.add_row(
          {std::to_string(level.features), std::to_string(rep + 1),
           outcome.winner.has_value() ? outcome.winner->spec.to_string()
                                      : "(no winner)",
           outcome.winner.has_value()
               ? std::to_string(outcome.winner->parameter_count)
               : "-",
           rep == 0 && level.search.successful_repetitions > 0
               ? util::format_double(level.search.mean_winner_parameters, 1)
               : ""});
    }
  }
  table.print();
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli{"bench_fig9_params",
                "Fig. 9 — parameter counts of best models per family"};
  bench::add_protocol_options(cli);
  try {
    if (!cli.parse(argc, argv)) return 0;
    const bench::Protocol protocol = bench::protocol_from_cli(cli);
    bench::print_banner(
        "Fig. 9 — parameters of best classical / BEL / SEL models",
        protocol);

    const bool force = cli.flag("force");
    const auto classical =
        bench::load_or_run_sweep(search::Family::Classical, protocol, force);
    const auto bel =
        bench::load_or_run_sweep(search::Family::HybridBel, protocol, force);
    const auto sel =
        bench::load_or_run_sweep(search::Family::HybridSel, protocol, force);

    print_panel("Top panel — classical models", classical);
    print_panel("Middle panel — hybrid (BEL) models", bel);
    print_panel("Bottom panel — hybrid (SEL) models", sel);

    util::CsvWriter csv({"family", "features", "repetition", "winner",
                         "parameters"});
    for (const auto* sweep : {&classical, &bel, &sel}) {
      for (const auto& level : sweep->levels) {
        for (std::size_t rep = 0; rep < level.search.repetitions.size();
             ++rep) {
          const auto& outcome = level.search.repetitions[rep];
          if (!outcome.winner.has_value()) continue;
          csv.add_row({search::family_name(sweep->family),
                       std::to_string(level.features),
                       std::to_string(rep + 1),
                       outcome.winner->spec.to_string(),
                       std::to_string(outcome.winner->parameter_count)});
        }
      }
    }
    const std::string path = protocol.results_dir + "/fig9_parameters.csv";
    csv.write_file(path);
    std::printf("csv: %s\n", path.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
