// Micro-benchmarks of the quantum-simulation substrate (google-benchmark).
// These quantify the "simulation overhead" the paper's argument leans on:
// gate application and adjoint differentiation scale exponentially with the
// qubit count on classical hardware.
#include <string>

#include <benchmark/benchmark.h>

#include "qnn/ansatz.hpp"
#include "qnn/encoding.hpp"
#include "qnn/quantum_layer.hpp"
#include "quantum/adjoint_diff.hpp"
#include "quantum/kernels.hpp"
#include "quantum/parameter_shift.hpp"
#include "quantum/statevector_batch.hpp"
#include "tensor/tensor.hpp"
#include "util/backend_registry.hpp"
#include "util/rng.hpp"

namespace {

using namespace qhdl;
using quantum::Circuit;
using quantum::GateType;
using quantum::Observable;
using quantum::StateVector;

void BM_SingleQubitGate(benchmark::State& state) {
  const auto qubits = static_cast<std::size_t>(state.range(0));
  StateVector sv{qubits};
  const quantum::Mat2 gate = quantum::gates::rx(0.73);
  std::size_t wire = 0;
  for (auto _ : state) {
    sv.apply_single_qubit(gate, wire);
    wire = (wire + 1) % qubits;
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SingleQubitGate)->DenseRange(2, 12, 2);

void BM_Cnot(benchmark::State& state) {
  const auto qubits = static_cast<std::size_t>(state.range(0));
  StateVector sv{qubits};
  sv.apply_single_qubit(quantum::gates::hadamard(), 0);
  for (auto _ : state) {
    sv.apply_cnot(0, 1);
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
}
BENCHMARK(BM_Cnot)->DenseRange(2, 12, 2);

void BM_ExpvalZ(benchmark::State& state) {
  const auto qubits = static_cast<std::size_t>(state.range(0));
  StateVector sv{qubits};
  sv.apply_single_qubit(quantum::gates::ry(0.9), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sv.expval_pauli_z(0));
  }
}
BENCHMARK(BM_ExpvalZ)->DenseRange(2, 12, 2);

Circuit make_sel_circuit(std::size_t qubits, std::size_t depth,
                         std::vector<double>& params) {
  Circuit circuit{qubits};
  qnn::AngleEncoding encoding;
  std::size_t offset = encoding.append(circuit, qubits);
  offset += qnn::append_ansatz(circuit, qnn::AnsatzKind::StronglyEntangling,
                               qubits, depth, offset);
  util::Rng rng{7};
  params = rng.uniform_vector(offset, -1.0, 1.0);
  return circuit;
}

void BM_SelForward(benchmark::State& state) {
  const auto qubits = static_cast<std::size_t>(state.range(0));
  std::vector<double> params;
  const Circuit circuit = make_sel_circuit(qubits, 2, params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit.execute(params).amplitudes().data());
  }
}
BENCHMARK(BM_SelForward)->DenseRange(2, 10, 2);

void BM_SelAdjointVjp(benchmark::State& state) {
  const auto qubits = static_cast<std::size_t>(state.range(0));
  std::vector<double> params;
  const Circuit circuit = make_sel_circuit(qubits, 2, params);
  std::vector<Observable> observables;
  std::vector<double> upstream;
  for (std::size_t w = 0; w < qubits; ++w) {
    observables.push_back(Observable::pauli_z(w));
    upstream.push_back(0.5);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        quantum::adjoint_vjp(circuit, params, observables, upstream)
            .gradient.data());
  }
}
BENCHMARK(BM_SelAdjointVjp)->DenseRange(2, 10, 2);

void BM_SelParameterShift(benchmark::State& state) {
  // The hardware-style gradient: cost grows with PARAMETER count on top of
  // the state-vector cost — compare against BM_SelAdjointVjp.
  const auto qubits = static_cast<std::size_t>(state.range(0));
  std::vector<double> params;
  const Circuit circuit = make_sel_circuit(qubits, 2, params);
  const Observable obs = Observable::pauli_z(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        quantum::parameter_shift_gradient(circuit, params, obs).data());
  }
}
BENCHMARK(BM_SelParameterShift)->DenseRange(2, 8, 2);

void BM_QuantumLayerBatchForward(benchmark::State& state) {
  // Batch-parallel hybrid-layer forward on the shared thread pool; the
  // argument is the thread count. The pool is persistent, so per-call
  // dispatch overhead stays flat while wall time drops with cores
  // (ThreadsPerBatch=1 is the serial baseline).
  const auto threads = static_cast<std::size_t>(state.range(0));
  qnn::QuantumLayerConfig config;
  config.qubits = 8;
  config.depth = 2;
  config.threads = threads;
  util::Rng rng{11};
  qnn::QuantumLayer layer{config, rng};
  const std::size_t batch = 16;
  tensor::Tensor input{tensor::Shape{batch, config.qubits}};
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = rng.uniform(-1.0, 1.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(layer.forward(input));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_QuantumLayerBatchForward)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

/// Pins the kernel mode for one benchmark's scope (specialized vs the
/// QHDL_FORCE_GENERIC_KERNELS escape hatch) so each binary carries its own
/// before/after pair.
class KernelModeGuard {
 public:
  explicit KernelModeGuard(bool generic) {
    quantum::kernels::set_force_generic(generic);
  }
  ~KernelModeGuard() { quantum::kernels::set_force_generic(std::nullopt); }
};

void run_rz_bench(benchmark::State& state, bool generic) {
  const KernelModeGuard guard{generic};
  const auto qubits = static_cast<std::size_t>(state.range(0));
  StateVector sv{qubits};
  sv.apply_single_qubit(quantum::gates::hadamard(), 0);
  std::size_t wire = 0;
  for (auto _ : state) {
    quantum::apply_gate(sv, GateType::RZ, 0.41, wire);
    wire = (wire + 1) % qubits;
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
  state.counters["amps_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(sv.dimension()),
      benchmark::Counter::kIsRate);
}

void BM_RzGate(benchmark::State& state) { run_rz_bench(state, false); }
void BM_RzGateGeneric(benchmark::State& state) { run_rz_bench(state, true); }
BENCHMARK(BM_RzGate)->DenseRange(4, 12, 4);
BENCHMARK(BM_RzGateGeneric)->DenseRange(4, 12, 4);

void run_sel_forward_bench(benchmark::State& state, bool generic) {
  const KernelModeGuard guard{generic};
  const auto qubits = static_cast<std::size_t>(state.range(0));
  std::vector<double> params;
  const Circuit circuit = make_sel_circuit(qubits, 2, params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit.execute(params).amplitudes().data());
  }
  state.counters["amps_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(circuit.op_count()) *
          static_cast<double>(std::size_t{1} << qubits),
      benchmark::Counter::kIsRate);
}

void BM_SelForwardFused(benchmark::State& state) {
  run_sel_forward_bench(state, false);
}
void BM_SelForwardGeneric(benchmark::State& state) {
  run_sel_forward_bench(state, true);
}
BENCHMARK(BM_SelForwardFused)->DenseRange(2, 10, 2);
BENCHMARK(BM_SelForwardGeneric)->DenseRange(2, 10, 2);

/// The PR acceptance workload: SEL, 5 qubits, depth 10, batch 16, one
/// thread. `Generic` pins the escape hatch, reproducing the pre-batching
/// per-row dense path as the baseline for the speedup ratio.
void run_layer5q_forward_bench(benchmark::State& state, bool generic) {
  const KernelModeGuard guard{generic};
  qnn::QuantumLayerConfig config;
  config.qubits = 5;
  config.depth = 10;
  config.threads = 1;
  util::Rng rng{11};
  qnn::QuantumLayer layer{config, rng};
  const std::size_t batch = 16;
  tensor::Tensor input{tensor::Shape{batch, config.qubits}};
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = rng.uniform(-1.0, 1.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(layer.forward(input));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch));
  state.counters["amps_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(batch) *
          static_cast<double>(layer.executor().circuit().op_count()) *
          static_cast<double>(std::size_t{1} << config.qubits),
      benchmark::Counter::kIsRate);
}

void BM_QuantumLayerForward5qD10(benchmark::State& state) {
  run_layer5q_forward_bench(state, false);
}
void BM_QuantumLayerForward5qD10Generic(benchmark::State& state) {
  run_layer5q_forward_bench(state, true);
}
BENCHMARK(BM_QuantumLayerForward5qD10);
BENCHMARK(BM_QuantumLayerForward5qD10Generic);

void run_layer5q_backward_bench(benchmark::State& state, bool generic) {
  const KernelModeGuard guard{generic};
  qnn::QuantumLayerConfig config;
  config.qubits = 5;
  config.depth = 10;
  config.threads = 1;
  util::Rng rng{11};
  qnn::QuantumLayer layer{config, rng};
  const std::size_t batch = 16;
  tensor::Tensor input{tensor::Shape{batch, config.qubits}};
  tensor::Tensor upstream{tensor::Shape{batch, config.qubits}};
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = rng.uniform(-1.0, 1.0);
    upstream[i] = rng.uniform(-1.0, 1.0);
  }
  benchmark::DoNotOptimize(layer.forward(input));
  for (auto _ : state) {
    benchmark::DoNotOptimize(layer.backward(upstream));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch));
}

void BM_QuantumLayerBackward5qD10(benchmark::State& state) {
  run_layer5q_backward_bench(state, false);
}
void BM_QuantumLayerBackward5qD10Generic(benchmark::State& state) {
  run_layer5q_backward_bench(state, true);
}
BENCHMARK(BM_QuantumLayerBackward5qD10);
BENCHMARK(BM_QuantumLayerBackward5qD10Generic);

void BM_SelAdjointVsDepth(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  std::vector<double> params;
  const Circuit circuit = make_sel_circuit(4, depth, params);
  std::vector<Observable> observables;
  std::vector<double> upstream;
  for (std::size_t w = 0; w < 4; ++w) {
    observables.push_back(Observable::pauli_z(w));
    upstream.push_back(0.5);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        quantum::adjoint_vjp(circuit, params, observables, upstream)
            .gradient.data());
  }
}
BENCHMARK(BM_SelAdjointVsDepth)->DenseRange(1, 10, 3);

// ---------------------------------------------------------------------------
// Per-backend variants of the registry-dispatched kernels, registered
// dynamically as `BM_<Kernel>@<backend>/<qubits>` for every backend this
// machine supports (reference excluded — it measures the legacy scalar
// paths, not a kernel table). tools/check_bench_regression.py understands
// the `@<backend>` suffix and compares like-for-like, skipping backends the
// baseline runner could not measure.

/// Pins one backend for a benchmark's scope; restores env/build/auto on
/// exit.
class BackendGuard {
 public:
  explicit BackendGuard(const std::string& name) {
    util::simd::set_backend(name);
  }
  ~BackendGuard() { util::simd::set_backend(std::nullopt); }
};

void run_single_qubit_backend(benchmark::State& state,
                              const std::string& backend) {
  const BackendGuard guard{backend};
  const auto qubits = static_cast<std::size_t>(state.range(0));
  StateVector sv{qubits};
  const quantum::Mat2 gate = quantum::gates::rx(0.73);
  std::size_t wire = 0;
  for (auto _ : state) {
    sv.apply_single_qubit(gate, wire);
    wire = (wire + 1) % qubits;
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
  state.SetItemsProcessed(state.iterations());
}

void run_cnot_backend(benchmark::State& state, const std::string& backend) {
  const BackendGuard guard{backend};
  const auto qubits = static_cast<std::size_t>(state.range(0));
  StateVector sv{qubits};
  sv.apply_single_qubit(quantum::gates::hadamard(), 0);
  for (auto _ : state) {
    sv.apply_cnot(0, 1);
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
}

void run_expval_backend(benchmark::State& state, const std::string& backend) {
  const BackendGuard guard{backend};
  const auto qubits = static_cast<std::size_t>(state.range(0));
  StateVector sv{qubits};
  sv.apply_single_qubit(quantum::gates::ry(0.9), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sv.expval_pauli_z(0));
  }
}

// --- batched SoA variants (DESIGN.md §14) ---------------------------------
// The batched kernels vectorize across batch lanes, so their speedup over
// generic is the PR-8 acceptance metric; batch 16 fills the widest (AVX-512
// 4-lane × unrolled) paths, and the layer-level forward measures the whole
// compiled batch pipeline end to end.

void run_single_qubit_batch_backend(benchmark::State& state,
                                    const std::string& backend) {
  const BackendGuard guard{backend};
  const auto qubits = static_cast<std::size_t>(state.range(0));
  const std::size_t batch = 16;
  quantum::StateVectorBatch sv{qubits, batch};
  const quantum::Mat2 gate = quantum::gates::rx(0.73);
  std::size_t wire = 0;
  for (auto _ : state) {
    sv.apply_single_qubit(gate, wire);
    wire = (wire + 1) % qubits;
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch));
}

void run_expval_batch_backend(benchmark::State& state,
                              const std::string& backend) {
  const BackendGuard guard{backend};
  const auto qubits = static_cast<std::size_t>(state.range(0));
  const std::size_t batch = 16;
  quantum::StateVectorBatch sv{qubits, batch};
  sv.apply_single_qubit(quantum::gates::ry(0.9), 0);
  std::vector<double> out(batch);
  for (auto _ : state) {
    sv.expval_pauli_z(0, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch));
}

void run_adjoint_vjp_batch_backend(benchmark::State& state,
                                   const std::string& backend) {
  const BackendGuard guard{backend};
  const auto qubits = static_cast<std::size_t>(state.range(0));
  const std::size_t batch = 16;
  std::vector<double> proto;
  const Circuit circuit = make_sel_circuit(qubits, 2, proto);
  // Hybrid-layer parameter shape: per-row encoding angles, shared weights.
  util::Rng rng{13};
  std::vector<double> params(batch * proto.size());
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t p = 0; p < proto.size(); ++p) {
      params[b * proto.size() + p] =
          p < qubits ? rng.uniform(-1.0, 1.0) : proto[p];
    }
  }
  std::vector<Observable> observables;
  for (std::size_t w = 0; w < qubits; ++w) {
    observables.push_back(Observable::pauli_z(w));
  }
  std::vector<double> upstream(batch * qubits, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        quantum::adjoint_vjp_batch(circuit, params, proto.size(), batch,
                                   observables, upstream)
            .gradient.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch));
}

void run_layer_batch_forward_backend(benchmark::State& state,
                                     const std::string& backend) {
  const BackendGuard guard{backend};
  qnn::QuantumLayerConfig config;
  config.qubits = 8;
  config.depth = 2;
  config.threads = 1;
  util::Rng rng{11};
  qnn::QuantumLayer layer{config, rng};
  const std::size_t batch = 16;
  tensor::Tensor input{tensor::Shape{batch, config.qubits}};
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = rng.uniform(-1.0, 1.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(layer.forward(input));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch));
}

void register_backend_variants() {
  for (const util::simd::Backend* backend : util::simd::backends()) {
    if (backend->reference || !backend->supported()) continue;
    const std::string name = backend->name;
    benchmark::RegisterBenchmark(
        ("BM_SingleQubitGate@" + name).c_str(),
        [name](benchmark::State& state) {
          run_single_qubit_backend(state, name);
        })
        ->Arg(10)
        ->Arg(12);
    benchmark::RegisterBenchmark(
        ("BM_Cnot@" + name).c_str(),
        [name](benchmark::State& state) { run_cnot_backend(state, name); })
        ->Arg(10)
        ->Arg(12);
    benchmark::RegisterBenchmark(
        ("BM_ExpvalZ@" + name).c_str(),
        [name](benchmark::State& state) { run_expval_backend(state, name); })
        ->Arg(10)
        ->Arg(12);
    benchmark::RegisterBenchmark(
        ("BM_SingleQubitBatch@" + name).c_str(),
        [name](benchmark::State& state) {
          run_single_qubit_batch_backend(state, name);
        })
        ->Arg(6)
        ->Arg(8);
    benchmark::RegisterBenchmark(
        ("BM_ExpvalZBatch@" + name).c_str(),
        [name](benchmark::State& state) {
          run_expval_batch_backend(state, name);
        })
        ->Arg(6)
        ->Arg(8);
    benchmark::RegisterBenchmark(
        ("BM_AdjointVjpBatch@" + name).c_str(),
        [name](benchmark::State& state) {
          run_adjoint_vjp_batch_backend(state, name);
        })
        ->Arg(6);
    benchmark::RegisterBenchmark(
        ("BM_QuantumLayerBatchForward@" + name).c_str(),
        [name](benchmark::State& state) {
          run_layer_batch_forward_backend(state, name);
        });
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_backend_variants();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
