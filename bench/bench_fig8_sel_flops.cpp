// Reproduces paper Fig. 8: FLOPs consumption of the best-performing hybrid
// models with the Strongly Entangling Layer (SEL) ansatz. The paper's
// headline shape: the SEL circuit stays small across ALL complexity levels,
// so FLOPs growth comes almost entirely from the classical input layer.
#include <cstdio>

#include "common/driver.hpp"

int main(int argc, char** argv) {
  using namespace qhdl;
  util::Cli cli{"bench_fig8_sel_flops",
                "Fig. 8 — FLOPs of best hybrid (SEL) models vs problem "
                "complexity"};
  bench::add_protocol_options(cli);
  try {
    if (!cli.parse(argc, argv)) return 0;
    const bench::Protocol protocol = bench::protocol_from_cli(cli);
    bench::print_banner("Fig. 8 — FLOPs of best-performing hybrid (SEL) models",
                        protocol);
    const search::SweepResult sweep = bench::load_or_run_sweep(
        search::Family::HybridSel, protocol, cli.flag("force"));
    bench::print_sweep_figure(sweep);
    bench::write_figure_csvs(sweep, protocol, "fig8_sel");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
