#include <gtest/gtest.h>

#include <set>

#include "core/config.hpp"
#include "data/preprocess.hpp"
#include "flops/profiler.hpp"
#include "search/results.hpp"
#include "tensor/ops.hpp"

namespace qhdl::search {
namespace {

TEST(SearchSpace, CombinationCountFormula) {
  // Paper example: m = 2, n = 2 -> 6 combinations.
  EXPECT_EQ(classical_combination_count(2, 2), 6u);
  // Paper's space: m = 5, n = 3 -> 155.
  EXPECT_EQ(classical_combination_count(5, 3), 155u);
}

TEST(SearchSpace, ClassicalEnumerationMatchesFormula) {
  const auto specs = classical_search_space({2, 4, 6, 8, 10}, 3);
  EXPECT_EQ(specs.size(), 155u);
  // All unique.
  std::set<std::string> names;
  for (const auto& spec : specs) names.insert(spec.to_string());
  EXPECT_EQ(names.size(), 155u);
}

TEST(SearchSpace, ClassicalSmallExampleOrder) {
  // The paper's worked example: m=[2,3], n=2 -> [2],[3],[2,2],[2,3],[3,2],[3,3].
  const auto specs = classical_search_space({2, 3}, 2);
  ASSERT_EQ(specs.size(), 6u);
  EXPECT_EQ(specs[0].to_string(), "[2]");
  EXPECT_EQ(specs[1].to_string(), "[3]");
  EXPECT_EQ(specs[2].to_string(), "[2,2]");
  EXPECT_EQ(specs[3].to_string(), "[2,3]");
  EXPECT_EQ(specs[4].to_string(), "[3,2]");
  EXPECT_EQ(specs[5].to_string(), "[3,3]");
}

TEST(SearchSpace, HybridEnumeration) {
  const auto specs = paper_hybrid_space(qnn::AnsatzKind::BasicEntangler);
  EXPECT_EQ(specs.size(), 30u);  // {3,4,5} x depth 1..10
  std::set<std::string> names;
  for (const auto& spec : specs) {
    EXPECT_EQ(spec.family, ModelSpec::Family::Hybrid);
    names.insert(spec.to_string());
  }
  EXPECT_EQ(names.size(), 30u);
}

TEST(SearchSpace, EmptyInputsThrow) {
  EXPECT_THROW(classical_search_space({}, 2), std::invalid_argument);
  EXPECT_THROW(classical_search_space({2}, 0), std::invalid_argument);
  EXPECT_THROW(hybrid_search_space({}, 3, qnn::AnsatzKind::BasicEntangler),
               std::invalid_argument);
}

TEST(Candidate, ToStringForms) {
  EXPECT_EQ(ModelSpec::make_classical({4, 8}).to_string(), "[4,8]");
  EXPECT_EQ(ModelSpec::make_hybrid(3, 2, qnn::AnsatzKind::StronglyEntangling)
                .to_string(),
            "SEL(q=3,d=2)");
}

TEST(Candidate, LayerInfosForClassical) {
  const auto spec = ModelSpec::make_classical({6, 4});
  const auto infos = spec_layer_infos(spec, 10, 3, qnn::Activation::Tanh);
  ASSERT_EQ(infos.size(), 5u);  // dense, tanh, dense, tanh, dense
  EXPECT_EQ(infos[0].inputs, 10u);
  EXPECT_EQ(infos[0].outputs, 6u);
  EXPECT_EQ(infos[4].outputs, 3u);
}

TEST(Candidate, LayerInfosForHybrid) {
  const auto spec =
      ModelSpec::make_hybrid(4, 3, qnn::AnsatzKind::BasicEntangler);
  const auto infos = spec_layer_infos(spec, 20, 3, qnn::Activation::Tanh);
  ASSERT_EQ(infos.size(), 4u);
  EXPECT_EQ(infos[2].kind, "quantum");
  EXPECT_EQ(infos[2].qubits, 4u);
  EXPECT_EQ(infos[2].parameter_count, 12u);
}

TEST(Candidate, ParameterCountMatchesBuiltModel) {
  util::Rng rng{1};
  for (const auto& spec :
       {ModelSpec::make_classical({8, 2}),
        ModelSpec::make_hybrid(3, 4, qnn::AnsatzKind::StronglyEntangling)}) {
    const auto model =
        build_from_spec(spec, 12, 3, qnn::Activation::Tanh, rng);
    EXPECT_EQ(model->parameter_count(), spec_parameter_count(spec, 12, 3))
        << spec.to_string();
  }
}

TEST(GridSearch, SortByFlopsIsAscending) {
  SearchConfig config;
  auto specs = paper_classical_space();
  const auto sorted = sort_by_flops(std::move(specs), 10, 3, config);
  ASSERT_EQ(sorted.size(), 155u);
  double previous = -1.0;
  for (const auto& spec : sorted) {
    const double flops =
        static_cast<double>(spec_parameter_count(spec, 10, 3));
    (void)flops;  // parameter count is monotone-ish but not the sort key;
    // verify via the profiler key directly:
    const auto infos = spec_layer_infos(spec, 10, 3, qnn::Activation::Tanh);
    const auto report = flops::profile_layers(infos, config.cost_model);
    EXPECT_GE(report.total(), previous);
    previous = report.total();
  }
  // Cheapest classical candidate at F=10 must be the single [2] layer.
  EXPECT_EQ(sorted.front().to_string(), "[2]");
}

TEST(GridSearch, EvaluateCandidateFindsEasyWinner) {
  // A linearly separable-ish low-noise spiral with 2 features: [10] or even
  // [2] should reach high accuracy.
  const auto config = core::test_scale();
  data::Dataset dataset = search::level_dataset(6, config);
  util::Rng rng{3};
  data::TrainValSplit split = data::stratified_split(dataset, 0.2, rng);
  data::standardize_split(split);

  SearchConfig search_config = config.search;
  search_config.train.epochs = 30;
  search_config.accuracy_threshold = 0.5;  // easy bar for smoke test
  const auto result = evaluate_candidate(ModelSpec::make_classical({10, 10}),
                                         split, search_config, rng);
  EXPECT_GT(result.avg_best_train_accuracy, 0.5);
  EXPECT_TRUE(result.meets_threshold);
  EXPECT_GT(result.flops, 0.0);
  EXPECT_EQ(result.parameter_count,
            spec_parameter_count(ModelSpec::make_classical({10, 10}), 6, 3));
}

TEST(GridSearch, SearchOnceStopsAtFirstWinner) {
  const auto config = core::test_scale();
  data::Dataset dataset = search::level_dataset(6, config);
  util::Rng rng{4};
  data::TrainValSplit split = data::stratified_split(dataset, 0.2, rng);
  data::standardize_split(split);

  SearchConfig search_config = config.search;
  search_config.accuracy_threshold = 0.34;  // trivially met (3 classes)
  search_config.train.epochs = 2;
  const auto specs =
      sort_by_flops(paper_classical_space(), 6, 3, search_config);
  const auto outcome = search_once(specs, split, search_config, rng);
  ASSERT_TRUE(outcome.winner.has_value());
  EXPECT_EQ(outcome.candidates_trained, 1u);  // first candidate suffices
}

TEST(GridSearch, MaxCandidatesBoundsWork) {
  const auto config = core::test_scale();
  data::Dataset dataset = search::level_dataset(6, config);
  util::Rng rng{5};
  data::TrainValSplit split = data::stratified_split(dataset, 0.2, rng);
  data::standardize_split(split);

  SearchConfig search_config = config.search;
  search_config.accuracy_threshold = 1.01;  // impossible
  search_config.train.epochs = 1;
  search_config.max_candidates = 3;
  const auto specs =
      sort_by_flops(paper_classical_space(), 6, 3, search_config);
  const auto outcome = search_once(specs, split, search_config, rng);
  EXPECT_FALSE(outcome.winner.has_value());
  EXPECT_EQ(outcome.candidates_trained, 3u);
}

TEST(GridSearch, RepeatedSearchAggregates) {
  auto config = core::test_scale();
  config.search.accuracy_threshold = 0.34;
  config.search.train.epochs = 2;
  config.search.repetitions = 2;
  const data::Dataset dataset = search::level_dataset(6, config);
  const auto result = run_repeated_search(paper_classical_space(), dataset,
                                          config.search);
  EXPECT_EQ(result.repetitions.size(), 2u);
  EXPECT_EQ(result.successful_repetitions, 2u);
  EXPECT_GT(result.mean_winner_flops, 0.0);
  ASSERT_TRUE(result.smallest_winner.has_value());
  EXPECT_LE(result.smallest_winner->flops, result.mean_winner_flops + 1e-9);
}

TEST(GridSearch, EmptySpaceThrows) {
  const auto config = core::test_scale();
  const data::Dataset dataset = search::level_dataset(6, config);
  EXPECT_THROW(run_repeated_search({}, dataset, config.search),
               std::invalid_argument);
}

TEST(Experiment, FamilyMetadata) {
  EXPECT_EQ(family_name(Family::Classical), "classical");
  EXPECT_EQ(family_name(Family::HybridBel), "hybrid-bel");
  EXPECT_EQ(family_name(Family::HybridSel), "hybrid-sel");
  EXPECT_EQ(family_search_space(Family::Classical).size(), 155u);
  EXPECT_EQ(family_search_space(Family::HybridBel).size(), 30u);
  EXPECT_EQ(family_search_space(Family::HybridSel).size(), 30u);
}

TEST(Experiment, LevelDatasetSharedAcrossCalls) {
  const auto config = core::test_scale();
  const data::Dataset a = level_dataset(6, config);
  const data::Dataset b = level_dataset(6, config);
  EXPECT_TRUE(tensor::allclose(a.x, b.x, 0, 0));
}

TEST(Results, CsvAndJsonSerializeSweep) {
  auto config = core::test_scale();
  config.search.accuracy_threshold = 0.34;
  config.search.train.epochs = 2;
  const SweepResult sweep =
      run_complexity_sweep(Family::Classical, config);
  const auto csv = sweep_to_csv(sweep);
  EXPECT_GE(csv.row_count(), 1u);
  EXPECT_NE(csv.to_string().find("classical"), std::string::npos);

  const auto means = sweep_means_to_csv(sweep);
  EXPECT_EQ(means.row_count(), config.feature_sizes.size());

  const auto json = sweep_to_json(sweep);
  const std::string dumped = json.dump();
  EXPECT_NE(dumped.find("\"family\":\"classical\""), std::string::npos);
  EXPECT_NE(dumped.find("levels"), std::string::npos);
}

}  // namespace
}  // namespace qhdl::search

namespace qhdl::search {
namespace {

TEST(GridSearch, ParallelRunsMatchSequential) {
  // Thread count must not change results: per-run RNG streams are split up
  // front, so sequential and parallel evaluation agree exactly.
  const auto config = core::test_scale();
  data::Dataset dataset = search::level_dataset(6, config);
  util::Rng rng_seq{77}, rng_par{77};
  data::TrainValSplit split =
      data::stratified_split(dataset, 0.2, rng_seq);
  data::standardize_split(split);
  // Rebuild the identical split for the parallel path.
  util::Rng rng_par_split{77};
  data::TrainValSplit split2 =
      data::stratified_split(dataset, 0.2, rng_par_split);
  data::standardize_split(split2);

  SearchConfig seq = config.search;
  seq.runs_per_model = 3;
  seq.prune_margin = 0.0;
  seq.train.epochs = 4;
  seq.threads = 1;
  SearchConfig par = seq;
  par.threads = 3;

  const auto spec = ModelSpec::make_classical({6});
  util::Rng eval_seq{123};
  util::Rng eval_par{123};
  const auto a = evaluate_candidate(spec, split, seq, eval_seq);
  const auto b = evaluate_candidate(spec, split2, par, eval_par);
  EXPECT_DOUBLE_EQ(a.avg_best_train_accuracy, b.avg_best_train_accuracy);
  EXPECT_DOUBLE_EQ(a.avg_best_val_accuracy, b.avg_best_val_accuracy);
  EXPECT_EQ(a.runs, b.runs);
}

}  // namespace
}  // namespace qhdl::search
