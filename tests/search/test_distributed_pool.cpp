// Distributed worker fleet (DESIGN.md §16).
//
// The golden property is the PR-5 one, extended across hosts: a sweep
// sharded over TCP worker daemons is byte-identical to the in-process
// sweep — including when a daemon is SIGKILLed mid-run, refuses the first
// connect, has its connection reset or partitioned, or never shows up at
// all (the pool falls back to local pipe workers). Replicas and retries
// reuse the exact shipped RNG streams, and results commit in submission
// order, so scheduling can never leak into the bytes.
//
// These tests spawn REAL daemon processes: the shared test main dispatches
// --worker-connect to search::remote_worker_main, so this binary is its own
// qhdl_worker.
#include "search/worker_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "core/config.hpp"
#include "search/results.hpp"
#include "search/worker_protocol.hpp"
#include "util/deadline.hpp"
#include "util/fault_injection.hpp"
#include "util/socket.hpp"
#include "util/subprocess.hpp"

namespace qhdl::search {
namespace {

/// Same shape as the worker-pool tests: every candidate is evaluated
/// (threshold unreachable), so the unit count is deterministic.
SweepConfig sweep_config(std::size_t max_candidates = 3) {
  SweepConfig config = core::test_scale();
  config.search.runs_per_model = 2;
  config.search.repetitions = 1;
  config.search.train.epochs = 2;
  config.search.max_candidates = max_candidates;
  config.search.prune_margin = 0.0;
  config.search.accuracy_threshold = 1.1;
  config.search.run_retries = 1;
  config.search.threads = 2;
  return config;
}

std::string sweep_bytes(const SweepConfig& config, WorkerPool* pool) {
  return sweep_to_json(
             run_complexity_sweep(Family::Classical, config, nullptr, pool))
      .dump(2);
}

bool distributed_supported() {
  return util::subprocess_supported() && util::sockets_supported();
}

/// Launches this binary as a remote worker daemon against 127.0.0.1:port.
util::Subprocess spawn_daemon(std::uint16_t port, std::size_t slots,
                              const std::vector<std::string>& extra_env = {}) {
  return util::Subprocess::spawn(
      {util::current_executable_path(), "--worker-connect",
       "127.0.0.1:" + std::to_string(port), "--worker-slots",
       std::to_string(slots)},
      extra_env);
}

/// Polls `pred` until it holds or `timeout_ms` elapses.
bool eventually(const std::function<bool()>& pred,
                std::uint64_t timeout_ms = 10000) {
  const util::Deadline deadline = util::Deadline::after_ms(timeout_ms);
  while (!deadline.expired()) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return pred();
}

bool wait_for_registrations(WorkerPool& pool, std::size_t count) {
  return eventually(
      [&] { return pool.stats().remote_registered >= count; });
}

WorkerPoolConfig distributed_config(std::size_t remote_workers) {
  WorkerPoolConfig pool_config;
  pool_config.remote_workers = remote_workers;
  pool_config.listen_port = 0;  // ephemeral; daemons learn it afterwards
  pool_config.backoff_initial_ms = 50;
  return pool_config;
}

// --- protocol pieces ------------------------------------------------------

TEST(DistributedProtocol, RegistrationRoundTrips) {
  WorkerRegistration registration;
  registration.backend = "avx2";
  registration.slots = 4;
  registration.slot = 2;
  registration.pid = 4242;
  const WorkerRegistration back =
      registration_from_json(registration_to_json(registration));
  EXPECT_EQ(back.version, kWorkerProtocolVersion);
  EXPECT_EQ(back.backend, "avx2");
  EXPECT_EQ(back.slots, 4u);
  EXPECT_EQ(back.slot, 2u);
  EXPECT_EQ(back.pid, 4242);
}

TEST(DistributedProtocol, BackoffJitterIsDeterministicAndBounded) {
  // Pure function of its inputs: the reconnect schedule is reproducible.
  EXPECT_EQ(backoff_with_jitter_ms(100, 5000, 3, 7, 1),
            backoff_with_jitter_ms(100, 5000, 3, 7, 1));
  for (std::size_t failures = 1; failures <= 12; ++failures) {
    const std::uint64_t base =
        std::min<std::uint64_t>(5000, 100ull << (failures - 1));
    const std::uint64_t delay =
        backoff_with_jitter_ms(100, 5000, failures, 7, 1);
    EXPECT_GE(delay, base / 2) << "failures=" << failures;
    EXPECT_LE(delay, base) << "failures=" << failures;
  }
  // Different salts (slot indexes) must spread: a healed partition should
  // not produce a synchronized reconnect storm.
  bool spread = false;
  for (std::uint64_t salt = 1; salt < 8 && !spread; ++salt) {
    spread = backoff_with_jitter_ms(1000, 5000, 4, 7, salt) !=
             backoff_with_jitter_ms(1000, 5000, 4, 7, 0);
  }
  EXPECT_TRUE(spread);
}

TEST(DistributedProtocol, ParseHostPortAcceptsAndRejects) {
  std::string host;
  std::uint16_t port = 0;
  EXPECT_TRUE(parse_host_port("127.0.0.1:7401", &host, &port));
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 7401);
  EXPECT_FALSE(parse_host_port("no-port-here", &host, &port));
  EXPECT_FALSE(parse_host_port("host:", &host, &port));
  EXPECT_FALSE(parse_host_port(":7401", &host, &port));
  EXPECT_FALSE(parse_host_port("host:99999", &host, &port));
  EXPECT_FALSE(parse_host_port("host:abc", &host, &port));
}

// --- golden byte-identity -------------------------------------------------

TEST(DistributedPoolGolden, TwoDaemonSweepMatchesInProcessBytes) {
  if (!distributed_supported()) GTEST_SKIP() << "no subprocess/socket support";
  const SweepConfig config = sweep_config();
  const std::string baseline = sweep_bytes(config, nullptr);

  WorkerPool pool{config, distributed_config(4)};
  ASSERT_FALSE(pool.degraded()) << pool.degraded_reason();
  ASSERT_NE(pool.listen_port(), 0);
  util::Subprocess daemon_a = spawn_daemon(pool.listen_port(), 2);
  util::Subprocess daemon_b = spawn_daemon(pool.listen_port(), 2);
  ASSERT_TRUE(wait_for_registrations(pool, 4));

  EXPECT_EQ(sweep_bytes(config, &pool), baseline);
  const WorkerPoolStats stats = pool.stats();
  EXPECT_GE(stats.remote_registered, 4u);
  EXPECT_EQ(stats.retried_units, 0u);
  EXPECT_EQ(stats.quarantined_units, 0u);
}

TEST(DistributedPoolGolden, DaemonCrashMidRunIsRedispatchedIdentically) {
  if (!distributed_supported()) GTEST_SKIP() << "no subprocess/socket support";
  const SweepConfig config = sweep_config(/*max_candidates=*/6);
  const std::string baseline = sweep_bytes(config, nullptr);

  // Daemon A aborts on the 2nd unit it receives (taking its whole process,
  // i.e. every slot, with it); daemon B absorbs the orphaned work. The
  // re-dispatch must not charge a retry attempt — transport loss is not
  // evidence against the unit.
  WorkerPool pool{config, distributed_config(2)};
  ASSERT_FALSE(pool.degraded()) << pool.degraded_reason();
  util::Subprocess daemon_a = spawn_daemon(
      pool.listen_port(), 1, {"QHDL_FAULT_SPEC=worker=crash@2"});
  ASSERT_TRUE(wait_for_registrations(pool, 1));
  util::Subprocess daemon_b =
      spawn_daemon(pool.listen_port(), 1, {"QHDL_FAULT_SPEC="});
  ASSERT_TRUE(wait_for_registrations(pool, 2));

  EXPECT_EQ(sweep_bytes(config, &pool), baseline);
  const WorkerPoolStats stats = pool.stats();
  EXPECT_GE(stats.steals, 1u);
  EXPECT_GE(stats.remote_lost, 1u);
  EXPECT_EQ(stats.quarantined_units, 0u);
}

TEST(DistributedPoolGolden, SigkilledDaemonMidRunMatchesBytes) {
  if (!distributed_supported()) GTEST_SKIP() << "no subprocess/socket support";
  const SweepConfig config = sweep_config(/*max_candidates=*/6);
  const std::string baseline = sweep_bytes(config, nullptr);

  WorkerPool pool{config, distributed_config(2)};
  ASSERT_FALSE(pool.degraded()) << pool.degraded_reason();
  util::Subprocess daemon_a = spawn_daemon(pool.listen_port(), 1);
  util::Subprocess daemon_b = spawn_daemon(pool.listen_port(), 1);
  ASSERT_TRUE(wait_for_registrations(pool, 2));

  // A real kill -9 mid-run: no shutdown frame, no FIN handshake courtesy —
  // the supervisor sees a dead connection and must re-dispatch whatever
  // that daemon was holding.
  std::thread killer{[&daemon_a] {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    daemon_a.kill_hard();
  }};
  const std::string distributed = sweep_bytes(config, &pool);
  killer.join();
  EXPECT_EQ(distributed, baseline);
  EXPECT_TRUE(eventually(
      [&] { return pool.stats().remote_lost >= 1; }, 5000));
  EXPECT_EQ(pool.stats().quarantined_units, 0u);
}

// --- fallback chain -------------------------------------------------------

TEST(DistributedPoolFallback, NoDaemonsFallsBackToLocalPipesIdentically) {
  if (!distributed_supported()) GTEST_SKIP() << "no subprocess/socket support";
  const SweepConfig config = sweep_config();
  const std::string baseline = sweep_bytes(config, nullptr);

  WorkerPoolConfig pool_config = distributed_config(2);
  pool_config.handshake_timeout_ms = 300;
  pool_config.workers = 2;  // the local fallback width
  WorkerPool pool{config, pool_config};
  // Nothing ever connects: after the handshake deadline the pool must
  // spawn local pipe workers and produce the same bytes.
  EXPECT_EQ(sweep_bytes(config, &pool), baseline);
  EXPECT_FALSE(pool.degraded()) << pool.degraded_reason();
  EXPECT_EQ(pool.stats().remote_registered, 0u);
}

TEST(DistributedPoolFallback, SlowHandshakeIsRejectedThenFallsBackLocal) {
  if (!distributed_supported()) GTEST_SKIP() << "no subprocess/socket support";
  const SweepConfig config = sweep_config();
  const std::string baseline = sweep_bytes(config, nullptr);

  // Every accepted connection stalls before its register frame arrives
  // (supervisor-side conn=slow): the per-connection handshake deadline must
  // drop it, and the fleet deadline must hand the sweep to local workers.
  util::FaultInjector::instance().configure("conn=slow@1+");
  WorkerPoolConfig pool_config = distributed_config(1);
  pool_config.handshake_timeout_ms = 400;
  pool_config.workers = 2;
  WorkerPool pool{config, pool_config};
  util::Subprocess daemon = spawn_daemon(pool.listen_port(), 1);

  const std::string bytes = sweep_bytes(config, &pool);
  util::FaultInjector::instance().configure("");
  EXPECT_EQ(bytes, baseline);
  EXPECT_FALSE(pool.degraded()) << pool.degraded_reason();
  EXPECT_EQ(pool.stats().remote_registered, 0u);
  EXPECT_TRUE(eventually(
      [&] { return pool.stats().handshake_rejects >= 1; }, 5000));
}

// --- injected connection faults ------------------------------------------

TEST(DistributedPoolFaults, ResetMidUnitIsRedispatchedAndHeals) {
  if (!distributed_supported()) GTEST_SKIP() << "no subprocess/socket support";
  const SweepConfig config = sweep_config(/*max_candidates=*/6);
  const std::string baseline = sweep_bytes(config, nullptr);

  WorkerPool pool{config, distributed_config(2)};
  ASSERT_FALSE(pool.degraded()) << pool.degraded_reason();
  util::Subprocess daemon_a = spawn_daemon(pool.listen_port(), 1);
  util::Subprocess daemon_b = spawn_daemon(pool.listen_port(), 1);
  ASSERT_TRUE(wait_for_registrations(pool, 2));

  // Arm AFTER registration so the fault lands on a busy connection: the
  // first dispatched unit's transport is torn down as if the peer sent
  // RST. The unit must be re-dispatched (uncharged) and the daemon's
  // reconnect must be accepted.
  util::FaultInjector::instance().configure("conn=reset@1");
  const std::string bytes = sweep_bytes(config, &pool);
  util::FaultInjector::instance().configure("");
  EXPECT_EQ(bytes, baseline);
  const WorkerPoolStats stats = pool.stats();
  EXPECT_GE(stats.steals, 1u);
  EXPECT_GE(stats.remote_lost, 1u);
  EXPECT_EQ(stats.quarantined_units, 0u);
}

TEST(DistributedPoolFaults, PartitionIsReapedByHeartbeatAndRedispatched) {
  if (!distributed_supported()) GTEST_SKIP() << "no subprocess/socket support";
  const SweepConfig config = sweep_config(/*max_candidates=*/6);
  const std::string baseline = sweep_bytes(config, nullptr);

  // A partition is nastier than a reset: the socket stays open but nothing
  // flows. Heartbeat liveness — not the transport — must detect the split
  // and re-dispatch; the daemon's reconnect (after the supervisor closes
  // its end) is the heal.
  WorkerPoolConfig pool_config = distributed_config(2);
  pool_config.heartbeat_interval_ms = 100;
  pool_config.heartbeat_timeout_ms = 800;
  WorkerPool pool{config, pool_config};
  ASSERT_FALSE(pool.degraded()) << pool.degraded_reason();
  util::Subprocess daemon_a = spawn_daemon(pool.listen_port(), 1);
  util::Subprocess daemon_b = spawn_daemon(pool.listen_port(), 1);
  ASSERT_TRUE(wait_for_registrations(pool, 2));

  util::FaultInjector::instance().configure("conn=partition@1");
  const std::string bytes = sweep_bytes(config, &pool);
  util::FaultInjector::instance().configure("");
  EXPECT_EQ(bytes, baseline);
  const WorkerPoolStats stats = pool.stats();
  EXPECT_GE(stats.steals, 1u);
  EXPECT_GE(stats.remote_lost, 1u);
  EXPECT_EQ(stats.quarantined_units, 0u);
}

TEST(DistributedPoolFaults, RefusedConnectRetriesWithBackoffAndRegisters) {
  if (!distributed_supported()) GTEST_SKIP() << "no subprocess/socket support";
  const SweepConfig config = sweep_config();
  const std::string baseline = sweep_bytes(config, nullptr);

  WorkerPool pool{config, distributed_config(1)};
  ASSERT_FALSE(pool.degraded()) << pool.degraded_reason();
  // The daemon's own injector refuses its first outbound connect; the
  // jittered backoff must retry and the second attempt registers.
  util::Subprocess daemon = spawn_daemon(pool.listen_port(), 1,
                                         {"QHDL_FAULT_SPEC=conn=refuse@1"});
  ASSERT_TRUE(wait_for_registrations(pool, 1));

  EXPECT_EQ(sweep_bytes(config, &pool), baseline);
  EXPECT_EQ(pool.stats().quarantined_units, 0u);
}

// --- straggler stealing ---------------------------------------------------

TEST(DistributedPoolStealing, IdleWorkerDuplicatesStragglerFirstResultWins) {
  if (!distributed_supported()) GTEST_SKIP() << "no subprocess/socket support";
  const SweepConfig config = sweep_config(/*max_candidates=*/4);
  const std::string baseline = sweep_bytes(config, nullptr);

  // Daemon A hangs on its first unit (silent wedge, no heartbeat frames
  // suppressed — the worker=hang fault stops everything). With stealing
  // armed, daemon B duplicates the straggling unit well before the
  // heartbeat reaper would fire; the duplicate's result commits and the
  // bytes cannot tell the difference.
  WorkerPoolConfig pool_config = distributed_config(2);
  pool_config.steal_after_ms = 300;
  pool_config.heartbeat_timeout_ms = 20000;  // stealing must win the race
  pool_config.unit_timeout_ms = 15000;       // eventually reaps the wedge
  WorkerPool pool{config, pool_config};
  ASSERT_FALSE(pool.degraded()) << pool.degraded_reason();
  util::Subprocess daemon_a = spawn_daemon(
      pool.listen_port(), 1, {"QHDL_FAULT_SPEC=worker=hang@1"});
  ASSERT_TRUE(wait_for_registrations(pool, 1));
  util::Subprocess daemon_b =
      spawn_daemon(pool.listen_port(), 1, {"QHDL_FAULT_SPEC="});
  ASSERT_TRUE(wait_for_registrations(pool, 2));

  EXPECT_EQ(sweep_bytes(config, &pool), baseline);
  EXPECT_GE(pool.stats().steals, 1u);
}

// --- CI fault-matrix leg --------------------------------------------------

// Env-driven like WorkerFaultMatrix.*: CI sets QHDL_FAULT_SPEC to a conn=
// spec. Daemon-side specs (refuse) ride the inherited environment; the
// supervisor-side ones (reset/partition/slow) are re-armed locally after
// the supervisor's env read. Skipped without a conn= spec. CI must select
// this with an anchored regex (^DistFaultMatrix\.).
TEST(DistFaultMatrix, DistributedSweepSurvivesConfiguredConnFault) {
  const char* env = std::getenv("QHDL_FAULT_SPEC");
  if (env == nullptr || std::string{env}.find("conn=") == std::string::npos) {
    GTEST_SKIP() << "set QHDL_FAULT_SPEC to a conn= spec to run this";
  }
  if (!distributed_supported()) GTEST_SKIP() << "no subprocess/socket support";
  const std::string spec = env;
  const bool refuse = spec.find("refuse") != std::string::npos;
  const bool slow = spec.find("slow") != std::string::npos;

  // Baseline with the supervisor's injector disarmed (it read the env at
  // first touch).
  util::FaultInjector::instance().configure("");
  const SweepConfig config = sweep_config(/*max_candidates=*/6);
  const std::string baseline = sweep_bytes(config, nullptr);

  WorkerPoolConfig pool_config = distributed_config(2);
  pool_config.workers = 2;  // local fallback width (the slow-handshake leg)
  pool_config.handshake_timeout_ms = slow ? 500 : 5000;
  pool_config.heartbeat_interval_ms = 100;
  pool_config.heartbeat_timeout_ms = 1500;  // bounds injected partitions
  WorkerPool pool{config, pool_config};
  ASSERT_FALSE(pool.degraded()) << pool.degraded_reason();

  // refuse is a client-side (daemon) fault; everything else is injected in
  // the supervisor. Never both: the bytes must isolate one failure mode.
  const std::vector<std::string> daemon_env = {
      refuse ? "QHDL_FAULT_SPEC=" + spec : "QHDL_FAULT_SPEC="};
  if (!refuse) util::FaultInjector::instance().configure(spec);
  util::Subprocess daemon_a = spawn_daemon(pool.listen_port(), 1, daemon_env);
  util::Subprocess daemon_b = spawn_daemon(pool.listen_port(), 1, daemon_env);

  const std::string bytes = sweep_bytes(config, &pool);
  util::FaultInjector::instance().configure("");
  EXPECT_EQ(bytes, baseline);
  const WorkerPoolStats stats = pool.stats();
  EXPECT_EQ(stats.quarantined_units, 0u);
  if (slow) {
    // Handshakes never complete: the sweep ran on the local fallback.
    EXPECT_EQ(stats.remote_registered, 0u);
    EXPECT_GE(stats.handshake_rejects, 1u);
  } else {
    EXPECT_GE(stats.remote_registered, 1u);
  }
}

}  // namespace
}  // namespace qhdl::search
