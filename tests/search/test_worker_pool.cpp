// Supervised multi-process execution (DESIGN.md §11).
//
// The golden property throughout: a sweep executed on crash-isolated worker
// processes is byte-identical to the in-process sweep — including when
// workers are killed by signals, wedge silently, or emit garbage, as long
// as the retry budget absorbs the failures (retries reuse the same shipped
// RNG streams). Tests that exhaust the budget instead pin the quarantine
// path: the sweep completes with the poisoned units excluded from means.
//
// These tests spawn REAL worker processes: the shared test main dispatches
// --worker-mode to search::worker_main, so this binary is its own worker.
#include "search/worker_pool.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "core/config.hpp"
#include "search/checkpoint.hpp"
#include "search/results.hpp"
#include "util/deadline.hpp"
#include "util/fault_injection.hpp"
#include "util/rng.hpp"
#include "util/subprocess.hpp"

namespace qhdl::search {
namespace {

/// Tiny but non-trivial: 3 candidates x 2 runs at one level, threshold
/// unreachable so every candidate is evaluated (deterministic unit count).
SweepConfig sweep_config() {
  SweepConfig config = core::test_scale();
  config.search.runs_per_model = 2;
  config.search.repetitions = 1;
  config.search.train.epochs = 2;
  config.search.max_candidates = 3;
  config.search.prune_margin = 0.0;
  config.search.accuracy_threshold = 1.1;
  config.search.run_retries = 1;
  config.search.threads = 2;
  return config;
}

std::string sweep_bytes(const SweepConfig& config, WorkerPool* pool) {
  return sweep_to_json(
             run_complexity_sweep(Family::Classical, config, nullptr, pool))
      .dump(2);
}

// --- protocol codecs ------------------------------------------------------

TEST(WorkerProtocol, FrameReaderReassemblesSplitFrames) {
  FrameReader reader;
  const std::string payload = "{\"type\":\"heartbeat\"}";
  const auto length = static_cast<std::uint32_t>(payload.size());
  std::string wire;
  wire.push_back(static_cast<char>((length >> 24) & 0xff));
  wire.push_back(static_cast<char>((length >> 16) & 0xff));
  wire.push_back(static_cast<char>((length >> 8) & 0xff));
  wire.push_back(static_cast<char>(length & 0xff));
  wire += payload;
  wire += wire;  // two identical frames back to back

  // Feed one byte at a time: frames must reassemble across arbitrary pipe
  // read boundaries.
  std::size_t complete = 0;
  for (char c : wire) {
    reader.feed(&c, 1);
    while (auto frame = reader.next()) {
      EXPECT_EQ(*frame, payload);
      ++complete;
    }
  }
  EXPECT_EQ(complete, 2u);
}

TEST(WorkerProtocol, FrameReaderRejectsOversizedLength) {
  FrameReader reader;
  const char junk[4] = {0x7f, 0x7f, 0x7f, 0x7f};  // ~2 GB length prefix
  reader.feed(junk, 4);
  EXPECT_THROW(reader.next(), ProtocolError);
}

TEST(WorkerProtocol, SweepConfigRoundTripsEveryResultAffectingField) {
  SweepConfig config = sweep_config();
  config.search.seed = 0xfedcba9876543210ULL;  // must survive as a string
  config.dataset_seed = 0xffffffffffffffffULL;
  const SweepConfig back =
      sweep_config_from_json(sweep_config_to_json(config));
  // sweep_config_hash covers every result-affecting field, so equal hashes
  // mean the worker will reproduce the supervisor's protocol exactly.
  EXPECT_EQ(sweep_config_hash(back), sweep_config_hash(config));
  EXPECT_EQ(back.search.seed, config.search.seed);
  EXPECT_EQ(back.dataset_seed, config.dataset_seed);
}

TEST(WorkerProtocol, RngRoundTripResumesExactSequence) {
  util::Rng rng{12345};
  (void)rng.normal();  // populate the Box-Muller cache mid-pair
  util::Rng restored = rng_from_json(rng_to_json(rng));
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(restored.next_u64(), rng.next_u64());
    EXPECT_EQ(restored.normal(), rng.normal());
  }
}

TEST(WorkerProtocol, WorkUnitRoundTrips) {
  WorkUnit unit;
  unit.key = UnitKey{"classical", 6, 1, 2};
  unit.spec = ModelSpec::make_classical({4, 8});
  util::Rng base{7};
  unit.streams = {base.split(), base.split()};
  const WorkUnit back = work_unit_from_json(work_unit_to_json(unit));
  EXPECT_EQ(back.key.to_string(), unit.key.to_string());
  EXPECT_EQ(back.spec.to_string(), unit.spec.to_string());
  ASSERT_EQ(back.streams.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    util::Rng a = unit.streams[i];
    util::Rng b = back.streams[i];
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

// --- framing hardening (PR-9) ---------------------------------------------

#if defined(__unix__) || defined(__APPLE__)

/// A pipe whose write end we control byte-by-byte, standing in for a
/// misbehaving peer on the other side of read_frame().
struct PipePair {
  int fds[2] = {-1, -1};
  PipePair() { EXPECT_EQ(pipe(fds), 0); }
  ~PipePair() {
    if (fds[0] >= 0) close(fds[0]);
    if (fds[1] >= 0) close(fds[1]);
  }
  void write_bytes(const std::string& bytes) {
    ASSERT_EQ(::write(fds[1], bytes.data(), bytes.size()),
              static_cast<ssize_t>(bytes.size()));
  }
  void close_writer() {
    close(fds[1]);
    fds[1] = -1;
  }
};

TEST(WorkerProtocolFraming, FrameWireAcceptsCapRejectsBeyondNamingLength) {
  // Exactly at the 16 MB cap is legal...
  const std::string at_cap(kMaxFrameBytes, 'x');
  EXPECT_EQ(frame_wire(at_cap).size(), at_cap.size() + 4);
  // ...one byte beyond is refused, and the error names the actual length
  // so a truncated log line still identifies the offender.
  const std::string beyond(kMaxFrameBytes + 1, 'x');
  try {
    frame_wire(beyond);
    FAIL() << "oversized frame was not rejected";
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("16777217"), std::string::npos)
        << e.what();
  }
}

TEST(WorkerProtocolFraming, OversizedLengthPrefixErrorNamesLength) {
  FrameReader reader;
  // Big-endian 0x01000001 = kMaxFrameBytes + 1.
  const char prefix[4] = {0x01, 0x00, 0x00, 0x01};
  reader.feed(prefix, 4);
  try {
    (void)reader.next();
    FAIL() << "garbage length prefix was not rejected";
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("16777217"), std::string::npos)
        << e.what();
  }
}

TEST(WorkerProtocolFraming, ReadFrameReturnsFrameThenCleanEof) {
  PipePair pipe_pair;
  pipe_pair.write_bytes(frame_wire("{\"type\":\"ready\"}"));
  pipe_pair.close_writer();
  FrameReader reader;
  std::string payload;
  EXPECT_EQ(read_frame(pipe_pair.fds[0], reader,
                       util::Deadline::after_ms(2000), &payload),
            FrameReadStatus::Frame);
  EXPECT_EQ(payload, "{\"type\":\"ready\"}");
  // The peer closed at a frame boundary: that is a clean EOF, not an error.
  EXPECT_EQ(read_frame(pipe_pair.fds[0], reader,
                       util::Deadline::after_ms(2000), &payload),
            FrameReadStatus::Eof);
}

TEST(WorkerProtocolFraming, MidFrameEofNamesHowMuchArrived) {
  PipePair pipe_pair;
  // Header promises a 10-byte payload; only 3 bytes ever arrive.
  const char header[4] = {0x00, 0x00, 0x00, 0x0a};
  pipe_pair.write_bytes(std::string(header, 4) + "abc");
  pipe_pair.close_writer();
  FrameReader reader;
  std::string payload;
  try {
    (void)read_frame(pipe_pair.fds[0], reader, util::Deadline::after_ms(2000),
                     &payload);
    FAIL() << "truncated frame was not rejected";
  } catch (const ProtocolError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("truncated"), std::string::npos) << what;
    EXPECT_NE(what.find("3 of 10"), std::string::npos) << what;
  }
}

TEST(WorkerProtocolFraming, MidHeaderEofIsAlsoTruncation) {
  PipePair pipe_pair;
  pipe_pair.write_bytes(std::string("\x00\x00", 2));  // half a header
  pipe_pair.close_writer();
  FrameReader reader;
  std::string payload;
  try {
    (void)read_frame(pipe_pair.fds[0], reader, util::Deadline::after_ms(2000),
                     &payload);
    FAIL() << "truncated header was not rejected";
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("2 of 4"), std::string::npos)
        << e.what();
  }
}

TEST(WorkerProtocolFraming, ReadFrameTimesOutOnSilentPeer) {
  // A peer that connects and then sends nothing must not wedge the reader:
  // the deadline converts the hang into a Timeout the caller can act on.
  PipePair pipe_pair;
  FrameReader reader;
  std::string payload;
  const std::uint64_t start = util::monotonic_now_ms();
  EXPECT_EQ(read_frame(pipe_pair.fds[0], reader,
                       util::Deadline::after_ms(150), &payload),
            FrameReadStatus::Timeout);
  const std::uint64_t elapsed = util::monotonic_now_ms() - start;
  EXPECT_GE(elapsed, 100u);
  EXPECT_LT(elapsed, 5000u);
  // Nothing consumed, nothing buffered: a later retry starts clean.
  EXPECT_FALSE(reader.mid_frame());
}

TEST(WorkerProtocolFraming, ReadFrameSurvivesHungPeerFault) {
  // The sock=slow site emulates a peer that dribbles nothing for a while:
  // read_frame must keep honoring its deadline rather than block.
  util::FaultInjector::instance().configure("sock=slow@1+");
  PipePair pipe_pair;
  pipe_pair.write_bytes(frame_wire("{}"));
  FrameReader reader;
  std::string payload;
  EXPECT_EQ(read_frame(pipe_pair.fds[0], reader,
                       util::Deadline::after_ms(100), &payload),
            FrameReadStatus::Timeout);
  util::FaultInjector::instance().configure("");
  // With the fault cleared the buffered frame is readable as usual.
  EXPECT_EQ(read_frame(pipe_pair.fds[0], reader,
                       util::Deadline::after_ms(2000), &payload),
            FrameReadStatus::Frame);
  EXPECT_EQ(payload, "{}");
}

#endif  // defined(__unix__) || defined(__APPLE__)

// --- golden byte-identity -------------------------------------------------

TEST(WorkerPoolGolden, MultiProcessSweepMatchesInProcessBytes) {
  if (!util::subprocess_supported()) GTEST_SKIP() << "no subprocess support";
  const SweepConfig config = sweep_config();
  const std::string baseline = sweep_bytes(config, nullptr);

  WorkerPoolConfig pool_config;
  pool_config.workers = 4;
  WorkerPool pool{config, pool_config};
  ASSERT_FALSE(pool.degraded()) << pool.degraded_reason();
  EXPECT_EQ(sweep_bytes(config, &pool), baseline);
  const WorkerPoolStats stats = pool.stats();
  EXPECT_EQ(stats.retried_units, 0u);
  EXPECT_EQ(stats.quarantined_units, 0u);
}

// --- supervised failure handling -----------------------------------------

/// Runs the pooled sweep with a fault spec armed in the WORKERS only (the
/// supervisor's injector never sees it) and returns the result bytes.
std::string faulted_sweep_bytes(const SweepConfig& config,
                                const std::string& fault_spec,
                                WorkerPoolConfig pool_config,
                                WorkerPoolStats* stats_out = nullptr) {
  pool_config.worker_env = {"QHDL_FAULT_SPEC=" + fault_spec};
  WorkerPool pool{config, pool_config};
  EXPECT_FALSE(pool.degraded()) << pool.degraded_reason();
  const std::string bytes = sweep_bytes(config, &pool);
  if (stats_out != nullptr) *stats_out = pool.stats();
  return bytes;
}

TEST(WorkerPoolFaults, CrashedWorkerIsRespawnedAndUnitRetried) {
  if (!util::subprocess_supported()) GTEST_SKIP() << "no subprocess support";
  const SweepConfig config = sweep_config();
  const std::string baseline = sweep_bytes(config, nullptr);

  // Every worker instance std::abort()s on its 2nd unit (fresh per-process
  // counters), so respawned workers make progress one unit at a time.
  WorkerPoolConfig pool_config;
  pool_config.workers = 2;
  pool_config.backoff_initial_ms = 50;
  WorkerPoolStats stats;
  EXPECT_EQ(faulted_sweep_bytes(config, "worker=crash@2", pool_config,
                                &stats),
            baseline);
  EXPECT_GT(stats.restarts, 0u);
  EXPECT_GT(stats.retried_units, 0u);
  EXPECT_EQ(stats.quarantined_units, 0u);
}

TEST(WorkerPoolFaults, HungWorkerIsKilledByUnitDeadline) {
  if (!util::subprocess_supported()) GTEST_SKIP() << "no subprocess support";
  const SweepConfig config = sweep_config();
  const std::string baseline = sweep_bytes(config, nullptr);

  // The hang emits nothing at all; with a generous heartbeat budget the
  // per-unit deadline is what must reap it.
  WorkerPoolConfig pool_config;
  pool_config.workers = 2;
  pool_config.unit_timeout_ms = 1500;
  pool_config.heartbeat_timeout_ms = 60000;
  pool_config.backoff_initial_ms = 50;
  WorkerPoolStats stats;
  EXPECT_EQ(
      faulted_sweep_bytes(config, "worker=hang@2", pool_config, &stats),
      baseline);
  EXPECT_GT(stats.restarts, 0u);
  EXPECT_GT(stats.retried_units, 0u);
  EXPECT_EQ(stats.quarantined_units, 0u);
}

TEST(WorkerPoolFaults, HungWorkerIsKilledByHeartbeatLiveness) {
  if (!util::subprocess_supported()) GTEST_SKIP() << "no subprocess support";
  const SweepConfig config = sweep_config();
  const std::string baseline = sweep_bytes(config, nullptr);

  // No unit deadline at all: heartbeat silence alone must reap the hang.
  WorkerPoolConfig pool_config;
  pool_config.workers = 2;
  pool_config.unit_timeout_ms = 0;
  pool_config.heartbeat_interval_ms = 100;
  pool_config.heartbeat_timeout_ms = 700;
  pool_config.backoff_initial_ms = 50;
  WorkerPoolStats stats;
  EXPECT_EQ(
      faulted_sweep_bytes(config, "worker=hang@2", pool_config, &stats),
      baseline);
  EXPECT_GT(stats.restarts, 0u);
  EXPECT_GT(stats.retried_units, 0u);
  EXPECT_EQ(stats.quarantined_units, 0u);
}

TEST(WorkerPoolFaults, GarbageEmittingWorkerIsKilledAndUnitRetried) {
  if (!util::subprocess_supported()) GTEST_SKIP() << "no subprocess support";
  const SweepConfig config = sweep_config();
  const std::string baseline = sweep_bytes(config, nullptr);

  WorkerPoolConfig pool_config;
  pool_config.workers = 2;
  pool_config.backoff_initial_ms = 50;
  WorkerPoolStats stats;
  EXPECT_EQ(faulted_sweep_bytes(config, "worker=garbage@2", pool_config,
                                &stats),
            baseline);
  EXPECT_GT(stats.restarts, 0u);
  EXPECT_GT(stats.retried_units, 0u);
  EXPECT_EQ(stats.quarantined_units, 0u);
}

TEST(WorkerPoolFaults, ExhaustedRetriesQuarantineUnitsAndSweepCompletes) {
  if (!util::subprocess_supported()) GTEST_SKIP() << "no subprocess support";
  const SweepConfig config = sweep_config();

  // Every attempt of every unit crashes; with 1 retry each unit burns its
  // 2 attempts and is quarantined. The sweep must still complete.
  WorkerPoolConfig pool_config;
  pool_config.workers = 2;
  pool_config.unit_retries = 1;
  pool_config.backoff_initial_ms = 50;
  pool_config.worker_env = {"QHDL_FAULT_SPEC=worker=crash@1+"};
  WorkerPool pool{config, pool_config};
  ASSERT_FALSE(pool.degraded()) << pool.degraded_reason();

  const SweepResult sweep =
      run_complexity_sweep(Family::Classical, config, nullptr, &pool);
  const SearchOutcome& outcome = sweep.levels.at(0).search.repetitions.at(0);
  ASSERT_EQ(outcome.evaluated.size(), config.search.max_candidates);
  EXPECT_FALSE(outcome.winner.has_value());
  for (const CandidateResult& result : outcome.evaluated) {
    // The PR-4 quarantine shape: zero successful runs (excluded from every
    // mean), the full run budget recorded as failed, and worker-prefixed
    // causes documenting each attempt.
    EXPECT_EQ(result.runs, 0u);
    EXPECT_EQ(result.failed_runs, config.search.runs_per_model);
    EXPECT_FALSE(result.meets_threshold);
    ASSERT_EQ(result.failures.size(), 2u);  // 1 + unit_retries attempts
    for (const RunFailure& failure : result.failures) {
      EXPECT_EQ(failure.cause.rfind("worker:", 0), 0u) << failure.cause;
    }
    // Analytic metadata survives quarantine.
    EXPECT_GT(result.flops, 0.0);
    EXPECT_GT(result.parameter_count, 0u);
  }
  const WorkerPoolStats stats = pool.stats();
  EXPECT_EQ(stats.quarantined_units, config.search.max_candidates);
}

// --- graceful degradation -------------------------------------------------

TEST(WorkerPoolDegraded, UnspawnableWorkersFallBackToInProcessIdentically) {
  const SweepConfig config = sweep_config();
  const std::string baseline = sweep_bytes(config, nullptr);

  WorkerPoolConfig pool_config;
  pool_config.workers = 2;
  pool_config.worker_command = {"/nonexistent/qhdl-no-such-worker",
                                "--worker-mode"};
  WorkerPool pool{config, pool_config};
  EXPECT_TRUE(pool.degraded());
  EXPECT_FALSE(pool.degraded_reason().empty());
  // Degraded execution is the same arithmetic on the same shipped streams.
  EXPECT_EQ(sweep_bytes(config, &pool), baseline);
}

// --- CI fault-matrix leg --------------------------------------------------

// Env-driven like FaultMatrix.*: CI sets QHDL_FAULT_SPEC to a worker-site
// spec; workers inherit it from the environment (the supervisor disarms its
// own injector). Skipped without the env var. CI must select this with an
// anchored regex (^WorkerFaultMatrix\.) — "FaultMatrix" is a substring.
TEST(WorkerFaultMatrix, PooledSweepSurvivesConfiguredWorkerFault) {
  const char* env = std::getenv("QHDL_FAULT_SPEC");
  if (env == nullptr || std::string{env}.find("worker=") == std::string::npos) {
    GTEST_SKIP() << "set QHDL_FAULT_SPEC to a worker= spec to run this";
  }
  if (!util::subprocess_supported()) GTEST_SKIP() << "no subprocess support";
  const std::string spec = env;

  // Disarm the supervisor's injector (it read the env at first touch);
  // workers re-read the inherited variable in their own processes.
  util::FaultInjector::instance().configure("");
  const SweepConfig config = sweep_config();
  const std::string baseline = sweep_bytes(config, nullptr);

  WorkerPoolConfig pool_config;
  pool_config.workers = 2;
  pool_config.unit_timeout_ms = 2000;  // bounds injected hangs
  pool_config.backoff_initial_ms = 50;
  WorkerPool pool{config, pool_config};
  ASSERT_FALSE(pool.degraded()) << pool.degraded_reason();
  const std::string faulted = sweep_bytes(config, &pool);
  const WorkerPoolStats stats = pool.stats();

  if (spec.find('+') != std::string::npos) {
    // Open-ended fault: every attempt fails, so units are quarantined but
    // the sweep still completes (exit 0 in the driver).
    EXPECT_GT(stats.quarantined_units, 0u);
  } else {
    // Bounded fault: retries absorb it and the bytes are the baseline's.
    EXPECT_EQ(faulted, baseline);
    EXPECT_GT(stats.retried_units, 0u);
    EXPECT_EQ(stats.quarantined_units, 0u);
  }
}

}  // namespace
}  // namespace qhdl::search
