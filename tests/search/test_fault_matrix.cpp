// CI fault-injection leg: driven by QHDL_FAULT_SPEC from the environment
// (see .github/workflows: crash-at-boundary, IO failure, NaN loss). For a
// killing fault the sweep must die, resume from its checkpoint, and land on
// the uninterrupted baseline bytes; for a degrading fault (NaN loss) it must
// complete with quarantined runs recorded. Without the env var this test is
// skipped, so the regular suite is unaffected.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include "core/config.hpp"
#include "search/checkpoint.hpp"
#include "search/experiment.hpp"
#include "search/results.hpp"
#include "util/fault_injection.hpp"

namespace qhdl::search {
namespace {

namespace fs = std::filesystem;

SweepConfig sweep_config() {
  SweepConfig config = core::test_scale();
  config.search.runs_per_model = 2;
  config.search.repetitions = 2;
  config.search.train.epochs = 2;
  config.search.max_candidates = 4;
  config.search.prune_margin = 0.0;
  config.search.accuracy_threshold = 1.1;
  config.search.run_retries = 1;
  return config;
}

TEST(FaultMatrix, SweepSurvivesConfiguredFault) {
  const char* env = std::getenv("QHDL_FAULT_SPEC");
  if (env == nullptr || env[0] == '\0') {
    GTEST_SKIP() << "set QHDL_FAULT_SPEC to run the fault matrix";
  }
  const std::string spec = env;

  const std::string path =
      (fs::temp_directory_path() / "qhdl_fault_matrix.checkpoint.json")
          .string();
  fs::remove(path);

  // The injector armed itself from the environment at first touch; disarm
  // while computing the uninterrupted baseline.
  util::FaultInjector::instance().configure("");
  const SweepConfig config = sweep_config();
  const std::string hash = sweep_config_hash(config);
  const std::string baseline =
      sweep_to_json(run_complexity_sweep(Family::Classical, config)).dump(2);

  // Faulted attempt. A crash/IO fault kills the sweep partway; a NaN fault
  // degrades it but lets it finish.
  util::FaultInjector::instance().configure(spec);
  bool died = false;
  std::string faulted;
  {
    StudyCheckpoint checkpoint{path, hash};
    ASSERT_EQ(checkpoint.load(), 0u);
    try {
      faulted = sweep_to_json(run_complexity_sweep(Family::Classical, config,
                                                   &checkpoint))
                    .dump(2);
    } catch (const std::exception& e) {
      died = true;
      SCOPED_TRACE(e.what());
    }
  }
  util::FaultInjector::instance().configure("");

  // Whatever happened, the manifest on disk is either absent or a complete,
  // parseable generation — never a torn file.
  if (fs::exists(path)) {
    EXPECT_NO_THROW(util::Json::parse_file(path));
  }

  if (died) {
    // Killing fault: a restarted process resumes to the baseline bytes.
    StudyCheckpoint resumed{path, hash};
    resumed.load();
    EXPECT_EQ(sweep_to_json(
                  run_complexity_sweep(Family::Classical, config, &resumed))
                  .dump(2),
              baseline);
  } else if (spec.find("nan") != std::string::npos) {
    // Degrading fault: the sweep completed; with an open-ended NaN spec
    // every attempt fails, so quarantined runs must be on record.
    std::size_t failed = 0;
    const util::Json json = util::Json::parse(faulted);
    const util::Json& reps = json.at("levels").at(0).at("repetitions");
    for (std::size_t r = 0; r < reps.size(); ++r) {
      if (reps.at(r).contains("failures")) {
        failed += reps.at(r).at("failures").size();
      }
    }
    EXPECT_GT(failed, 0u)
        << "NaN injection completed without recording any failure";
  } else {
    FAIL() << "fault spec '" << spec
           << "' neither killed nor degraded the sweep";
  }
  fs::remove(path);
}

}  // namespace
}  // namespace qhdl::search
