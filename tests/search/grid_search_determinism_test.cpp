// The search contract this PR enforces: results are bit-identical for any
// thread count / lookahead window, including when run-pruning triggers.
// (The seed implementation only applied pruning on the serial path, so a
// pruned candidate could still win the search under threads > 1.)
#include <gtest/gtest.h>

#include <optional>
#include <stdexcept>

#include "core/config.hpp"
#include "data/preprocess.hpp"
#include "nn/fastpath.hpp"
#include "quantum/kernels.hpp"
#include "search/experiment.hpp"
#include "search/grid_search.hpp"
#include "search/search_space.hpp"

namespace qhdl::search {
namespace {

void expect_identical(const RepeatedSearchResult& a,
                      const RepeatedSearchResult& b) {
  ASSERT_EQ(a.repetitions.size(), b.repetitions.size());
  for (std::size_t rep = 0; rep < a.repetitions.size(); ++rep) {
    const SearchOutcome& oa = a.repetitions[rep];
    const SearchOutcome& ob = b.repetitions[rep];
    EXPECT_EQ(oa.candidates_trained, ob.candidates_trained);
    ASSERT_EQ(oa.evaluated.size(), ob.evaluated.size());
    for (std::size_t i = 0; i < oa.evaluated.size(); ++i) {
      const CandidateResult& ca = oa.evaluated[i];
      const CandidateResult& cb = ob.evaluated[i];
      EXPECT_EQ(ca.spec.to_string(), cb.spec.to_string());
      EXPECT_EQ(ca.runs, cb.runs);
      EXPECT_EQ(ca.meets_threshold, cb.meets_threshold);
      EXPECT_DOUBLE_EQ(ca.avg_best_train_accuracy,
                       cb.avg_best_train_accuracy);
      EXPECT_DOUBLE_EQ(ca.avg_best_val_accuracy, cb.avg_best_val_accuracy);
      EXPECT_DOUBLE_EQ(ca.flops, cb.flops);
    }
    ASSERT_EQ(oa.winner.has_value(), ob.winner.has_value());
    if (oa.winner.has_value()) {
      EXPECT_EQ(oa.winner->spec.to_string(), ob.winner->spec.to_string());
      EXPECT_DOUBLE_EQ(oa.winner->avg_best_train_accuracy,
                       ob.winner->avg_best_train_accuracy);
      EXPECT_DOUBLE_EQ(oa.winner->avg_best_val_accuracy,
                       ob.winner->avg_best_val_accuracy);
      EXPECT_DOUBLE_EQ(oa.winner->flops, ob.winner->flops);
    }
  }
  EXPECT_EQ(a.successful_repetitions, b.successful_repetitions);
  EXPECT_DOUBLE_EQ(a.mean_winner_flops, b.mean_winner_flops);
  EXPECT_DOUBLE_EQ(a.mean_winner_parameters, b.mean_winner_parameters);
  ASSERT_EQ(a.smallest_winner.has_value(), b.smallest_winner.has_value());
  if (a.smallest_winner.has_value()) {
    EXPECT_EQ(a.smallest_winner->spec.to_string(),
              b.smallest_winner->spec.to_string());
    EXPECT_DOUBLE_EQ(a.smallest_winner->flops, b.smallest_winner->flops);
  }
}

SearchConfig base_config() {
  SearchConfig config = core::test_scale().search;
  config.runs_per_model = 3;
  config.repetitions = 2;
  config.train.epochs = 3;
  config.max_candidates = 4;
  config.prune_margin = 0.0;
  return config;
}

TEST(GridSearchDeterminism, IdenticalAcrossThreadCountsWithWinner) {
  auto config = base_config();
  config.accuracy_threshold = 0.34;  // trivially met: winner at candidate 0
  const auto dataset = level_dataset(6, core::test_scale());

  config.threads = 1;
  const auto serial =
      run_repeated_search(paper_classical_space(), dataset, config);
  ASSERT_GT(serial.successful_repetitions, 0u);

  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    config.threads = threads;
    const auto parallel =
        run_repeated_search(paper_classical_space(), dataset, config);
    expect_identical(serial, parallel);
  }
}

TEST(GridSearchDeterminism, IdenticalAcrossThreadCountsWithPruning) {
  auto config = base_config();
  // An unreachable bar with an aggressive margin: first runs land far below
  // threshold - margin, so pruning fires and every path must take the same
  // prune decisions (the seed's threads>1 path skipped pruning entirely).
  config.accuracy_threshold = 0.99;
  config.prune_margin = 0.2;
  const auto dataset = level_dataset(6, core::test_scale());

  config.threads = 1;
  const auto serial =
      run_repeated_search(paper_classical_space(), dataset, config);

  // The scenario only tests the contract if pruning actually triggered.
  bool any_pruned = false;
  for (const auto& outcome : serial.repetitions) {
    for (const auto& candidate : outcome.evaluated) {
      if (candidate.runs < config.runs_per_model) any_pruned = true;
    }
  }
  ASSERT_TRUE(any_pruned) << "test setup: pruning never triggered";

  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    config.threads = threads;
    const auto parallel =
        run_repeated_search(paper_classical_space(), dataset, config);
    expect_identical(serial, parallel);
  }
}

TEST(GridSearchDeterminism, LookaheadWindowDoesNotChangeResults) {
  auto config = base_config();
  config.accuracy_threshold = 0.99;
  config.prune_margin = 0.2;
  const auto dataset = level_dataset(6, core::test_scale());

  config.threads = 1;
  config.lookahead = 0;
  const auto serial =
      run_repeated_search(paper_classical_space(), dataset, config);

  // Speculation trains candidates past the winner/stop point; committing
  // in FLOPs order must hide that completely.
  config.threads = 2;
  config.lookahead = 4;
  const auto speculative =
      run_repeated_search(paper_classical_space(), dataset, config);
  expect_identical(serial, speculative);
}

// The workspace fast path (default) and the QHDL_FORCE_REFERENCE_NN module
// path must produce the same search outcome bit for bit — the classical
// training results are interchangeable between the two trainers.
TEST(GridSearchDeterminism, WorkspaceAndReferencePathsAgree) {
  auto config = base_config();
  config.accuracy_threshold = 0.34;
  const auto dataset = level_dataset(6, core::test_scale());

  nn::fastpath::set_force_reference(false);
  config.threads = 1;
  const auto workspace =
      run_repeated_search(paper_classical_space(), dataset, config);

  nn::fastpath::set_force_reference(true);
  const auto reference =
      run_repeated_search(paper_classical_space(), dataset, config);

  // Reference path under parallel execution must also agree.
  config.threads = 4;
  const auto reference_parallel =
      run_repeated_search(paper_classical_space(), dataset, config);
  nn::fastpath::set_force_reference(std::nullopt);

  expect_identical(workspace, reference);
  expect_identical(workspace, reference_parallel);
}

// Compiled execution plans (the default) and QHDL_FORCE_UNCOMPILED per-call
// lowering must produce bit-identical hybrid search outcomes: the plan's
// fused scalar stream, flat batch stream, and adjoint sweeps all reproduce
// the uncompiled arithmetic exactly, so every TrainHistory — and therefore
// every accuracy, prune decision, and winner — matches.
TEST(GridSearchDeterminism, CompiledAndUncompiledPlansAgree) {
  auto config = base_config();
  config.accuracy_threshold = 0.34;
  config.max_candidates = 3;
  const auto dataset = level_dataset(4, core::test_scale());

  quantum::kernels::set_force_uncompiled(false);
  config.threads = 1;
  const auto compiled = run_repeated_search(
      paper_hybrid_space(qnn::AnsatzKind::BasicEntangler), dataset, config);

  quantum::kernels::set_force_uncompiled(true);
  const auto uncompiled = run_repeated_search(
      paper_hybrid_space(qnn::AnsatzKind::BasicEntangler), dataset, config);

  // Uncompiled under parallel execution must also agree.
  config.threads = 4;
  const auto uncompiled_parallel = run_repeated_search(
      paper_hybrid_space(qnn::AnsatzKind::BasicEntangler), dataset, config);
  quantum::kernels::set_force_uncompiled(std::nullopt);

  expect_identical(compiled, uncompiled);
  expect_identical(compiled, uncompiled_parallel);
}

TEST(GridSearchDeterminism, EvaluateCandidateRejectsZeroRuns) {
  auto config = base_config();
  config.runs_per_model = 0;
  const auto dataset = level_dataset(6, core::test_scale());
  util::Rng rng{9};
  data::TrainValSplit split = data::stratified_split(dataset, 0.2, rng);
  data::standardize_split(split);
  EXPECT_THROW(evaluate_candidate(ModelSpec::make_classical({4}), split,
                                  config, rng),
               std::invalid_argument);
}

TEST(GridSearchDeterminism, SweepLevelsIdenticalAcrossThreadCounts) {
  auto config = core::test_scale();
  config.feature_sizes = {4, 6};
  config.search.accuracy_threshold = 0.34;
  config.search.train.epochs = 2;
  config.search.max_candidates = 2;

  config.search.threads = 1;
  const auto serial = run_complexity_sweep(Family::Classical, config);
  config.search.threads = 4;
  const auto parallel = run_complexity_sweep(Family::Classical, config);

  ASSERT_EQ(serial.levels.size(), parallel.levels.size());
  for (std::size_t i = 0; i < serial.levels.size(); ++i) {
    EXPECT_EQ(serial.levels[i].features, parallel.levels[i].features);
    expect_identical(serial.levels[i].search, parallel.levels[i].search);
  }
}

}  // namespace
}  // namespace qhdl::search
