// Durability contract (DESIGN.md §10): a sweep killed at an arbitrary unit
// boundary and resumed from its checkpoint produces byte-identical results
// to an uninterrupted run — serial and threaded — and a quarantined training
// run degrades the candidate gracefully instead of poisoning the sweep.
#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>
#include <string>

#include "core/config.hpp"
#include "data/preprocess.hpp"
#include "nn/dense.hpp"
#include "nn/trainer.hpp"
#include "search/checkpoint.hpp"
#include "search/experiment.hpp"
#include "search/results.hpp"
#include "util/fault_injection.hpp"

namespace qhdl::search {
namespace {

namespace fs = std::filesystem;

/// Small but non-trivial sweep: one level, 2 repetitions x 4 candidates,
/// unreachable threshold so every candidate is evaluated (8 units total).
SweepConfig sweep_config() {
  SweepConfig config = core::test_scale();
  config.search.runs_per_model = 2;
  config.search.repetitions = 2;
  config.search.train.epochs = 2;
  config.search.max_candidates = 4;
  config.search.prune_margin = 0.0;
  config.search.accuracy_threshold = 1.1;  // never met: no early winner
  return config;
}

class CheckpointResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::FaultInjector::instance().configure("");
    path_ = (fs::temp_directory_path() /
             ("qhdl_ckpt_" + std::string(::testing::UnitTest::GetInstance()
                                             ->current_test_info()
                                             ->name()) +
              ".json"))
                .string();
    fs::remove(path_);
  }
  void TearDown() override {
    util::FaultInjector::instance().configure("");
    fs::remove(path_);
  }

  std::string path_;
};

TEST_F(CheckpointResumeTest, CandidateResultRoundTripsExactly) {
  CandidateResult original;
  original.spec = ModelSpec::make_hybrid(3, 2, qnn::AnsatzKind::BasicEntangler);
  original.avg_best_train_accuracy = 0.1 + 0.2;  // not exactly 0.3
  original.avg_best_val_accuracy = 1.0 / 3.0;
  original.flops = 123456.789012345;
  original.flops_forward = 54321.000000001;
  original.parameter_count = 42;
  original.runs = 4;
  original.failed_runs = 1;
  original.failures.push_back(RunFailure{1, 0, 7, "loss"});
  original.failures.push_back(RunFailure{1, 1, 0, "parameters"});
  original.meets_threshold = true;

  const CandidateResult restored = candidate_result_from_json(
      util::Json::parse(candidate_result_to_json(original).dump(2)));
  EXPECT_EQ(restored.spec.to_string(), original.spec.to_string());
  // Bit-exact doubles: the %.17g encoder must round-trip through the parser.
  EXPECT_EQ(restored.avg_best_train_accuracy,
            original.avg_best_train_accuracy);
  EXPECT_EQ(restored.avg_best_val_accuracy, original.avg_best_val_accuracy);
  EXPECT_EQ(restored.flops, original.flops);
  EXPECT_EQ(restored.flops_forward, original.flops_forward);
  EXPECT_EQ(restored.parameter_count, original.parameter_count);
  EXPECT_EQ(restored.runs, original.runs);
  EXPECT_EQ(restored.failed_runs, original.failed_runs);
  EXPECT_EQ(restored.meets_threshold, original.meets_threshold);
  ASSERT_EQ(restored.failures.size(), 2u);
  EXPECT_EQ(restored.failures[0].run, 1u);
  EXPECT_EQ(restored.failures[0].epoch, 7u);
  EXPECT_EQ(restored.failures[0].cause, "loss");
  EXPECT_EQ(restored.failures[1].attempt, 1u);
  EXPECT_EQ(restored.failures[1].cause, "parameters");

  CandidateResult classical;
  classical.spec = ModelSpec::make_classical({2, 10, 4});
  const CandidateResult back = candidate_result_from_json(
      candidate_result_to_json(classical));
  EXPECT_EQ(back.spec.to_string(), classical.spec.to_string());
  EXPECT_TRUE(back.failures.empty());
}

TEST_F(CheckpointResumeTest, RecordFindFlushLoadRoundTrip) {
  const UnitKey key{"classical", 6, 1, 3};
  EXPECT_EQ(key.to_string(), "classical/f6/r1/c3");

  CandidateResult result;
  result.spec = ModelSpec::make_classical({5});
  result.avg_best_val_accuracy = 0.625;
  {
    StudyCheckpoint checkpoint{path_, "hash-a"};
    EXPECT_EQ(checkpoint.load(), 0u);
    EXPECT_FALSE(checkpoint.find(key).has_value());
    checkpoint.record(key, result);
    checkpoint.flush();
  }
  StudyCheckpoint reloaded{path_, "hash-a"};
  EXPECT_EQ(reloaded.load(), 1u);
  const auto found = reloaded.find(key);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->spec.to_string(), result.spec.to_string());
  EXPECT_EQ(found->avg_best_val_accuracy, 0.625);
  EXPECT_FALSE(reloaded.find(UnitKey{"classical", 6, 1, 2}).has_value());
}

TEST_F(CheckpointResumeTest, StaleConfigHashRejected) {
  {
    StudyCheckpoint checkpoint{path_, "hash-a"};
    checkpoint.record(UnitKey{"classical", 6, 0, 0}, CandidateResult{});
    checkpoint.flush();
  }
  StudyCheckpoint stale{path_, "hash-b"};
  try {
    stale.load();
    FAIL() << "expected stale-checkpoint rejection";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("stale checkpoint"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(CheckpointResumeTest, CorruptManifestRejected) {
  util::Json::object().write_file(path_);  // missing version/hash/units
  StudyCheckpoint checkpoint{path_, "h"};
  EXPECT_THROW(checkpoint.load(), std::runtime_error);
}

TEST_F(CheckpointResumeTest, ConfigHashSeparatesProtocols) {
  const SweepConfig base = sweep_config();
  const std::string hash = sweep_config_hash(base);
  EXPECT_EQ(hash.size(), 16u);
  EXPECT_EQ(hash, sweep_config_hash(base));  // deterministic

  SweepConfig changed = base;
  changed.dataset_seed += 1;
  EXPECT_NE(sweep_config_hash(changed), hash);
  changed = base;
  changed.search.seed += 1;
  EXPECT_NE(sweep_config_hash(changed), hash);
  changed = base;
  changed.search.train.epochs += 1;
  EXPECT_NE(sweep_config_hash(changed), hash);
  changed = base;
  changed.feature_sizes.push_back(12);
  EXPECT_NE(sweep_config_hash(changed), hash);

  // Threads/lookahead are excluded by the determinism guarantee: a resume
  // may legitimately use a different parallelism than the original run.
  changed = base;
  changed.search.threads = 8;
  changed.search.lookahead = 3;
  EXPECT_EQ(sweep_config_hash(changed), hash);
}

/// Kills the sweep at unit-boundary arrival `crash_at`, resumes it from the
/// checkpoint with `resume_threads`, and requires the merged result to be
/// byte-identical to the uninterrupted baseline manifest.
void golden_resume(const std::string& path, std::size_t crash_threads,
                   std::size_t resume_threads, const char* crash_spec) {
  SweepConfig config = sweep_config();
  config.search.threads = 1;
  const std::string baseline =
      sweep_to_json(run_complexity_sweep(Family::Classical, config)).dump(2);

  const std::string hash = sweep_config_hash(config);
  config.search.threads = crash_threads;
  util::FaultInjector::instance().configure(crash_spec);
  {
    StudyCheckpoint checkpoint{path, hash};
    ASSERT_EQ(checkpoint.load(), 0u);
    EXPECT_THROW(run_complexity_sweep(Family::Classical, config, &checkpoint),
                 util::InjectedCrash);
  }
  util::FaultInjector::instance().configure("");

  // Fresh StudyCheckpoint instance = a restarted process.
  StudyCheckpoint resumed{path, hash};
  const std::size_t restored = resumed.load();
  ASSERT_GT(restored, 0u) << "crash landed before the first flush; the "
                             "scenario exercised nothing";
  ASSERT_LT(restored, 8u) << "crash landed after the last unit";
  config.search.threads = resume_threads;
  const std::string resumed_json =
      sweep_to_json(run_complexity_sweep(Family::Classical, config, &resumed))
          .dump(2);
  EXPECT_EQ(resumed_json, baseline);
  EXPECT_EQ(resumed.completed_units(), 8u);
}

TEST_F(CheckpointResumeTest, GoldenResumeSerial) {
  // threads=1 flushes after every unit; crash at unit 4 leaves 3 on disk.
  golden_resume(path_, 1, 1, "unit=crash@4");
}

TEST_F(CheckpointResumeTest, GoldenResumeThreaded) {
  // threads=4 -> window 4: repetition 0 flushes its whole window (4 units),
  // then the crash lands mid-commit in repetition 1; the resumed search
  // replays rep 0 from the manifest and retrains rep 1, on 4 threads.
  golden_resume(path_, 4, 4, "unit=crash@6");
}

TEST_F(CheckpointResumeTest, ResumeAfterInjectedIoFailure) {
  // An IO fault (disk full) aborts the sweep but must leave the previous
  // manifest generation intact and resumable.
  SweepConfig config = sweep_config();
  config.search.threads = 1;
  const std::string baseline =
      sweep_to_json(run_complexity_sweep(Family::Classical, config)).dump(2);
  const std::string hash = sweep_config_hash(config);

  // Arrival 3 = the flush after unit 3; flushes 1-2 persisted 2 units.
  util::FaultInjector::instance().configure("io=fail@3");
  {
    StudyCheckpoint checkpoint{path_, hash};
    EXPECT_THROW(run_complexity_sweep(Family::Classical, config, &checkpoint),
                 std::runtime_error);
  }
  util::FaultInjector::instance().configure("");

  StudyCheckpoint resumed{path_, hash};
  ASSERT_EQ(resumed.load(), 2u);
  EXPECT_EQ(
      sweep_to_json(run_complexity_sweep(Family::Classical, config, &resumed))
          .dump(2),
      baseline);
}

TEST_F(CheckpointResumeTest, QuarantinedRunExcludedFromMeans) {
  // One candidate, 5 runs, serial. Poison the first batch loss of run 2
  // (0-indexed run 1): with run_retries=0 the run quarantines, the sweep
  // completes, and the means must equal a hand-computed average over the 4
  // healthy runs — whose streams are untouched by the failure.
  const SweepConfig sweep = sweep_config();
  SearchConfig config = sweep.search;
  config.runs_per_model = 5;
  config.repetitions = 1;
  config.max_candidates = 1;
  config.run_retries = 0;
  config.threads = 1;
  config.train.patience = 0;

  const data::Dataset dataset = level_dataset(6, sweep);
  const std::vector<ModelSpec> sorted = sort_by_flops(
      family_search_space(Family::Classical), dataset.features(),
      dataset.classes, config);

  // Replicate run_repeated_search's stream derivation so the expected value
  // is computed on the exact same streams.
  util::Rng rng{config.seed};
  util::Rng rep_rng = rng.split();
  data::TrainValSplit split =
      data::stratified_split(dataset, config.validation_fraction, rep_rng);
  data::standardize_split(split);
  std::vector<util::Rng> run_rngs;
  for (std::size_t run = 0; run < 5; ++run) {
    run_rngs.push_back(rep_rng.split());
  }

  const std::size_t n_train = split.train.x.rows();
  const std::size_t batches =
      (n_train + config.train.batch_size - 1) / config.train.batch_size;
  const std::size_t per_run = config.train.epochs * batches;

  // Expected means: train runs {0, 2, 3, 4} on their pre-split streams,
  // accumulating in run order exactly as the commit loop does.
  nn::TrainConfig train_config = config.train;
  train_config.early_stop_accuracy = config.accuracy_threshold;
  double train_sum = 0.0, val_sum = 0.0;
  for (const std::size_t run : {0, 2, 3, 4}) {
    util::Rng stream = run_rngs[run];
    auto model = build_from_spec(sorted[0], split.train.features(),
                                 split.train.classes,
                                 config.classical_activation, stream);
    nn::Adam optimizer{train_config.learning_rate};
    const nn::TrainHistory history = nn::train_classifier(
        *model, optimizer, split.train.x, split.train.y, split.val.x,
        split.val.y, train_config, stream);
    train_sum += history.best_train_accuracy;
    val_sum += history.best_val_accuracy;
  }

  // Poison the first loss of run 1: arrivals 1..per_run are run 0.
  util::FaultInjector::instance().configure(
      "loss=nan@" + std::to_string(per_run + 1));
  const RepeatedSearchResult result =
      run_repeated_search(sorted, dataset, config);
  util::FaultInjector::instance().configure("");

  ASSERT_EQ(result.repetitions.size(), 1u);
  ASSERT_EQ(result.repetitions[0].evaluated.size(), 1u);
  const CandidateResult& candidate = result.repetitions[0].evaluated[0];
  EXPECT_EQ(candidate.runs, 4u);
  EXPECT_EQ(candidate.failed_runs, 1u);
  ASSERT_EQ(candidate.failures.size(), 1u);
  EXPECT_EQ(candidate.failures[0].run, 1u);
  EXPECT_EQ(candidate.failures[0].attempt, 0u);
  EXPECT_EQ(candidate.failures[0].epoch, 0u);
  EXPECT_EQ(candidate.failures[0].cause, "loss");
  // Healthy runs contribute bit-identical accuracies despite the neighbour
  // failing, and the mean is over the 4 successes only.
  EXPECT_EQ(candidate.avg_best_train_accuracy, train_sum / 4.0);
  EXPECT_EQ(candidate.avg_best_val_accuracy, val_sum / 4.0);
}

TEST_F(CheckpointResumeTest, RetryRecoversRunOnNextStream) {
  const SweepConfig sweep = sweep_config();
  SearchConfig config = sweep.search;
  config.runs_per_model = 3;
  config.repetitions = 1;
  config.max_candidates = 1;
  config.run_retries = 1;
  config.threads = 1;

  const data::Dataset dataset = level_dataset(6, sweep);
  const std::vector<ModelSpec> sorted = sort_by_flops(
      family_search_space(Family::Classical), dataset.features(),
      dataset.classes, config);

  // Poison only the very first loss: run 0 attempt 0 fails, its retry (a
  // child stream) runs clean, and no run is quarantined.
  util::FaultInjector::instance().configure("loss=nan@1");
  const RepeatedSearchResult result =
      run_repeated_search(sorted, dataset, config);
  util::FaultInjector::instance().configure("");

  const CandidateResult& candidate = result.repetitions[0].evaluated[0];
  EXPECT_EQ(candidate.runs, 3u);
  EXPECT_EQ(candidate.failed_runs, 0u);
  ASSERT_EQ(candidate.failures.size(), 1u);
  EXPECT_EQ(candidate.failures[0].run, 0u);
  EXPECT_EQ(candidate.failures[0].attempt, 0u);
}

TEST_F(CheckpointResumeTest, ManifestEmitsPerRepetitionFailures) {
  SweepResult sweep;
  sweep.family = Family::Classical;
  LevelResult level;
  level.features = 6;
  SearchOutcome outcome;
  CandidateResult candidate;
  candidate.spec = ModelSpec::make_classical({5});
  candidate.runs = 4;
  candidate.failed_runs = 1;
  candidate.failures.push_back(RunFailure{1, 0, 3, "loss"});
  outcome.evaluated.push_back(candidate);
  outcome.candidates_trained = 1;
  level.search.repetitions.push_back(outcome);
  sweep.levels.push_back(level);

  const util::Json json = sweep_to_json(sweep);
  const util::Json& rep =
      json.at("levels").at(0).at("repetitions").at(0);
  ASSERT_TRUE(rep.contains("failures"));
  const util::Json& failure = rep.at("failures").at(0);
  EXPECT_EQ(failure.at("candidate_index").as_number(), 0.0);
  EXPECT_EQ(failure.at("candidate").as_string(), "[5]");
  EXPECT_EQ(failure.at("run").as_number(), 1.0);
  EXPECT_EQ(failure.at("epoch").as_number(), 3.0);
  EXPECT_EQ(failure.at("cause").as_string(), "loss");
}

}  // namespace
}  // namespace qhdl::search
