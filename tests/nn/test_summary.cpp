#include "nn/summary.hpp"

#include <gtest/gtest.h>

#include "qnn/hybrid_model.hpp"

namespace qhdl::nn {
namespace {

TEST(Summary, ListsLayersAndTotals) {
  util::Rng rng{1};
  qnn::HybridConfig config;
  config.features = 10;
  config.qubits = 3;
  config.depth = 2;
  config.ansatz = qnn::AnsatzKind::StronglyEntangling;
  const auto model = qnn::build_hybrid_model(config, rng);
  const std::string text = summarize(*model);

  EXPECT_NE(text.find("Dense(10 -> 3)"), std::string::npos);
  EXPECT_NE(text.find("QuantumSEL(q=3, d=2)"), std::string::npos);
  EXPECT_NE(text.find("sel q=3 d=2"), std::string::npos);
  EXPECT_NE(text.find("total trainable parameters: " +
                      std::to_string(model->parameter_count())),
            std::string::npos);
}

TEST(Summary, EmptyModel) {
  Sequential empty;
  const std::string text = summarize(empty);
  EXPECT_NE(text.find("total trainable parameters: 0"), std::string::npos);
}

}  // namespace
}  // namespace qhdl::nn
