#include "nn/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "nn/sequential.hpp"
#include "qnn/hybrid_model.hpp"
#include "tensor/init.hpp"
#include "tensor/ops.hpp"

namespace qhdl::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

std::unique_ptr<Sequential> make_model(std::uint64_t seed) {
  util::Rng rng{seed};
  auto model = std::make_unique<Sequential>();
  model->emplace<Dense>(4, 6, rng);
  model->emplace<Tanh>(6);
  model->emplace<Dense>(6, 3, rng);
  return model;
}

TEST(Serialize, RoundTripRestoresExactOutputs) {
  auto source = make_model(1);
  auto target = make_model(2);  // different initialization

  util::Rng rng{3};
  const Tensor x = tensor::uniform(Shape{5, 4}, -1, 1, rng);
  const Tensor source_out = source->forward(x);
  const Tensor target_before = target->forward(x);
  EXPECT_FALSE(tensor::allclose(source_out, target_before));

  parameters_from_json(*target, parameters_to_json(*source));
  EXPECT_TRUE(tensor::allclose(source_out, target->forward(x), 0, 0));
}

TEST(Serialize, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "qhdl_weights.json")
          .string();
  auto source = make_model(4);
  save_parameters(*source, path);

  auto target = make_model(5);
  load_parameters(*target, path);

  util::Rng rng{6};
  const Tensor x = tensor::uniform(Shape{3, 4}, -1, 1, rng);
  EXPECT_TRUE(
      tensor::allclose(source->forward(x), target->forward(x), 0, 0));
  std::remove(path.c_str());
}

TEST(Serialize, HybridModelRoundTrip) {
  qnn::HybridConfig config;
  config.features = 5;
  config.qubits = 2;
  config.depth = 1;
  util::Rng rng1{7}, rng2{8};
  auto source = qnn::build_hybrid_model(config, rng1);
  auto target = qnn::build_hybrid_model(config, rng2);

  parameters_from_json(*target, parameters_to_json(*source));
  util::Rng rng{9};
  const Tensor x = tensor::uniform(Shape{4, 5}, -1, 1, rng);
  EXPECT_TRUE(
      tensor::allclose(source->forward(x), target->forward(x), 1e-12, 1e-14));
}

TEST(Serialize, RejectsMismatchedArchitecture) {
  auto source = make_model(10);
  const util::Json snapshot = parameters_to_json(*source);

  util::Rng rng{11};
  Sequential different;
  different.emplace<Dense>(4, 5, rng);  // shape differs
  different.emplace<Dense>(5, 3, rng);
  EXPECT_THROW(parameters_from_json(different, snapshot),
               std::invalid_argument);

  Sequential fewer;
  fewer.emplace<Dense>(4, 3, rng);
  EXPECT_THROW(parameters_from_json(fewer, snapshot), std::invalid_argument);
}

TEST(Serialize, RejectsUnknownFormat) {
  auto model = make_model(12);
  util::Json bad = util::Json::object();
  bad["format"] = util::Json{"something-else"};
  EXPECT_THROW(parameters_from_json(*model, bad), std::invalid_argument);
}

}  // namespace
}  // namespace qhdl::nn
