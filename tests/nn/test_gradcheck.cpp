// Property tests: every classical module's analytic gradients match central
// finite differences across random shapes and batches.
#include <gtest/gtest.h>

#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "nn/sequential.hpp"
#include "tensor/init.hpp"
#include "test_helpers.hpp"

namespace qhdl::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

struct GradCheckCase {
  std::size_t batch;
  std::size_t inputs;
  std::size_t outputs;
  std::uint64_t seed;
};

class DenseGradCheck : public ::testing::TestWithParam<GradCheckCase> {};

TEST_P(DenseGradCheck, InputAndParameterGradients) {
  const GradCheckCase c = GetParam();
  util::Rng rng{c.seed};
  Dense layer{c.inputs, c.outputs, rng};
  const Tensor x =
      tensor::uniform(Shape{c.batch, c.inputs}, -2.0, 2.0, rng);
  EXPECT_LT(testing::module_input_gradient_error(layer, x, rng), 1e-7);
  EXPECT_LT(testing::module_parameter_gradient_error(layer, x, rng), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DenseGradCheck,
    ::testing::Values(GradCheckCase{1, 1, 1, 1}, GradCheckCase{1, 3, 2, 2},
                      GradCheckCase{4, 5, 3, 3}, GradCheckCase{8, 2, 7, 4},
                      GradCheckCase{2, 10, 10, 5},
                      GradCheckCase{16, 4, 4, 6}));

class ActivationGradCheck
    : public ::testing::TestWithParam<std::tuple<std::string, std::size_t,
                                                 std::uint64_t>> {};

TEST_P(ActivationGradCheck, InputGradients) {
  const auto [kind, width, seed] = GetParam();
  util::Rng rng{seed};
  std::unique_ptr<Module> layer;
  if (kind == "tanh") layer = std::make_unique<Tanh>();
  if (kind == "sigmoid") layer = std::make_unique<Sigmoid>();
  if (kind == "softmax") layer = std::make_unique<Softmax>();
  ASSERT_NE(layer, nullptr);
  const Tensor x = tensor::uniform(Shape{3, width}, -2.0, 2.0, rng);
  EXPECT_LT(testing::module_input_gradient_error(*layer, x, rng), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, ActivationGradCheck,
    ::testing::Combine(::testing::Values("tanh", "sigmoid", "softmax"),
                       ::testing::Values(std::size_t{1}, std::size_t{4},
                                         std::size_t{9}),
                       ::testing::Values(std::uint64_t{11},
                                         std::uint64_t{12})));

// ReLU checked separately with inputs kept away from the kink at 0.
TEST(ReLUGradCheck, AwayFromKink) {
  util::Rng rng{21};
  ReLU layer;
  Tensor x = tensor::uniform(Shape{4, 6}, 0.5, 2.0, rng);
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (i % 2 == 0) x[i] = -x[i];  // mix of firmly positive/negative
  }
  EXPECT_LT(testing::module_input_gradient_error(layer, x, rng), 1e-7);
}

TEST(SequentialGradCheck, TwoLayerMlp) {
  util::Rng rng{31};
  Sequential model;
  model.emplace<Dense>(4, 6, rng);
  model.emplace<Tanh>();
  model.emplace<Dense>(6, 3, rng);
  const Tensor x = tensor::uniform(Shape{5, 4}, -1.5, 1.5, rng);
  EXPECT_LT(testing::module_input_gradient_error(model, x, rng), 1e-6);
  EXPECT_LT(testing::module_parameter_gradient_error(model, x, rng), 1e-6);
}

TEST(SequentialGradCheck, DeepNarrowStack) {
  util::Rng rng{32};
  Sequential model;
  model.emplace<Dense>(3, 3, rng);
  model.emplace<Tanh>();
  model.emplace<Dense>(3, 3, rng);
  model.emplace<Sigmoid>();
  model.emplace<Dense>(3, 2, rng);
  model.emplace<Softmax>();
  const Tensor x = tensor::uniform(Shape{2, 3}, -1.0, 1.0, rng);
  EXPECT_LT(testing::module_input_gradient_error(model, x, rng), 1e-6);
  EXPECT_LT(testing::module_parameter_gradient_error(model, x, rng), 1e-6);
}

}  // namespace
}  // namespace qhdl::nn
