#include "nn/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace qhdl::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

Parameter make_param(double value, double grad) {
  Parameter p{"p", Tensor::scalar(value)};
  p.grad[0] = grad;
  return p;
}

TEST(Sgd, AppliesLearningRate) {
  Parameter p = make_param(1.0, 0.5);
  Sgd opt{0.1};
  opt.step({&p});
  EXPECT_DOUBLE_EQ(p.value[0], 1.0 - 0.1 * 0.5);
}

TEST(Sgd, MultipleParameters) {
  Parameter a = make_param(1.0, 1.0);
  Parameter b = make_param(2.0, -1.0);
  Sgd opt{0.5};
  opt.step({&a, &b});
  EXPECT_DOUBLE_EQ(a.value[0], 0.5);
  EXPECT_DOUBLE_EQ(b.value[0], 2.5);
}

TEST(Momentum, AcceleratesAlongConstantGradient) {
  Parameter p = make_param(0.0, 1.0);
  Momentum opt{0.1, 0.9};
  opt.step({&p});
  const double step1 = -p.value[0];
  const double before = p.value[0];
  opt.step({&p});
  const double step2 = before - p.value[0];
  EXPECT_GT(step2, step1);  // velocity accumulates
  EXPECT_NEAR(step2, 0.1 * (0.9 + 1.0), 1e-12);
}

TEST(Momentum, ResetClearsVelocity) {
  Parameter p = make_param(0.0, 1.0);
  Momentum opt{0.1, 0.9};
  opt.step({&p});
  opt.reset();
  const double before = p.value[0];
  opt.step({&p});
  EXPECT_NEAR(before - p.value[0], 0.1, 1e-12);  // first-step size again
}

TEST(Adam, FirstStepIsLearningRateSized) {
  // With bias correction, |Δw| ≈ lr for the first step regardless of grad
  // magnitude (for constant gradient).
  Parameter p = make_param(0.0, 0.001);
  Adam opt{0.1};
  opt.step({&p});
  EXPECT_NEAR(std::abs(p.value[0]), 0.1, 1e-3);
}

TEST(Adam, DescendsQuadratic) {
  // Minimize f(w) = (w-3)^2 starting from w=0.
  Parameter p = make_param(0.0, 0.0);
  Adam opt{0.05};
  for (int i = 0; i < 2000; ++i) {
    p.grad[0] = 2.0 * (p.value[0] - 3.0);
    opt.step({&p});
  }
  EXPECT_NEAR(p.value[0], 3.0, 1e-2);
}

TEST(Adam, ResetClearsMoments) {
  Parameter p = make_param(0.0, 1.0);
  Adam opt{0.1};
  opt.step({&p});
  const double after_first = p.value[0];
  opt.reset();
  Parameter q = make_param(0.0, 1.0);
  opt.step({&q});
  EXPECT_NEAR(q.value[0], after_first, 1e-12);
}

TEST(Adam, HandlesZeroGradient) {
  Parameter p = make_param(5.0, 0.0);
  Adam opt{0.1};
  opt.step({&p});
  EXPECT_NEAR(p.value[0], 5.0, 1e-9);  // epsilon prevents NaN
}

TEST(Optimizers, SgdConvergesOnQuadratic) {
  Parameter p = make_param(10.0, 0.0);
  Sgd opt{0.1};
  for (int i = 0; i < 200; ++i) {
    p.grad[0] = 2.0 * p.value[0];
    opt.step({&p});
  }
  EXPECT_NEAR(p.value[0], 0.0, 1e-6);
}

}  // namespace
}  // namespace qhdl::nn
