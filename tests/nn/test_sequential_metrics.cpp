#include <gtest/gtest.h>

#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "nn/metrics.hpp"
#include "nn/sequential.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace qhdl::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(Sequential, ChainsForward) {
  Sequential model;
  model.add(std::make_unique<Dense>(Tensor::matrix(1, 1, {2.0}),
                                    Tensor::row({1.0})));
  model.add(std::make_unique<Dense>(Tensor::matrix(1, 1, {3.0}),
                                    Tensor::row({0.0})));
  // x=1 -> 2*1+1 = 3 -> 3*3 = 9.
  const Tensor out = model.forward(Tensor::matrix(1, 1, {1.0}));
  EXPECT_DOUBLE_EQ(out.at(0, 0), 9.0);
}

TEST(Sequential, BackwardChainsInReverse) {
  Sequential model;
  model.add(std::make_unique<Dense>(Tensor::matrix(1, 1, {2.0}),
                                    Tensor::row({0.0})));
  model.add(std::make_unique<Dense>(Tensor::matrix(1, 1, {3.0}),
                                    Tensor::row({0.0})));
  model.forward(Tensor::matrix(1, 1, {1.0}));
  const Tensor grad = model.backward(Tensor::matrix(1, 1, {1.0}));
  // dL/dx = 3 * 2 = 6.
  EXPECT_DOUBLE_EQ(grad.at(0, 0), 6.0);
}

TEST(Sequential, CollectsParameters) {
  util::Rng rng{1};
  Sequential model;
  model.emplace<Dense>(4, 3, rng);
  model.emplace<Tanh>();
  model.emplace<Dense>(3, 2, rng);
  EXPECT_EQ(model.parameters().size(), 4u);  // 2 dense layers x (W, b)
  EXPECT_EQ(model.parameter_count(), (4u * 3 + 3) + (3u * 2 + 2));
}

TEST(Sequential, InfoAggregates) {
  util::Rng rng{1};
  Sequential model;
  model.emplace<Dense>(5, 4, rng);
  model.emplace<ReLU>();
  model.emplace<Dense>(4, 2, rng);
  const LayerInfo info = model.info();
  EXPECT_EQ(info.inputs, 5u);
  EXPECT_EQ(info.outputs, 2u);
  EXPECT_EQ(info.parameter_count, (5u * 4 + 4) + (4u * 2 + 2));
  EXPECT_EQ(model.layer_infos().size(), 3u);
}

TEST(Sequential, NameListsLayers) {
  util::Rng rng{1};
  Sequential model;
  model.emplace<Dense>(2, 2, rng);
  model.emplace<Tanh>();
  EXPECT_EQ(model.name(), "Sequential[Dense(2 -> 2), Tanh]");
}

TEST(Sequential, NullLayerThrows) {
  Sequential model;
  EXPECT_THROW(model.add(nullptr), std::invalid_argument);
}

TEST(Sequential, LayerAccess) {
  util::Rng rng{1};
  Sequential model;
  model.emplace<Dense>(2, 2, rng);
  EXPECT_EQ(model.layer_count(), 1u);
  EXPECT_EQ(model.layer(0).name(), "Dense(2 -> 2)");
  EXPECT_THROW(model.layer(1), std::out_of_range);
}

TEST(Metrics, AccuracyCountsArgmaxMatches) {
  const Tensor logits =
      Tensor::matrix(3, 3, {5, 1, 1, 1, 5, 1, 1, 5, 1});
  const std::vector<std::size_t> labels{0, 1, 2};
  EXPECT_NEAR(accuracy(logits, labels), 2.0 / 3.0, 1e-12);
}

TEST(Metrics, AccuracyValidatesShapes) {
  const Tensor logits = Tensor::matrix(2, 2, {1, 0, 0, 1});
  EXPECT_THROW(accuracy(logits, std::vector<std::size_t>{0}),
               std::invalid_argument);
}

TEST(Metrics, PredictClasses) {
  const Tensor logits = Tensor::matrix(2, 3, {0, 1, 0, 0, 0, 9});
  const auto predictions = predict_classes(logits);
  EXPECT_EQ(predictions, (std::vector<std::size_t>{1, 2}));
}

TEST(Metrics, ConfusionMatrix) {
  const Tensor logits =
      Tensor::matrix(4, 2, {5, 0, 0, 5, 5, 0, 5, 0});
  const std::vector<std::size_t> labels{0, 0, 1, 1};
  const auto cm = confusion_matrix(logits, labels, 2);
  EXPECT_EQ(cm[0][0], 1u);  // actual 0, predicted 0
  EXPECT_EQ(cm[0][1], 1u);  // actual 0, predicted 1
  EXPECT_EQ(cm[1][0], 2u);  // actual 1, predicted 0
  EXPECT_EQ(cm[1][1], 0u);
}

}  // namespace
}  // namespace qhdl::nn
