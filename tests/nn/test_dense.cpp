#include "nn/dense.hpp"

#include <gtest/gtest.h>

#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace qhdl::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(Dense, ForwardComputesAffine) {
  // W = [[1,2],[3,4]], b = [10, 20]; x = [1, 1] -> [14, 26].
  Dense layer{Tensor::matrix(2, 2, {1, 2, 3, 4}), Tensor::row({10, 20})};
  const Tensor out = layer.forward(Tensor::matrix(1, 2, {1, 1}));
  EXPECT_DOUBLE_EQ(out.at(0, 0), 14.0);
  EXPECT_DOUBLE_EQ(out.at(0, 1), 26.0);
}

TEST(Dense, ForwardBatch) {
  Dense layer{Tensor::matrix(2, 1, {1, 1}), Tensor::row({0})};
  const Tensor out = layer.forward(Tensor::matrix(3, 2, {1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(out.shape(), Shape({3, 1}));
  EXPECT_DOUBLE_EQ(out.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(out.at(2, 0), 11.0);
}

TEST(Dense, ForwardWrongWidthThrows) {
  util::Rng rng{1};
  Dense layer{3, 2, rng};
  EXPECT_THROW(layer.forward(Tensor::matrix(1, 4, {1, 2, 3, 4})),
               std::invalid_argument);
}

TEST(Dense, BackwardBeforeForwardThrows) {
  util::Rng rng{1};
  Dense layer{2, 2, rng};
  EXPECT_THROW(layer.backward(Tensor::matrix(1, 2, {1, 1})),
               std::logic_error);
}

TEST(Dense, BackwardGradients) {
  // Single sample x = [1, 2], dY = [1, 0]; dW = xᵀ·dY, db = dY, dX = dY·Wᵀ.
  Dense layer{Tensor::matrix(2, 2, {1, 2, 3, 4}), Tensor::row({0, 0})};
  layer.forward(Tensor::matrix(1, 2, {1, 2}));
  const Tensor grad_in = layer.backward(Tensor::matrix(1, 2, {1, 0}));
  EXPECT_DOUBLE_EQ(layer.weight().grad.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(layer.weight().grad.at(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(layer.weight().grad.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(layer.bias().grad[0], 1.0);
  EXPECT_DOUBLE_EQ(layer.bias().grad[1], 0.0);
  // dX = [1,0]·Wᵀ = [1, 3].
  EXPECT_DOUBLE_EQ(grad_in.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(grad_in.at(0, 1), 3.0);
}

TEST(Dense, GradientsAccumulateAcrossBackwardCalls) {
  Dense layer{Tensor::matrix(1, 1, {2}), Tensor::row({0})};
  layer.forward(Tensor::matrix(1, 1, {3}));
  layer.backward(Tensor::matrix(1, 1, {1}));
  layer.forward(Tensor::matrix(1, 1, {3}));
  layer.backward(Tensor::matrix(1, 1, {1}));
  EXPECT_DOUBLE_EQ(layer.weight().grad[0], 6.0);  // 3 + 3
  layer.zero_grad();
  EXPECT_DOUBLE_EQ(layer.weight().grad[0], 0.0);
}

TEST(Dense, ParameterCountAndInfo) {
  util::Rng rng{1};
  Dense layer{10, 6, rng};
  EXPECT_EQ(layer.parameter_count(), 10u * 6u + 6u);
  const LayerInfo info = layer.info();
  EXPECT_EQ(info.kind, "dense");
  EXPECT_EQ(info.inputs, 10u);
  EXPECT_EQ(info.outputs, 6u);
  EXPECT_EQ(info.parameter_count, 66u);
  EXPECT_EQ(layer.name(), "Dense(10 -> 6)");
}

TEST(Dense, ZeroSizedThrows) {
  util::Rng rng{1};
  EXPECT_THROW((Dense{0, 3, rng}), std::invalid_argument);
  EXPECT_THROW((Dense{3, 0, rng}), std::invalid_argument);
}

TEST(Dense, BatchGradientIsSumOfPerSample) {
  util::Rng rng{9};
  Dense batch_layer{3, 2, rng};
  // Copy weights into a second identical layer.
  Dense single_layer{batch_layer.weight().value, batch_layer.bias().value};

  const Tensor x = Tensor::matrix(2, 3, {1, 2, 3, 4, 5, 6});
  const Tensor g = Tensor::matrix(2, 2, {1, 0, 0, 1});

  batch_layer.forward(x);
  batch_layer.backward(g);

  for (std::size_t s = 0; s < 2; ++s) {
    Tensor xs{Shape{1, 3}};
    Tensor gs{Shape{1, 2}};
    for (std::size_t j = 0; j < 3; ++j) xs.at(0, j) = x.at(s, j);
    for (std::size_t j = 0; j < 2; ++j) gs.at(0, j) = g.at(s, j);
    single_layer.forward(xs);
    single_layer.backward(gs);
  }
  EXPECT_TRUE(tensor::allclose(batch_layer.weight().grad,
                               single_layer.weight().grad));
  EXPECT_TRUE(
      tensor::allclose(batch_layer.bias().grad, single_layer.bias().grad));
}

}  // namespace
}  // namespace qhdl::nn
