// Non-finite guard: a NaN/Inf loss must stop training with a structured
// NonFiniteError (never train on garbage), the guard must be free on healthy
// runs, and disabling it must restore the unguarded behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "nn/sequential.hpp"
#include "nn/trainer.hpp"
#include "tensor/init.hpp"
#include "util/fault_injection.hpp"

namespace qhdl::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

void make_separable(std::size_t n, util::Rng& rng, Tensor& x,
                    std::vector<std::size_t>& y) {
  x = Tensor{Shape{n, 2}};
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = rng.uniform(-1.0, 1.0);
    x.at(i, 0) = x0 + (x0 > 0 ? 0.3 : -0.3);
    x.at(i, 1) = rng.uniform(-1.0, 1.0);
    y[i] = x0 > 0 ? 1 : 0;
  }
}

struct Fixture {
  Tensor x_train, x_val;
  std::vector<std::size_t> y_train, y_val;
  Sequential model;
  util::Rng rng{421};

  Fixture() {
    make_separable(40, rng, x_train, y_train);
    make_separable(16, rng, x_val, y_val);
    model.emplace<Dense>(2, 4, rng);
    model.emplace<Tanh>();
    model.emplace<Dense>(4, 2, rng);
  }

  TrainHistory train(const TrainConfig& config) {
    Adam optimizer{config.learning_rate};
    return train_classifier(model, optimizer, x_train, y_train, x_val,
                            y_val, config, rng);
  }
};

class FiniteGuardTest : public ::testing::Test {
 protected:
  void SetUp() override { util::FaultInjector::instance().configure(""); }
  void TearDown() override { util::FaultInjector::instance().configure(""); }
};

TEST_F(FiniteGuardTest, PoisonedLossThrowsStructuredError) {
  Fixture f;
  TrainConfig config;
  config.epochs = 3;
  util::FaultInjector::instance().configure("loss=nan@1");
  try {
    f.train(config);
    FAIL() << "expected NonFiniteError";
  } catch (const NonFiniteError& e) {
    EXPECT_EQ(e.kind(), "loss");
    EXPECT_EQ(e.epoch(), 0u);
    EXPECT_NE(std::string(e.what()).find("non-finite loss"),
              std::string::npos);
  }
}

TEST_F(FiniteGuardTest, SecondEpochPoisonReportsSecondEpoch) {
  Fixture f;
  TrainConfig config;
  config.epochs = 3;
  config.batch_size = 8;
  // 40 train rows / batch 8 = 5 loss arrivals per epoch; arrival 6 is the
  // first batch of epoch 2.
  util::FaultInjector::instance().configure("loss=nan@6");
  try {
    f.train(config);
    FAIL() << "expected NonFiniteError";
  } catch (const NonFiniteError& e) {
    EXPECT_EQ(e.kind(), "loss");
    EXPECT_EQ(e.epoch(), 1u);
  }
}

TEST_F(FiniteGuardTest, GuardOffTrainsThroughPoison) {
  Fixture f;
  TrainConfig config;
  config.epochs = 2;
  config.finite_guard = false;
  util::FaultInjector::instance().configure("loss=nan@1");
  const TrainHistory history = f.train(config);
  // The unguarded trainer averages the NaN into the epoch loss — exactly
  // the silent poisoning the guard exists to prevent.
  EXPECT_EQ(history.epochs_run, 2u);
  EXPECT_TRUE(std::isnan(history.epochs[0].train_loss));
}

TEST_F(FiniteGuardTest, GuardIsFreeOnHealthyRuns) {
  const auto run = [](bool guard) {
    Fixture f;
    TrainConfig config;
    config.epochs = 4;
    config.finite_guard = guard;
    return f.train(config);
  };
  const TrainHistory with_guard = run(true);
  const TrainHistory without = run(false);
  ASSERT_EQ(with_guard.epochs.size(), without.epochs.size());
  for (std::size_t e = 0; e < with_guard.epochs.size(); ++e) {
    EXPECT_EQ(with_guard.epochs[e].train_loss, without.epochs[e].train_loss);
    EXPECT_EQ(with_guard.epochs[e].val_accuracy,
              without.epochs[e].val_accuracy);
  }
  EXPECT_EQ(with_guard.best_val_accuracy, without.best_val_accuracy);
}

}  // namespace
}  // namespace qhdl::nn
