// Golden bit-identity suite for the zero-allocation workspace trainer: the
// fused/blocked fast path must reproduce the reference Module path's
// TrainHistory to the last ulp — every epoch loss and accuracy, across the
// search space's layer shapes, activations, and odd batch tails — because
// both paths share the same GEMM kernel, loss core, accuracy core, and
// optimizer arithmetic.
#include "nn/workspace.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "nn/fastpath.hpp"
#include "nn/trainer.hpp"
#include "qnn/quantum_layer.hpp"
#include "tensor/init.hpp"

namespace qhdl::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

/// Restores the fastpath override on scope exit.
struct ForceReferenceGuard {
  explicit ForceReferenceGuard(bool force) {
    fastpath::set_force_reference(force);
  }
  ~ForceReferenceGuard() { fastpath::set_force_reference(std::nullopt); }
};

/// Deterministic synthetic multi-class data (not linearly separable; the
/// histories just need rich dynamics, not convergence).
void make_dataset(std::size_t n, std::size_t features, std::size_t classes,
                  std::uint64_t seed, Tensor& x,
                  std::vector<std::size_t>& y) {
  util::Rng rng{seed};
  x = Tensor{Shape{n, features}};
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < features; ++j) {
      x.at(i, j) = rng.uniform(-1.0, 1.0);
      sum += x.at(i, j);
    }
    y[i] = static_cast<std::size_t>(sum > 0.0 ? 1 : 0) % classes;
  }
}

enum class Act { Tanh, ReLU, Sigmoid };

Sequential make_mlp(std::size_t features, std::size_t hidden,
                    std::size_t depth, std::size_t classes, Act act,
                    util::Rng& rng) {
  Sequential model;
  std::size_t width = features;
  for (std::size_t d = 0; d < depth; ++d) {
    model.emplace<Dense>(width, hidden, rng);
    switch (act) {
      case Act::Tanh: model.emplace<Tanh>(); break;
      case Act::ReLU: model.emplace<ReLU>(); break;
      case Act::Sigmoid: model.emplace<Sigmoid>(); break;
    }
    width = hidden;
  }
  model.emplace<Dense>(width, classes, rng);
  return model;
}

TrainHistory train_once(bool force_reference, std::size_t hidden,
                        std::size_t depth, Act act, std::size_t n,
                        std::size_t batch, std::size_t epochs) {
  constexpr std::size_t kFeatures = 4, kClasses = 2;
  Tensor x_train, x_val;
  std::vector<std::size_t> y_train, y_val;
  make_dataset(n, kFeatures, kClasses, 100 + hidden, x_train, y_train);
  make_dataset(n / 2 + 1, kFeatures, kClasses, 200 + depth, x_val, y_val);

  ForceReferenceGuard guard{force_reference};
  util::Rng init_rng{7 * hidden + depth};
  Sequential model = make_mlp(kFeatures, hidden, depth, kClasses, act,
                              init_rng);
  Adam optimizer{1e-3};
  TrainConfig config;
  config.epochs = epochs;
  config.batch_size = batch;
  util::Rng train_rng{997};
  return train_classifier(model, optimizer, x_train, y_train, x_val, y_val,
                          config, train_rng);
}

void expect_bit_identical(const TrainHistory& a, const TrainHistory& b) {
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (std::size_t e = 0; e < a.epochs.size(); ++e) {
    EXPECT_EQ(a.epochs[e].train_loss, b.epochs[e].train_loss) << "epoch " << e;
    EXPECT_EQ(a.epochs[e].train_accuracy, b.epochs[e].train_accuracy)
        << "epoch " << e;
    EXPECT_EQ(a.epochs[e].val_accuracy, b.epochs[e].val_accuracy)
        << "epoch " << e;
  }
  EXPECT_EQ(a.best_train_accuracy, b.best_train_accuracy);
  EXPECT_EQ(a.best_val_accuracy, b.best_val_accuracy);
  EXPECT_EQ(a.epochs_run, b.epochs_run);
}

TEST(Workspace, GoldenBitIdentityAcrossSearchSpaceShapes) {
  // The paper's classical search space: hidden width 2..10, depth 1..3.
  // n=52 with batch 8 leaves an odd 4-row tail batch every epoch.
  for (std::size_t depth = 1; depth <= 3; ++depth) {
    for (std::size_t hidden = 2; hidden <= 10; ++hidden) {
      const TrainHistory ref =
          train_once(true, hidden, depth, Act::Tanh, 52, 8, 3);
      const TrainHistory fast =
          train_once(false, hidden, depth, Act::Tanh, 52, 8, 3);
      SCOPED_TRACE("hidden=" + std::to_string(hidden) +
                   " depth=" + std::to_string(depth));
      expect_bit_identical(ref, fast);
    }
  }
}

TEST(Workspace, GoldenBitIdentityReluAndSigmoid) {
  for (const Act act : {Act::ReLU, Act::Sigmoid}) {
    const TrainHistory ref = train_once(true, 6, 2, act, 52, 8, 4);
    const TrainHistory fast = train_once(false, 6, 2, act, 52, 8, 4);
    expect_bit_identical(ref, fast);
  }
}

TEST(Workspace, GoldenBitIdentityOddBatchShapes) {
  // Batch sizes that do / don't divide n, batch > n, batch == 1.
  const struct { std::size_t n, batch; } cases[] = {
      {52, 8}, {40, 8}, {7, 16}, {9, 1}, {13, 5},
  };
  for (const auto& c : cases) {
    const TrainHistory ref = train_once(true, 5, 2, Act::Tanh, c.n, c.batch, 3);
    const TrainHistory fast =
        train_once(false, 5, 2, Act::Tanh, c.n, c.batch, 3);
    SCOPED_TRACE("n=" + std::to_string(c.n) +
                 " batch=" + std::to_string(c.batch));
    expect_bit_identical(ref, fast);
  }
}

TEST(Workspace, CompileSupportsClassicalStacksOnly) {
  util::Rng rng{3};
  Sequential mlp = make_mlp(4, 5, 2, 2, Act::Tanh, rng);
  EXPECT_TRUE(TrainWorkspace::supports(mlp));
  EXPECT_NE(TrainWorkspace::compile(mlp, 8, 64), nullptr);

  // Activation with no preceding Dense.
  Sequential bare;
  bare.emplace<Tanh>();
  EXPECT_FALSE(TrainWorkspace::supports(bare));

  // Softmax module is not fusable.
  Sequential with_softmax;
  with_softmax.emplace<Dense>(4, 2, rng);
  with_softmax.emplace<Softmax>();
  EXPECT_FALSE(TrainWorkspace::supports(with_softmax));
  EXPECT_EQ(TrainWorkspace::compile(with_softmax, 8, 64), nullptr);

  // Hybrid models (quantum layer) are not compilable.
  qnn::QuantumLayerConfig qconfig;
  qconfig.qubits = 2;
  qconfig.depth = 1;
  Sequential hybrid;
  hybrid.emplace<Dense>(4, 2, rng);
  hybrid.emplace<Tanh>();
  hybrid.emplace<qnn::QuantumLayer>(qconfig, rng);
  hybrid.emplace<Dense>(2, 2, rng);
  EXPECT_FALSE(TrainWorkspace::supports(hybrid));
  EXPECT_EQ(TrainWorkspace::compile(hybrid, 8, 64), nullptr);
}

TEST(Workspace, HybridModelsFallBackToReferencePath) {
  util::Rng rng{5};
  qnn::QuantumLayerConfig qconfig;
  qconfig.qubits = 2;
  qconfig.depth = 1;
  Sequential hybrid;
  hybrid.emplace<Dense>(2, 2, rng);
  hybrid.emplace<Tanh>();
  hybrid.emplace<qnn::QuantumLayer>(qconfig, rng);
  hybrid.emplace<Dense>(2, 2, rng);

  Tensor x;
  std::vector<std::size_t> y;
  make_dataset(12, 2, 2, 9, x, y);
  Adam optimizer{1e-3};
  TrainConfig config;
  config.epochs = 1;
  config.batch_size = 4;

  fastpath::reset_stats();
  util::Rng train_rng{17};
  train_classifier(hybrid, optimizer, x, y, x, y, config, train_rng);
  EXPECT_EQ(fastpath::stats().reference_runs, 1u);
  EXPECT_EQ(fastpath::stats().workspace_runs, 0u);
}

TEST(Workspace, ClassicalModelsUseWorkspacePath) {
  fastpath::reset_stats();
  train_once(false, 4, 1, Act::Tanh, 20, 8, 1);
  EXPECT_EQ(fastpath::stats().workspace_runs, 1u);
  EXPECT_EQ(fastpath::stats().reference_runs, 0u);
  EXPECT_GT(fastpath::stats().workspace_steps, 0u);
}

TEST(Workspace, EvaluateAccuracyMatchesModuleForward) {
  util::Rng rng{21};
  Sequential model = make_mlp(4, 6, 2, 2, Act::Tanh, rng);
  Tensor x;
  std::vector<std::size_t> y;
  make_dataset(33, 4, 2, 31, x, y);

  auto workspace = TrainWorkspace::compile(model, 8, 33);
  ASSERT_NE(workspace, nullptr);
  EXPECT_EQ(workspace->evaluate_accuracy(x, y),
            evaluate_accuracy(model, x, y));
}

TEST(Workspace, TrainStepValidatesInputs) {
  util::Rng rng{23};
  Sequential model = make_mlp(4, 3, 1, 2, Act::Tanh, rng);
  auto workspace = TrainWorkspace::compile(model, 4, 16);
  ASSERT_NE(workspace, nullptr);

  Tensor x;
  std::vector<std::size_t> y;
  make_dataset(8, 4, 2, 3, x, y);
  Adam optimizer{1e-3};

  const std::vector<std::size_t> too_big{0, 1, 2, 3, 4};  // > max batch
  EXPECT_THROW(workspace->train_step(x, y, too_big, optimizer),
               std::invalid_argument);
  const std::vector<std::size_t> out_of_range{0, 99};
  EXPECT_THROW(workspace->train_step(x, y, out_of_range, optimizer),
               std::out_of_range);
  Tensor big{Shape{32, 4}};
  std::vector<std::size_t> big_y(32, 0);
  EXPECT_THROW(workspace->evaluate_accuracy(big, big_y),
               std::invalid_argument);
}

}  // namespace
}  // namespace qhdl::nn
