#include "nn/trainer.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "nn/fastpath.hpp"
#include "nn/sequential.hpp"
#include "tensor/init.hpp"

namespace qhdl::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

/// Tiny linearly-separable 2-class problem: class = (x0 > 0).
void make_separable(std::size_t n, util::Rng& rng, Tensor& x,
                    std::vector<std::size_t>& y) {
  x = Tensor{Shape{n, 2}};
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = rng.uniform(-1.0, 1.0);
    const double x1 = rng.uniform(-1.0, 1.0);
    x.at(i, 0) = x0 + (x0 > 0 ? 0.3 : -0.3);  // margin
    x.at(i, 1) = x1;
    y[i] = x0 > 0 ? 1 : 0;
  }
}

TEST(SliceRows, ExtractsRequestedRows) {
  const Tensor m = Tensor::matrix(3, 2, {1, 2, 3, 4, 5, 6});
  const std::vector<std::size_t> rows{2, 0};
  const Tensor s = slice_rows(m, rows);
  EXPECT_EQ(s.shape(), Shape({2, 2}));
  EXPECT_DOUBLE_EQ(s.at(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(s.at(1, 1), 2.0);
}

TEST(SliceRows, OutOfRangeThrows) {
  const Tensor m = Tensor::matrix(2, 1, {1, 2});
  EXPECT_THROW(slice_rows(m, std::vector<std::size_t>{2}),
               std::out_of_range);
}

TEST(SliceRows, IntoReusesPreallocatedTensor) {
  const Tensor m = Tensor::matrix(3, 2, {1, 2, 3, 4, 5, 6});
  Tensor out{Shape{2, 2}};
  slice_rows_into(m, std::vector<std::size_t>{2, 0}, out);
  EXPECT_DOUBLE_EQ(out.at(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(out.at(1, 1), 2.0);
  EXPECT_THROW(slice_rows_into(m, std::vector<std::size_t>{3}, out),
               std::invalid_argument);  // shape mismatch (1 row vs 2)
  Tensor one_row{Shape{1, 2}};
  EXPECT_THROW(slice_rows_into(m, std::vector<std::size_t>{3}, one_row),
               std::out_of_range);
}

// Regression pin for the epoch-stats refactor: the accuracies recorded in
// TrainHistory must exactly equal a module-path forward over the same
// parameters at the same point in training — on both the workspace fast
// path and the forced reference path.
TEST(Trainer, EpochStatsMatchModuleForwardOnBothPaths) {
  for (const bool force_reference : {false, true}) {
    util::Rng rng{46};
    Tensor x_train, x_val;
    std::vector<std::size_t> y_train, y_val;
    make_separable(52, rng, x_train, y_train);  // odd tail with batch 8
    make_separable(21, rng, x_val, y_val);

    Sequential model;
    model.emplace<Dense>(2, 5, rng);
    model.emplace<Tanh>();
    model.emplace<Dense>(5, 2, rng);
    Adam optimizer{1e-3};

    fastpath::set_force_reference(force_reference);
    TrainConfig config;
    config.epochs = 3;
    config.batch_size = 8;
    config.on_epoch = [&](std::size_t, const EpochStats& stats) {
      EXPECT_EQ(stats.train_accuracy,
                evaluate_accuracy(model, x_train, y_train));
      EXPECT_EQ(stats.val_accuracy, evaluate_accuracy(model, x_val, y_val));
    };
    const TrainHistory history = train_classifier(
        model, optimizer, x_train, y_train, x_val, y_val, config, rng);
    fastpath::set_force_reference(std::nullopt);
    EXPECT_EQ(history.epochs_run, 3u);
  }
}

// Early-stop and patience must trigger at the same epoch on both paths.
TEST(Trainer, StoppingDecisionsIdenticalAcrossPaths) {
  const auto run = [](bool force_reference) {
    util::Rng rng{47};
    Tensor x_train, x_val;
    std::vector<std::size_t> y_train, y_val;
    make_separable(120, rng, x_train, y_train);
    make_separable(40, rng, x_val, y_val);
    Sequential model;
    model.emplace<Dense>(2, 4, rng);
    model.emplace<Tanh>();
    model.emplace<Dense>(4, 2, rng);
    Adam optimizer{0.05};
    fastpath::set_force_reference(force_reference);
    TrainConfig config;
    config.epochs = 200;
    config.patience = 3;
    config.early_stop_accuracy = 0.98;
    const TrainHistory history = train_classifier(
        model, optimizer, x_train, y_train, x_val, y_val, config, rng);
    fastpath::set_force_reference(std::nullopt);
    return history;
  };
  const TrainHistory fast = run(false);
  const TrainHistory ref = run(true);
  EXPECT_EQ(fast.epochs_run, ref.epochs_run);
  EXPECT_EQ(fast.best_train_accuracy, ref.best_train_accuracy);
  EXPECT_EQ(fast.best_val_accuracy, ref.best_val_accuracy);
  ASSERT_EQ(fast.epochs.size(), ref.epochs.size());
  for (std::size_t e = 0; e < fast.epochs.size(); ++e) {
    EXPECT_EQ(fast.epochs[e].train_loss, ref.epochs[e].train_loss);
  }
}

TEST(Trainer, LearnsSeparableProblem) {
  util::Rng rng{42};
  Tensor x_train, x_val;
  std::vector<std::size_t> y_train, y_val;
  make_separable(200, rng, x_train, y_train);
  make_separable(50, rng, x_val, y_val);

  Sequential model;
  model.emplace<Dense>(2, 4, rng);
  model.emplace<Tanh>();
  model.emplace<Dense>(4, 2, rng);
  Adam optimizer{0.01};

  TrainConfig config;
  config.epochs = 30;
  config.batch_size = 8;
  const TrainHistory history = train_classifier(
      model, optimizer, x_train, y_train, x_val, y_val, config, rng);

  EXPECT_GE(history.best_train_accuracy, 0.95);
  EXPECT_GE(history.best_val_accuracy, 0.95);
  EXPECT_EQ(history.epochs.size(), history.epochs_run);
}

TEST(Trainer, EarlyStopHaltsAtThreshold) {
  util::Rng rng{43};
  Tensor x_train, x_val;
  std::vector<std::size_t> y_train, y_val;
  make_separable(200, rng, x_train, y_train);
  make_separable(50, rng, x_val, y_val);

  Sequential model;
  model.emplace<Dense>(2, 4, rng);
  model.emplace<Tanh>();
  model.emplace<Dense>(4, 2, rng);
  Adam optimizer{0.05};

  TrainConfig config;
  config.epochs = 100;
  config.batch_size = 8;
  config.early_stop_accuracy = 0.9;
  const TrainHistory history = train_classifier(
      model, optimizer, x_train, y_train, x_val, y_val, config, rng);

  EXPECT_LT(history.epochs_run, 100u);
  EXPECT_GE(history.best_train_accuracy, 0.9);
  EXPECT_GE(history.best_val_accuracy, 0.9);
}

TEST(Trainer, BestAccuracyIsMaxOverEpochs) {
  util::Rng rng{44};
  Tensor x_train, x_val;
  std::vector<std::size_t> y_train, y_val;
  make_separable(60, rng, x_train, y_train);
  make_separable(20, rng, x_val, y_val);

  Sequential model;
  model.emplace<Dense>(2, 2, rng);
  model.emplace<Dense>(2, 2, rng);
  Adam optimizer{0.01};

  TrainConfig config;
  config.epochs = 5;
  const TrainHistory history = train_classifier(
      model, optimizer, x_train, y_train, x_val, y_val, config, rng);

  double max_train = 0.0, max_val = 0.0;
  for (const EpochStats& e : history.epochs) {
    max_train = std::max(max_train, e.train_accuracy);
    max_val = std::max(max_val, e.val_accuracy);
  }
  EXPECT_DOUBLE_EQ(history.best_train_accuracy, max_train);
  EXPECT_DOUBLE_EQ(history.best_val_accuracy, max_val);
}

TEST(Trainer, ValidatesInputs) {
  util::Rng rng{45};
  Sequential model;
  model.emplace<Dense>(2, 2, rng);
  Adam optimizer{0.01};
  TrainConfig config;

  const Tensor x = Tensor::matrix(2, 2, {1, 2, 3, 4});
  const std::vector<std::size_t> y{0};  // wrong size
  EXPECT_THROW(
      train_classifier(model, optimizer, x, y, x, y, config, rng),
      std::invalid_argument);

  const std::vector<std::size_t> y_ok{0, 1};
  config.batch_size = 0;
  EXPECT_THROW(
      train_classifier(model, optimizer, x, y_ok, x, y_ok, config, rng),
      std::invalid_argument);
}

TEST(Trainer, DeterministicForSeed) {
  const auto run = [](std::uint64_t seed) {
    util::Rng rng{seed};
    Tensor x_train, x_val;
    std::vector<std::size_t> y_train, y_val;
    make_separable(80, rng, x_train, y_train);
    make_separable(20, rng, x_val, y_val);
    Sequential model;
    model.emplace<Dense>(2, 3, rng);
    model.emplace<Tanh>();
    model.emplace<Dense>(3, 2, rng);
    Adam optimizer{0.01};
    TrainConfig config;
    config.epochs = 5;
    return train_classifier(model, optimizer, x_train, y_train, x_val, y_val,
                            config, rng);
  };
  const TrainHistory a = run(7);
  const TrainHistory b = run(7);
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (std::size_t i = 0; i < a.epochs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.epochs[i].train_loss, b.epochs[i].train_loss);
    EXPECT_DOUBLE_EQ(a.epochs[i].val_accuracy, b.epochs[i].val_accuracy);
  }
}

}  // namespace
}  // namespace qhdl::nn

namespace qhdl::nn {
namespace {

TEST(Trainer, PatienceStopsWhenValStalls) {
  util::Rng rng{51};
  Tensor x_train, x_val;
  std::vector<std::size_t> y_train, y_val;
  make_separable(120, rng, x_train, y_train);
  make_separable(40, rng, x_val, y_val);

  Sequential model;
  model.emplace<Dense>(2, 4, rng);
  model.emplace<Tanh>();
  model.emplace<Dense>(4, 2, rng);
  Adam optimizer{0.05};

  TrainConfig config;
  config.epochs = 200;
  config.patience = 3;  // val accuracy saturates quickly on this task
  const TrainHistory history = train_classifier(
      model, optimizer, x_train, y_train, x_val, y_val, config, rng);
  EXPECT_LT(history.epochs_run, 200u);
  EXPECT_GE(history.best_val_accuracy, 0.9);
}

TEST(Trainer, OnEpochCallbackSeesEveryEpoch) {
  util::Rng rng{52};
  Tensor x_train, x_val;
  std::vector<std::size_t> y_train, y_val;
  make_separable(40, rng, x_train, y_train);
  make_separable(20, rng, x_val, y_val);

  Sequential model;
  model.emplace<Dense>(2, 2, rng);
  Adam optimizer{0.01};

  std::vector<std::size_t> seen;
  TrainConfig config;
  config.epochs = 4;
  config.on_epoch = [&](std::size_t epoch, const EpochStats& stats) {
    seen.push_back(epoch);
    EXPECT_GE(stats.train_accuracy, 0.0);
  };
  train_classifier(model, optimizer, x_train, y_train, x_val, y_val, config,
                   rng);
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(Trainer, HistoryCsvExport) {
  TrainHistory history;
  history.epochs.push_back(EpochStats{0.5, 0.7, 0.65});
  history.epochs.push_back(EpochStats{0.3, 0.9, 0.85});
  const std::string csv = history_to_csv(history);
  EXPECT_NE(csv.find("epoch,train_loss,train_accuracy,val_accuracy"),
            std::string::npos);
  EXPECT_NE(csv.find("1,0.5,0.7,0.65"), std::string::npos);
  EXPECT_NE(csv.find("2,0.3,0.9,0.85"), std::string::npos);
}

}  // namespace
}  // namespace qhdl::nn
