#include "nn/activations.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.hpp"

namespace qhdl::nn {
namespace {

using tensor::Tensor;

TEST(Tanh, ForwardValues) {
  Tanh layer;
  const Tensor out = layer.forward(Tensor::matrix(1, 3, {-1, 0, 1}));
  EXPECT_NEAR(out.at(0, 0), std::tanh(-1.0), 1e-15);
  EXPECT_DOUBLE_EQ(out.at(0, 1), 0.0);
  EXPECT_NEAR(out.at(0, 2), std::tanh(1.0), 1e-15);
}

TEST(Tanh, BackwardUsesOutput) {
  Tanh layer;
  layer.forward(Tensor::matrix(1, 1, {0.5}));
  const Tensor grad = layer.backward(Tensor::matrix(1, 1, {1.0}));
  const double y = std::tanh(0.5);
  EXPECT_NEAR(grad.at(0, 0), 1.0 - y * y, 1e-15);
}

TEST(ReLU, ForwardClampsNegatives) {
  ReLU layer;
  const Tensor out = layer.forward(Tensor::matrix(1, 4, {-2, -0.5, 0, 3}));
  EXPECT_DOUBLE_EQ(out.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(out.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(out.at(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(out.at(0, 3), 3.0);
}

TEST(ReLU, BackwardMasksByInputSign) {
  ReLU layer;
  layer.forward(Tensor::matrix(1, 3, {-1, 0, 2}));
  const Tensor grad = layer.backward(Tensor::matrix(1, 3, {5, 5, 5}));
  EXPECT_DOUBLE_EQ(grad.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(grad.at(0, 1), 0.0);  // gradient at 0 defined as 0
  EXPECT_DOUBLE_EQ(grad.at(0, 2), 5.0);
}

TEST(Sigmoid, ForwardAndBackward) {
  Sigmoid layer;
  const Tensor out = layer.forward(Tensor::matrix(1, 1, {0.0}));
  EXPECT_DOUBLE_EQ(out.at(0, 0), 0.5);
  const Tensor grad = layer.backward(Tensor::matrix(1, 1, {1.0}));
  EXPECT_DOUBLE_EQ(grad.at(0, 0), 0.25);  // y(1-y) at y=0.5
}

TEST(Activations, BackwardBeforeForwardThrows) {
  Tanh tanh_layer;
  ReLU relu_layer;
  Sigmoid sigmoid_layer;
  const Tensor g = Tensor::matrix(1, 1, {1.0});
  EXPECT_THROW(tanh_layer.backward(g), std::logic_error);
  EXPECT_THROW(relu_layer.backward(g), std::logic_error);
  EXPECT_THROW(sigmoid_layer.backward(g), std::logic_error);
}

TEST(SoftmaxRows, RowsSumToOne) {
  const Tensor probs =
      softmax_rows(Tensor::matrix(2, 3, {1, 2, 3, -1, 0, 1}));
  for (std::size_t i = 0; i < 2; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_GT(probs.at(i, j), 0.0);
      row_sum += probs.at(i, j);
    }
    EXPECT_NEAR(row_sum, 1.0, 1e-12);
  }
}

TEST(SoftmaxRows, StableForLargeLogits) {
  const Tensor probs = softmax_rows(Tensor::matrix(1, 2, {1000.0, 1001.0}));
  EXPECT_FALSE(std::isnan(probs.at(0, 0)));
  EXPECT_NEAR(probs.at(0, 0) + probs.at(0, 1), 1.0, 1e-12);
  EXPECT_GT(probs.at(0, 1), probs.at(0, 0));
}

TEST(SoftmaxRows, ShiftInvariance) {
  const Tensor a = softmax_rows(Tensor::matrix(1, 3, {1, 2, 3}));
  const Tensor b = softmax_rows(Tensor::matrix(1, 3, {11, 12, 13}));
  EXPECT_TRUE(tensor::allclose(a, b, 1e-12, 1e-12));
}

TEST(Softmax, ModuleBackwardMatchesJacobian) {
  // For softmax y and upstream g: dx_j = y_j(g_j - Σ g_k y_k).
  Softmax layer;
  const Tensor x = Tensor::matrix(1, 3, {0.2, -0.1, 0.5});
  const Tensor y = layer.forward(x);
  const Tensor g = Tensor::matrix(1, 3, {1.0, 0.0, -1.0});
  const Tensor dx = layer.backward(g);

  double dot = 0.0;
  for (std::size_t j = 0; j < 3; ++j) dot += g.at(0, j) * y.at(0, j);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(dx.at(0, j), y.at(0, j) * (g.at(0, j) - dot), 1e-14);
  }
}

TEST(Activations, InfoReportsWidth) {
  Tanh layer;
  layer.forward(Tensor::matrix(2, 5, std::vector<double>(10, 0.1)));
  EXPECT_EQ(layer.info().kind, "tanh");
  EXPECT_EQ(layer.info().outputs, 5u);
  EXPECT_EQ(layer.info().parameter_count, 0u);
}

}  // namespace
}  // namespace qhdl::nn
