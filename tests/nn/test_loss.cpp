#include "nn/loss.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.hpp"
#include "tensor/ops.hpp"

namespace qhdl::nn {
namespace {

using tensor::Tensor;

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogC) {
  SoftmaxCrossEntropy loss;
  const std::vector<std::size_t> labels{0, 1, 2};
  const LossResult r =
      loss.evaluate(Tensor::matrix(3, 3, std::vector<double>(9, 0.0)), labels);
  EXPECT_NEAR(r.value, std::log(3.0), 1e-12);
}

TEST(SoftmaxCrossEntropy, ConfidentCorrectHasLowLoss) {
  SoftmaxCrossEntropy loss;
  const std::vector<std::size_t> labels{0};
  const LossResult r =
      loss.evaluate(Tensor::matrix(1, 3, {10.0, 0.0, 0.0}), labels);
  EXPECT_LT(r.value, 1e-3);
}

TEST(SoftmaxCrossEntropy, GradientIsSoftmaxMinusOnehotOverBatch) {
  SoftmaxCrossEntropy loss;
  const Tensor logits = Tensor::matrix(2, 3, {1, 2, 3, 0.5, 0.5, 0.5});
  const std::vector<std::size_t> labels{2, 0};
  const LossResult r = loss.evaluate(logits, labels);
  const Tensor probs = softmax_rows(logits);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      const double expected =
          (probs.at(i, j) - (labels[i] == j ? 1.0 : 0.0)) / 2.0;
      EXPECT_NEAR(r.grad.at(i, j), expected, 1e-12);
    }
  }
}

TEST(SoftmaxCrossEntropy, GradientMatchesFiniteDifference) {
  SoftmaxCrossEntropy loss;
  Tensor logits = Tensor::matrix(2, 3, {0.3, -0.7, 1.1, 0.2, 0.9, -0.4});
  const std::vector<std::size_t> labels{1, 2};
  const LossResult r = loss.evaluate(logits, labels);
  const double eps = 1e-6;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const double saved = logits[i];
    logits[i] = saved + eps;
    const double plus = loss.evaluate(logits, labels).value;
    logits[i] = saved - eps;
    const double minus = loss.evaluate(logits, labels).value;
    logits[i] = saved;
    EXPECT_NEAR(r.grad[i], (plus - minus) / (2 * eps), 1e-8);
  }
}

TEST(SoftmaxCrossEntropy, GradientRowsSumToZero) {
  // softmax - onehot always sums to zero per row.
  SoftmaxCrossEntropy loss;
  const LossResult r = loss.evaluate(
      Tensor::matrix(1, 4, {0.1, 0.2, 0.3, 0.4}), std::vector<std::size_t>{3});
  double row_sum = 0.0;
  for (std::size_t j = 0; j < 4; ++j) row_sum += r.grad.at(0, j);
  EXPECT_NEAR(row_sum, 0.0, 1e-14);
}

TEST(SoftmaxCrossEntropy, ValidatesInputs) {
  SoftmaxCrossEntropy loss;
  const Tensor logits = Tensor::matrix(2, 3, std::vector<double>(6, 0.0));
  EXPECT_THROW(loss.evaluate(logits, std::vector<std::size_t>{0}),
               std::invalid_argument);
  EXPECT_THROW(loss.evaluate(logits, std::vector<std::size_t>{0, 5}),
               std::out_of_range);
}

TEST(MeanSquaredError, ValueAndGradient) {
  MeanSquaredError loss;
  const Tensor pred = Tensor::matrix(1, 2, {1.0, 3.0});
  const Tensor target = Tensor::matrix(1, 2, {0.0, 1.0});
  const LossResult r = loss.evaluate(pred, target);
  EXPECT_DOUBLE_EQ(r.value, (1.0 + 4.0) / 2.0);
  EXPECT_DOUBLE_EQ(r.grad.at(0, 0), 2.0 * 1.0 / 2.0);
  EXPECT_DOUBLE_EQ(r.grad.at(0, 1), 2.0 * 2.0 / 2.0);
}

TEST(MeanSquaredError, ZeroAtPerfectPrediction) {
  MeanSquaredError loss;
  const Tensor pred = Tensor::matrix(2, 2, {1, 2, 3, 4});
  const LossResult r = loss.evaluate(pred, pred);
  EXPECT_DOUBLE_EQ(r.value, 0.0);
  EXPECT_DOUBLE_EQ(tensor::norm(r.grad), 0.0);
}

TEST(MeanSquaredError, ShapeMismatchThrows) {
  MeanSquaredError loss;
  EXPECT_THROW(loss.evaluate(Tensor::matrix(1, 2, {1, 2}),
                             Tensor::matrix(2, 1, {1, 2})),
               std::invalid_argument);
}

}  // namespace
}  // namespace qhdl::nn
