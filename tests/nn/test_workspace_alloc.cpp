// Steady-state allocation test for the workspace trainer: after warm-up
// (first train step builds Adam slots and the GEMM packing scratch), a
// train_step / evaluate_accuracy cycle must perform ZERO heap allocations.
//
// Enforced with a counting replacement of the global allocation functions.
// The replacement is binary-wide, so this translation unit only counts —
// behavior is plain malloc/free — and the test asserts on count deltas
// around the measured region.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>

#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "nn/optimizer.hpp"
#include "nn/trainer.hpp"
#include "nn/workspace.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace {

std::atomic<std::uint64_t> g_allocation_count{0};

void* counted_alloc(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc{};
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace qhdl::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(WorkspaceAlloc, TrainStepAndEvalAreAllocationFreeAfterWarmup) {
  constexpr std::size_t kRows = 64, kFeatures = 10, kClasses = 2;
  constexpr std::size_t kBatch = 8;

  util::Rng rng{71};
  Tensor x{Shape{kRows, kFeatures}};
  std::vector<std::size_t> y(kRows);
  for (std::size_t i = 0; i < kRows; ++i) {
    for (std::size_t j = 0; j < kFeatures; ++j) {
      x.at(i, j) = rng.uniform(-1.0, 1.0);
    }
    y[i] = i % kClasses;
  }

  Sequential model;
  model.emplace<Dense>(kFeatures, 10, rng);
  model.emplace<Tanh>();
  model.emplace<Dense>(10, 10, rng);
  model.emplace<ReLU>();
  model.emplace<Dense>(10, kClasses, rng);

  auto workspace = TrainWorkspace::compile(model, kBatch, kRows);
  ASSERT_NE(workspace, nullptr);
  Adam optimizer{1e-3};

  // Full batch and an odd tail batch, both exercised in the steady state.
  std::vector<std::size_t> full_batch(kBatch), tail_batch(kBatch / 2);
  for (std::size_t i = 0; i < full_batch.size(); ++i) full_batch[i] = i;
  for (std::size_t i = 0; i < tail_batch.size(); ++i) {
    tail_batch[i] = kRows - 1 - i;
  }

  // Warm-up: Adam slot tensors, GEMM packing scratch (thread_local), and
  // any one-time lazy state inside the measured call chain.
  for (int i = 0; i < 3; ++i) {
    workspace->train_step(x, y, full_batch, optimizer);
    workspace->train_step(x, y, tail_batch, optimizer);
    workspace->evaluate_accuracy(x, y);
  }

  const std::uint64_t before =
      g_allocation_count.load(std::memory_order_relaxed);
  double sink = 0.0;
  for (int i = 0; i < 50; ++i) {
    sink += workspace->train_step(x, y, full_batch, optimizer);
    sink += workspace->train_step(x, y, tail_batch, optimizer);
    sink += workspace->evaluate_accuracy(x, y);
  }
  const std::uint64_t after =
      g_allocation_count.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0u) << "train loop allocated on the steady state";
  EXPECT_TRUE(std::isfinite(sink));
}

}  // namespace
}  // namespace qhdl::nn
