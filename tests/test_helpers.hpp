// Shared test utilities: finite-difference gradient checking for nn modules
// and quantum circuits, plus random-circuit generation for property tests.
#pragma once

#include <cmath>
#include <functional>
#include <vector>

#include "nn/loss.hpp"
#include "nn/module.hpp"
#include "quantum/circuit.hpp"
#include "quantum/observable.hpp"
#include "util/rng.hpp"

namespace qhdl::testing {

/// Central finite difference of a scalar function at x.
inline double central_difference(const std::function<double(double)>& f,
                                 double x, double eps = 1e-6) {
  return (f(x + eps) - f(x - eps)) / (2.0 * eps);
}

/// Numerically differentiates ⟨obs⟩ w.r.t. every circuit parameter.
inline std::vector<double> numerical_circuit_gradient(
    const quantum::Circuit& circuit, std::vector<double> params,
    const quantum::Observable& obs, double eps = 1e-6) {
  std::vector<double> grad(circuit.parameter_count(), 0.0);
  for (std::size_t i = 0; i < grad.size(); ++i) {
    const double saved = params[i];
    params[i] = saved + eps;
    const double plus = obs.expectation(circuit.execute(params));
    params[i] = saved - eps;
    const double minus = obs.expectation(circuit.execute(params));
    params[i] = saved;
    grad[i] = (plus - minus) / (2.0 * eps);
  }
  return grad;
}

/// Builds a random circuit mixing rotations and entanglers; every
/// parameterized op gets its own parameter index. Returns the circuit and
/// fills `params` with random angles.
inline quantum::Circuit random_circuit(std::size_t qubits, std::size_t ops,
                                       util::Rng& rng,
                                       std::vector<double>& params) {
  using quantum::GateType;
  quantum::Circuit circuit{qubits};
  params.clear();
  const GateType rotations[] = {GateType::RX, GateType::RY, GateType::RZ,
                                GateType::PhaseShift};
  const GateType entanglers[] = {GateType::CNOT, GateType::CZ};
  const GateType controlled_rotations[] = {GateType::CRX, GateType::CRY,
                                           GateType::CRZ};
  const GateType ising_rotations[] = {GateType::RXX, GateType::RYY,
                                      GateType::RZZ};
  for (std::size_t i = 0; i < ops; ++i) {
    const std::size_t choice = rng.index(qubits >= 2 ? 4 : 1);
    if (choice == 0 || qubits < 2) {
      const GateType g = rotations[rng.index(4)];
      circuit.parameterized_gate(g, params.size(), rng.index(qubits));
      params.push_back(rng.uniform(-3.0, 3.0));
    } else if (choice == 1) {
      const std::size_t a = rng.index(qubits);
      std::size_t b = rng.index(qubits);
      while (b == a) b = rng.index(qubits);
      circuit.gate(entanglers[rng.index(2)], a, b);
    } else if (choice == 2) {
      const std::size_t a = rng.index(qubits);
      std::size_t b = rng.index(qubits);
      while (b == a) b = rng.index(qubits);
      circuit.parameterized_gate(controlled_rotations[rng.index(3)],
                                 params.size(), a, b);
      params.push_back(rng.uniform(-3.0, 3.0));
    } else {
      const std::size_t a = rng.index(qubits);
      std::size_t b = rng.index(qubits);
      while (b == a) b = rng.index(qubits);
      circuit.parameterized_gate(ising_rotations[rng.index(3)],
                                 params.size(), a, b);
      params.push_back(rng.uniform(-3.0, 3.0));
    }
  }
  return circuit;
}

/// Numerically checks a module's input gradient on a batch by perturbing
/// each input element; the scalar objective is sum(output * probe) for a
/// fixed random probe. Returns the max abs error vs the module's backward.
double module_input_gradient_error(nn::Module& module,
                                   const tensor::Tensor& input,
                                   util::Rng& rng, double eps = 1e-6);

/// Same check for the module's parameter gradients.
double module_parameter_gradient_error(nn::Module& module,
                                       const tensor::Tensor& input,
                                       util::Rng& rng, double eps = 1e-6);

}  // namespace qhdl::testing
