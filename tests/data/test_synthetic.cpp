#include "data/synthetic.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "data/spiral.hpp"
#include "tensor/ops.hpp"

namespace qhdl::data {
namespace {

TEST(Rings, ClassRadiiSeparate) {
  util::Rng rng{1};
  const Dataset d = make_rings(300, 3, 0.02, rng);
  EXPECT_EQ(d.size(), 300u);
  EXPECT_EQ(d.features(), 2u);
  d.validate();

  // Mean radius per class should be near (c+1)/3.
  std::vector<double> radius_sum(3, 0.0);
  std::vector<std::size_t> counts(3, 0);
  for (std::size_t i = 0; i < d.size(); ++i) {
    radius_sum[d.y[i]] += std::hypot(d.x.at(i, 0), d.x.at(i, 1));
    ++counts[d.y[i]];
  }
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(radius_sum[c] / static_cast<double>(counts[c]),
                static_cast<double>(c + 1) / 3.0, 0.02);
  }
}

TEST(Rings, ValidatesArguments) {
  util::Rng rng{2};
  EXPECT_THROW(make_rings(10, 1, 0.1, rng), std::invalid_argument);
  EXPECT_THROW(make_rings(1, 2, 0.1, rng), std::invalid_argument);
}

TEST(Moons, TwoInterleavedClasses) {
  util::Rng rng{3};
  const Dataset d = make_moons(200, 0.02, rng);
  EXPECT_EQ(d.classes, 2u);
  d.validate();
  const auto counts = class_counts(d);
  EXPECT_EQ(counts[0], 100u);
  EXPECT_EQ(counts[1], 100u);
  // Class 0 rides above y ≈ 0.25, class 1 below, on average.
  double mean_y0 = 0.0, mean_y1 = 0.0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    (d.y[i] == 0 ? mean_y0 : mean_y1) += d.x.at(i, 1);
  }
  EXPECT_GT(mean_y0 / 100.0, mean_y1 / 100.0);
}

TEST(Blobs, CentersOnCircle) {
  util::Rng rng{4};
  const Dataset d = make_blobs(400, 4, 2.0, 0.05, rng);
  d.validate();
  // Per-class centroid should sit near radius 2.
  std::vector<double> cx(4, 0.0), cy(4, 0.0);
  for (std::size_t i = 0; i < d.size(); ++i) {
    cx[d.y[i]] += d.x.at(i, 0);
    cy[d.y[i]] += d.x.at(i, 1);
  }
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_NEAR(std::hypot(cx[c] / 100.0, cy[c] / 100.0), 2.0, 0.05);
  }
}

TEST(Synthetic, ComposesWithFeatureAugmentation) {
  // The spiral pipeline's augmentation works on any 2-feature base dataset.
  util::Rng rng{5};
  const Dataset base = make_rings(90, 3, 0.03, rng);
  const Dataset wide = augment_features(base, 12, 0.2, rng);
  EXPECT_EQ(wide.features(), 12u);
  EXPECT_EQ(wide.y, base.y);
}

TEST(Synthetic, DeterministicPerSeed) {
  util::Rng rng1{6}, rng2{6};
  const Dataset a = make_moons(50, 0.1, rng1);
  const Dataset b = make_moons(50, 0.1, rng2);
  EXPECT_TRUE(tensor::allclose(a.x, b.x, 0, 0));
}

}  // namespace
}  // namespace qhdl::data
