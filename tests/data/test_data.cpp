#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/preprocess.hpp"
#include "data/spiral.hpp"
#include "tensor/ops.hpp"

namespace qhdl::data {
namespace {

TEST(Dataset, ValidateCatchesInconsistencies) {
  Dataset d;
  d.classes = 2;
  d.x = tensor::Tensor{tensor::Shape{3, 2}};
  d.y = {0, 1};  // wrong length
  EXPECT_THROW(d.validate(), std::logic_error);
  d.y = {0, 1, 2};  // label out of range
  EXPECT_THROW(d.validate(), std::logic_error);
  d.y = {0, 1, 1};
  EXPECT_NO_THROW(d.validate());
  d.classes = 0;
  EXPECT_THROW(d.validate(), std::logic_error);
}

TEST(Spiral, NoiseSchedule) {
  EXPECT_DOUBLE_EQ(noise_for_features(10), 0.13);
  EXPECT_DOUBLE_EQ(noise_for_features(110), 0.43);
}

TEST(Spiral, GeneratesRequestedStructure) {
  util::Rng rng{1};
  SpiralConfig config;
  config.points = 1500;
  config.classes = 3;
  const Dataset d = make_spiral(config, 0.1, rng);
  EXPECT_EQ(d.size(), 1500u);
  EXPECT_EQ(d.features(), 2u);
  EXPECT_EQ(d.classes, 3u);
  const auto counts = class_counts(d);
  EXPECT_EQ(counts[0], 500u);
  EXPECT_EQ(counts[1], 500u);
  EXPECT_EQ(counts[2], 500u);
}

TEST(Spiral, PointsBoundedByUnitDisc) {
  util::Rng rng{2};
  SpiralConfig config;
  const Dataset d = make_spiral(config, 0.1, rng);
  for (std::size_t i = 0; i < d.size(); ++i) {
    const double r = std::hypot(d.x.at(i, 0), d.x.at(i, 1));
    EXPECT_LE(r, 1.0 + 1e-9);
  }
}

TEST(Spiral, ValidatesConfig) {
  util::Rng rng{3};
  SpiralConfig config;
  config.classes = 1;
  EXPECT_THROW(make_spiral(config, 0.1, rng), std::invalid_argument);
  config.classes = 5;
  config.points = 3;
  EXPECT_THROW(make_spiral(config, 0.1, rng), std::invalid_argument);
}

TEST(Spiral, AugmentAddsDerivedFeatures) {
  util::Rng rng{4};
  SpiralConfig config;
  config.points = 90;
  const Dataset base = make_spiral(config, 0.1, rng);
  const Dataset wide = augment_features(base, 10, 0.1, rng);
  EXPECT_EQ(wide.features(), 10u);
  EXPECT_EQ(wide.size(), base.size());
  EXPECT_EQ(wide.y, base.y);
  // Base features preserved verbatim.
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_DOUBLE_EQ(wide.x.at(i, 0), base.x.at(i, 0));
    EXPECT_DOUBLE_EQ(wide.x.at(i, 1), base.x.at(i, 1));
  }
}

TEST(Spiral, AugmentValidates) {
  util::Rng rng{5};
  SpiralConfig config;
  config.points = 30;
  const Dataset base = make_spiral(config, 0.1, rng);
  EXPECT_THROW(augment_features(base, 1, 0.1, rng), std::invalid_argument);
}

TEST(Spiral, ComplexityDatasetDeterministicPerSeed) {
  SpiralConfig config;
  config.points = 60;
  const Dataset a = make_complexity_dataset(10, config, 99);
  const Dataset b = make_complexity_dataset(10, config, 99);
  EXPECT_TRUE(tensor::allclose(a.x, b.x, 0, 0));
  EXPECT_EQ(a.y, b.y);
  const Dataset c = make_complexity_dataset(10, config, 100);
  EXPECT_FALSE(tensor::allclose(a.x, c.x, 0, 0));
}

TEST(Spiral, DerivedFeatureNoiseGrowsWithFeatureCount) {
  // Variance of a derived column should grow with the schedule's noise.
  SpiralConfig config;
  config.points = 900;
  const Dataset low = make_complexity_dataset(10, config, 7);
  const Dataset high = make_complexity_dataset(110, config, 7);
  const auto column_variance = [](const Dataset& d, std::size_t col) {
    double mean = 0.0;
    for (std::size_t i = 0; i < d.size(); ++i) mean += d.x.at(i, col);
    mean /= static_cast<double>(d.size());
    double var = 0.0;
    for (std::size_t i = 0; i < d.size(); ++i) {
      const double delta = d.x.at(i, col) - mean;
      var += delta * delta;
    }
    return var / static_cast<double>(d.size());
  };
  // Column 2 is the same transform in both datasets; only noise differs.
  EXPECT_GT(column_variance(high, 2), column_variance(low, 2));
}

TEST(Split, StratifiedProportions) {
  SpiralConfig config;
  config.points = 300;
  const Dataset d = make_complexity_dataset(4, config, 11);
  util::Rng rng{12};
  const TrainValSplit split = stratified_split(d, 0.2, rng);
  EXPECT_EQ(split.val.size(), 60u);
  EXPECT_EQ(split.train.size(), 240u);
  const auto val_counts = class_counts(split.val);
  for (std::size_t c = 0; c < 3; ++c) EXPECT_EQ(val_counts[c], 20u);
}

TEST(Split, FractionValidated) {
  SpiralConfig config;
  config.points = 30;
  const Dataset d = make_complexity_dataset(4, config, 11);
  util::Rng rng{12};
  EXPECT_THROW(stratified_split(d, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(stratified_split(d, 1.0, rng), std::invalid_argument);
}

TEST(Split, NoSampleLeaksBetweenSplits) {
  // Rows in train and val are disjoint as (x, y) records.
  SpiralConfig config;
  config.points = 60;
  const Dataset d = make_complexity_dataset(3, config, 13);
  util::Rng rng{14};
  const TrainValSplit split = stratified_split(d, 0.25, rng);
  EXPECT_EQ(split.train.size() + split.val.size(), d.size());

  std::set<std::pair<double, double>> train_points;
  for (std::size_t i = 0; i < split.train.size(); ++i) {
    train_points.emplace(split.train.x.at(i, 0), split.train.x.at(i, 1));
  }
  for (std::size_t i = 0; i < split.val.size(); ++i) {
    EXPECT_EQ(train_points.count(
                  {split.val.x.at(i, 0), split.val.x.at(i, 1)}),
              0u);
  }
}

TEST(Shuffled, PreservesPairing) {
  SpiralConfig config;
  config.points = 30;
  const Dataset d = make_complexity_dataset(3, config, 15);
  util::Rng rng{16};
  const Dataset s = shuffled(d, rng);
  EXPECT_EQ(s.size(), d.size());
  // Multiset of labels unchanged.
  EXPECT_EQ(class_counts(s), class_counts(d));
}

TEST(Preprocess, StandardizerZeroMeanUnitVariance) {
  util::Rng rng{17};
  tensor::Tensor x{tensor::Shape{200, 3}};
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.normal(5.0, 3.0);
  }
  const Scaler scaler = fit_standardizer(x);
  scaler.apply(x);
  for (std::size_t j = 0; j < 3; ++j) {
    double mean = 0.0;
    for (std::size_t i = 0; i < 200; ++i) mean += x.at(i, j);
    mean /= 200.0;
    EXPECT_NEAR(mean, 0.0, 1e-9);
    double var = 0.0;
    for (std::size_t i = 0; i < 200; ++i) {
      var += (x.at(i, j) - mean) * (x.at(i, j) - mean);
    }
    EXPECT_NEAR(var / 200.0, 1.0, 1e-9);
  }
}

TEST(Preprocess, StandardizerHandlesConstantColumn) {
  tensor::Tensor x{tensor::Shape{5, 1}};
  x.fill(7.0);
  const Scaler scaler = fit_standardizer(x);
  scaler.apply(x);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(x.at(i, 0), 0.0);
}

TEST(Preprocess, MinMaxMapsToRange) {
  tensor::Tensor x = tensor::Tensor::matrix(3, 1, {0.0, 5.0, 10.0});
  const Scaler scaler = fit_minmax(x, -1.0, 1.0);
  scaler.apply(x);
  EXPECT_DOUBLE_EQ(x.at(0, 0), -1.0);
  EXPECT_DOUBLE_EQ(x.at(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(x.at(2, 0), 1.0);
}

TEST(Preprocess, StandardizeSplitUsesTrainStatistics) {
  SpiralConfig config;
  config.points = 120;
  const Dataset d = make_complexity_dataset(4, config, 18);
  util::Rng rng{19};
  TrainValSplit split = stratified_split(d, 0.25, rng);
  const tensor::Tensor val_before = split.val.x;
  standardize_split(split);
  // Train is exactly standardized; val only approximately (train stats).
  double train_mean = 0.0;
  for (std::size_t i = 0; i < split.train.size(); ++i) {
    train_mean += split.train.x.at(i, 0);
  }
  EXPECT_NEAR(train_mean / static_cast<double>(split.train.size()), 0.0,
              1e-9);
  EXPECT_FALSE(tensor::allclose(split.val.x, val_before));
}

TEST(Preprocess, ApplyValidatesWidth) {
  Scaler scaler;
  scaler.offset = {0.0};
  scaler.scale = {1.0};
  tensor::Tensor x{tensor::Shape{2, 2}};
  EXPECT_THROW(scaler.apply(x), std::invalid_argument);
}

}  // namespace
}  // namespace qhdl::data
