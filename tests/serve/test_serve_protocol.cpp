#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "core/config.hpp"
#include "search/worker_protocol.hpp"

namespace qhdl::serve {
namespace {

TEST(ServeProtocol, FamilyNamesRoundTrip) {
  EXPECT_EQ(family_from_name("classical"), search::Family::Classical);
  EXPECT_EQ(family_from_name("hybrid-bel"), search::Family::HybridBel);
  EXPECT_EQ(family_from_name("hybrid-sel"), search::Family::HybridSel);
  for (const search::Family family :
       {search::Family::Classical, search::Family::HybridBel,
        search::Family::HybridSel}) {
    EXPECT_EQ(family_from_name(search::family_name(family)), family);
  }
}

TEST(ServeProtocol, UnknownFamilyNamesValidSpellings) {
  try {
    (void)family_from_name("quantum");
    FAIL() << "unknown family accepted";
  } catch (const std::invalid_argument& e) {
    // The error must teach the caller the valid vocabulary.
    const std::string what = e.what();
    EXPECT_NE(what.find("quantum"), std::string::npos) << what;
    EXPECT_NE(what.find("classical"), std::string::npos) << what;
    EXPECT_NE(what.find("hybrid-bel"), std::string::npos) << what;
    EXPECT_NE(what.find("hybrid-sel"), std::string::npos) << what;
  }
}

TEST(ServeProtocol, ReplyBuildersCarryTypeAndDetail) {
  const util::Json error = make_error("boom");
  EXPECT_EQ(error.at("type").as_string(), "error");
  EXPECT_EQ(error.at("message").as_string(), "boom");

  const util::Json rejected = make_rejected("overloaded");
  EXPECT_EQ(rejected.at("type").as_string(), "rejected");
  EXPECT_EQ(rejected.at("reason").as_string(), "overloaded");

  const util::Json cancelled = make_cancelled("deadline exceeded");
  EXPECT_EQ(cancelled.at("type").as_string(), "cancelled");
  EXPECT_EQ(cancelled.at("reason").as_string(), "deadline exceeded");
}

TEST(ServeProtocol, StudyRequestRoundTripsTheConfig) {
  const search::SweepConfig config = core::test_scale();
  const util::Json request =
      make_study_request(search::Family::HybridBel, config);
  EXPECT_EQ(request.at("type").as_string(), "study");
  EXPECT_EQ(request.at("family").as_string(), "hybrid-bel");
  // The embedded config must hash identically after the wire round-trip:
  // that hash is the result-cache key, so any drift would split the cache.
  const search::SweepConfig back =
      search::sweep_config_from_json(request.at("config"));
  EXPECT_EQ(search::sweep_config_hash(back), search::sweep_config_hash(config));
}

}  // namespace
}  // namespace qhdl::serve
