// Deterministic socket-fault scenarios for the serving layer, plus the
// env-driven ServeFaultMatrix suite the CI fault-injection legs run under
// QHDL_FAULT_SPEC (accept=fail, sock=short/drop/slow). Every scenario pins
// the same invariant: a fault degrades exactly one connection — it is
// counted, the reply (if any) is descriptive, and the server keeps serving.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>

#include "serve/client.hpp"
#include "serve/server.hpp"
#include "util/deadline.hpp"
#include "util/fault_injection.hpp"
#include "util/socket.hpp"

namespace qhdl::serve {
namespace {

util::Json ping_request() {
  util::Json request = util::Json::object();
  request["type"] = "ping";
  return request;
}

bool wait_for_stats(const Server& server,
                    const std::function<bool(const ServerStats&)>& predicate,
                    std::uint64_t budget_ms = 5000) {
  const util::Deadline deadline = util::Deadline::after_ms(budget_ms);
  while (!deadline.expired()) {
    if (predicate(server.stats())) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return predicate(server.stats());
}

/// Disarms around every test so the process-global injector cannot leak
/// between scenarios (or into other suites in this binary).
class ServeFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!util::sockets_supported()) GTEST_SKIP() << "no socket support";
    util::FaultInjector::instance().configure("");
  }
  void TearDown() override {
    util::FaultInjector::instance().configure("");
  }
};

TEST_F(ServeFaultTest, AcceptFailureIsCountedAndRecovered) {
  Server server{ServerConfig{}};
  server.start();
  util::FaultInjector::instance().configure("accept=fail@1");
  // The injected failure closes the freshly accepted connection: this
  // client sees EOF instead of a reply.
  EXPECT_THROW(round_trip("127.0.0.1", server.port(), ping_request(), 5000),
               std::runtime_error);
  EXPECT_TRUE(wait_for_stats(server, [](const ServerStats& s) {
    return s.accept_failures >= 1;
  }));
  // One-shot trigger: the very next connection is served normally.
  EXPECT_EQ(round_trip("127.0.0.1", server.port(), ping_request(), 5000)
                .at("type")
                .as_string(),
            "pong");
}

TEST_F(ServeFaultTest, ShortReadsReassembleAndServe) {
  Server server{ServerConfig{}};
  server.start();
  // Every read on every side delivers one byte at a time; framing must
  // reassemble transparently and the request still succeeds.
  util::FaultInjector::instance().configure("sock=short@1+");
  EXPECT_EQ(round_trip("127.0.0.1", server.port(), ping_request(), 30000)
                .at("type")
                .as_string(),
            "pong");
}

TEST_F(ServeFaultTest, MidFrameDisconnectIsAProtocolErrorNotACrash) {
  Server server{ServerConfig{}};
  server.start();
  // The server's first read is cut to one byte, its second observes a
  // disconnect — a deterministic mid-frame EOF. (Arrivals 1 and 2 are the
  // server's: the client does not read until after its write.)
  util::FaultInjector::instance().configure("sock=short@1;sock=drop@2");
  const util::Json reply =
      round_trip("127.0.0.1", server.port(), ping_request(), 30000);
  EXPECT_EQ(reply.at("type").as_string(), "error");
  EXPECT_NE(reply.at("message").as_string().find("truncated"),
            std::string::npos)
      << reply.dump(2);
  EXPECT_EQ(server.stats().protocol_errors, 1u);
  // And the next connection is healthy.
  util::FaultInjector::instance().configure("");
  EXPECT_EQ(round_trip("127.0.0.1", server.port(), ping_request(), 5000)
                .at("type")
                .as_string(),
            "pong");
}

TEST_F(ServeFaultTest, SlowClientHitsReadTimeoutNotAHang) {
  ServerConfig config;
  config.read_timeout_ms = 200;
  Server server{config};
  server.start();
  // Every read stalls: the server's request read must expire at its
  // deadline (counted), and this client's bounded reply wait throws
  // instead of wedging.
  util::FaultInjector::instance().configure("sock=slow@1+");
  EXPECT_THROW(round_trip("127.0.0.1", server.port(), ping_request(), 800),
               std::runtime_error);
  EXPECT_TRUE(wait_for_stats(server, [](const ServerStats& s) {
    return s.read_timeouts >= 1;
  }));
  util::FaultInjector::instance().configure("");
  EXPECT_EQ(round_trip("127.0.0.1", server.port(), ping_request(), 5000)
                .at("type")
                .as_string(),
            "pong");
}

// --- env-driven matrix (CI: QHDL_FAULT_SPEC x this suite) -----------------

/// One scenario, parameterized entirely by QHDL_FAULT_SPEC. CI runs this
/// suite once per spec in its fault matrix; without a spec it skips. The
/// spec names a socket-site fault; the test asserts the spec-appropriate
/// counter moved and that the server survives to serve a clean request.
TEST(ServeFaultMatrix, ServerSurvivesConfiguredSocketFault) {
  const char* env = std::getenv("QHDL_FAULT_SPEC");
  if (env == nullptr || env[0] == '\0') {
    GTEST_SKIP() << "set QHDL_FAULT_SPEC to an accept=/sock= spec";
  }
  if (!util::sockets_supported()) GTEST_SKIP() << "no socket support";
  const std::string spec = env;

  ServerConfig config;
  config.read_timeout_ms = 300;
  Server server{config};
  server.start();
  util::FaultInjector::instance().configure(spec);

  util::Json request = util::Json::object();
  request["type"] = "ping";
  std::string reply_type = "<none>";
  try {
    reply_type =
        round_trip("127.0.0.1", server.port(), request, 2000)
            .at("type")
            .as_string();
  } catch (const std::exception&) {
    // Transport failure is the expected client-side face of accept/slow
    // faults; the assertions below check the server-side accounting.
  }

  if (spec.find("drop") != std::string::npos) {
    // A mid-stream disconnect surfaces as a descriptive protocol error.
    EXPECT_TRUE(wait_for_stats(server, [](const ServerStats& s) {
      return s.protocol_errors >= 1;
    })) << spec;
  } else if (spec.find("accept=") != std::string::npos) {
    EXPECT_TRUE(wait_for_stats(server, [](const ServerStats& s) {
      return s.accept_failures >= 1;
    })) << spec;
  } else if (spec.find("slow") != std::string::npos) {
    EXPECT_TRUE(wait_for_stats(server, [](const ServerStats& s) {
      return s.read_timeouts >= 1;
    })) << spec;
  } else if (spec.find("short") != std::string::npos) {
    // Short reads only fragment the stream; the request must succeed.
    EXPECT_EQ(reply_type, "pong") << spec;
  }

  // The invariant behind the whole matrix: after the fault clears, the
  // server serves a clean request and stops gracefully.
  util::FaultInjector::instance().configure("");
  EXPECT_EQ(round_trip("127.0.0.1", server.port(), request, 5000)
                .at("type")
                .as_string(),
            "pong")
      << spec;
  server.stop();
}

}  // namespace
}  // namespace qhdl::serve
