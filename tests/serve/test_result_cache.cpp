#include "serve/result_cache.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "core/config.hpp"
#include "search/checkpoint.hpp"

namespace qhdl::serve {
namespace {

namespace fs = std::filesystem;

search::SweepConfig config_with_seed(std::uint64_t seed) {
  search::SweepConfig config = core::test_scale();
  config.search.seed = seed;
  return config;
}

/// A synthetic completed unit so tests can populate entries without
/// training anything.
void record_unit(search::StudyCheckpoint& checkpoint, std::size_t candidate) {
  search::CandidateResult result;
  result.spec = search::ModelSpec::make_classical({2});
  checkpoint.record(search::UnitKey{"classical", 4, 0, candidate}, result);
}

class ResultCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("qhdl_cache_" + std::string(::testing::UnitTest::GetInstance()
                                             ->current_test_info()
                                             ->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

TEST_F(ResultCacheTest, SameConfigHashSharesOneEntry) {
  ResultCache cache{"", 4};
  const search::SweepConfig config = config_with_seed(1);
  auto a = cache.checkpoint_for(config);
  // threads does not affect results, so it must not split the cache.
  search::SweepConfig same = config;
  same.search.threads = 7;
  auto b = cache.checkpoint_for(same);
  EXPECT_EQ(a.get(), b.get());
  // A result-affecting change is a different entry.
  auto c = cache.checkpoint_for(config_with_seed(2));
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST_F(ResultCacheTest, MemoryOnlyEvictionDiscardsResults) {
  ResultCache cache{"", 2};
  auto a = cache.checkpoint_for(config_with_seed(1));
  record_unit(*a, 0);
  (void)cache.checkpoint_for(config_with_seed(2));
  (void)cache.checkpoint_for(config_with_seed(3));  // evicts seed-1 (LRU)
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  auto a2 = cache.checkpoint_for(config_with_seed(1));
  EXPECT_EQ(a2->completed_units(), 0u) << "memory-only eviction must drop";
}

TEST_F(ResultCacheTest, LruTouchProtectsRecentlyUsedEntries) {
  ResultCache cache{"", 2};
  auto a = cache.checkpoint_for(config_with_seed(1));
  record_unit(*a, 0);
  (void)cache.checkpoint_for(config_with_seed(2));
  // Touch seed-1 so seed-2 is now the least recently used...
  (void)cache.checkpoint_for(config_with_seed(1));
  (void)cache.checkpoint_for(config_with_seed(3));
  // ...and seed-1 survived the eviction.
  EXPECT_EQ(cache.checkpoint_for(config_with_seed(1))->completed_units(), 1u);
}

TEST_F(ResultCacheTest, EvictedEntrySpillsToDiskAndReloads) {
  ResultCache cache{dir_, 1};
  const search::SweepConfig config = config_with_seed(1);
  auto a = cache.checkpoint_for(config);
  record_unit(*a, 0);
  record_unit(*a, 1);
  a.reset();
  (void)cache.checkpoint_for(config_with_seed(2));  // evicts + flushes seed-1
  EXPECT_EQ(cache.stats().evictions, 1u);
  // The spill file is on disk, named by the config hash.
  const std::string spill =
      dir_ + "/" + search::sweep_config_hash(config) + ".units.json";
  EXPECT_TRUE(fs::exists(spill));
  // Re-requesting the config restores the full manifest from disk.
  auto restored = cache.checkpoint_for(config);
  EXPECT_EQ(restored->completed_units(), 2u);
  EXPECT_EQ(cache.stats().disk_loads, 1u);
}

TEST_F(ResultCacheTest, CorruptSpillIsDiscardedNotFatal) {
  ResultCache cache{dir_, 1};
  const search::SweepConfig config = config_with_seed(1);
  const std::string spill =
      dir_ + "/" + search::sweep_config_hash(config) + ".units.json";
  fs::create_directories(dir_);
  {
    std::ofstream out(spill);
    out << "this is not a manifest";
  }
  // A corrupt spill must yield a fresh entry, never throw.
  auto checkpoint = cache.checkpoint_for(config);
  EXPECT_EQ(checkpoint->completed_units(), 0u);
  EXPECT_EQ(cache.stats().disk_loads, 0u);
}

TEST_F(ResultCacheTest, StatsAggregateRetiredEntries) {
  ResultCache cache{"", 1};
  auto a = cache.checkpoint_for(config_with_seed(1));
  record_unit(*a, 0);
  // One hit, one miss against entry A.
  EXPECT_TRUE(a->find(search::UnitKey{"classical", 4, 0, 0}).has_value());
  EXPECT_FALSE(a->find(search::UnitKey{"classical", 4, 0, 9}).has_value());
  a.reset();
  (void)cache.checkpoint_for(config_with_seed(2));  // evicts A
  // A's replay counters must survive its eviction.
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.unit_hits, 1u);
  EXPECT_EQ(stats.unit_misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST_F(ResultCacheTest, FlushAllPersistsEveryLiveEntry) {
  ResultCache cache{dir_, 4};
  const search::SweepConfig one = config_with_seed(1);
  const search::SweepConfig two = config_with_seed(2);
  record_unit(*cache.checkpoint_for(one), 0);
  record_unit(*cache.checkpoint_for(two), 0);
  cache.flush_all();
  for (const auto& config : {one, two}) {
    EXPECT_TRUE(fs::exists(dir_ + "/" + search::sweep_config_hash(config) +
                           ".units.json"));
  }
}

}  // namespace
}  // namespace qhdl::serve
