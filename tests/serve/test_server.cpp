// End-to-end serve-layer tests over real TCP connections: admission
// control, the golden cache-determinism property, per-job deadlines,
// client-disconnect cancellation, and graceful drain.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "core/config.hpp"
#include "search/checkpoint.hpp"
#include "search/experiment.hpp"
#include "search/results.hpp"
#include "search/worker_protocol.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "util/deadline.hpp"
#include "util/fault_injection.hpp"
#include "util/socket.hpp"
#include "util/subprocess.hpp"

namespace qhdl::serve {
namespace {

/// Tiny but non-trivial study: 2 candidates x 1 run, threshold unreachable
/// so the unit count is deterministic (2 units).
search::SweepConfig tiny_study() {
  search::SweepConfig config = core::test_scale();
  config.feature_sizes = {4};
  config.search.max_candidates = 2;
  config.search.repetitions = 1;
  config.search.runs_per_model = 1;
  config.search.train.epochs = 2;
  config.search.prune_margin = 0.0;
  config.search.accuracy_threshold = 1.1;
  return config;
}

util::Json sleep_request(int ms) {
  util::Json request = util::Json::object();
  request["type"] = "sleep";
  request["ms"] = ms;
  return request;
}

/// Polls `predicate` against the server's stats until it holds or the
/// deadline expires.
bool wait_for_stats(const Server& server,
                    const std::function<bool(const ServerStats&)>& predicate,
                    std::uint64_t budget_ms = 5000) {
  const util::Deadline deadline = util::Deadline::after_ms(budget_ms);
  while (!deadline.expired()) {
    if (predicate(server.stats())) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return predicate(server.stats());
}

class ServeServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!util::sockets_supported()) GTEST_SKIP() << "no socket support";
    util::FaultInjector::instance().configure("");
  }
  void TearDown() override {
    util::FaultInjector::instance().configure("");
  }
};

TEST_F(ServeServerTest, StartStopIsCleanAndIdempotent) {
  ServerConfig config;
  Server server{config};
  server.start();
  EXPECT_GT(server.port(), 0);
  server.stop();
  server.stop();  // idempotent
  EXPECT_EQ(server.stats().accepted, 0u);
}

TEST_F(ServeServerTest, PingAndStatsAreServedInline) {
  Server server{ServerConfig{}};
  server.start();
  util::Json request = util::Json::object();
  request["type"] = "ping";
  const util::Json pong =
      round_trip("127.0.0.1", server.port(), request, 5000);
  EXPECT_EQ(pong.at("type").as_string(), "pong");
  EXPECT_EQ(static_cast<int>(pong.at("version").as_number()),
            kServeProtocolVersion);

  request["type"] = "stats";
  const util::Json stats =
      round_trip("127.0.0.1", server.port(), request, 5000);
  EXPECT_EQ(stats.at("type").as_string(), "stats");
  for (const char* key :
       {"accepted", "rejected_overloaded", "jobs_completed", "cache"}) {
    EXPECT_TRUE(stats.contains(key)) << key;
  }
  EXPECT_EQ(static_cast<std::size_t>(stats.at("accepted").as_number()), 2u);
}

TEST_F(ServeServerTest, UnknownRequestTypeIsAnErrorNotADisconnect) {
  Server server{ServerConfig{}};
  server.start();
  util::Json request = util::Json::object();
  request["type"] = "frobnicate";
  const util::Json reply =
      round_trip("127.0.0.1", server.port(), request, 5000);
  EXPECT_EQ(reply.at("type").as_string(), "error");
  EXPECT_NE(reply.at("message").as_string().find("frobnicate"),
            std::string::npos);
}

// The golden property of the serving layer: submitting the same study twice
// returns byte-identical results, with the second pass served entirely from
// the content-addressed cache (counters asserted, not assumed) — and both
// passes byte-identical to a direct in-process sweep.
TEST_F(ServeServerTest, GoldenRepeatedStudyIsCacheServedByteIdentical) {
  const search::SweepConfig config = tiny_study();
  const std::string direct =
      search::sweep_to_json(
          search::run_complexity_sweep(search::Family::Classical, config))
          .dump(2);

  Server server{ServerConfig{}};
  server.start();
  const util::Json request =
      make_study_request(search::Family::Classical, config);

  const util::Json first =
      round_trip("127.0.0.1", server.port(), request, 120000);
  ASSERT_EQ(first.at("type").as_string(), "result");
  // Cold pass: every unit trained.
  EXPECT_EQ(first.at("cache").at("unit_hits").as_number(), 0.0);
  EXPECT_EQ(first.at("cache").at("unit_misses").as_number(), 2.0);

  const util::Json second =
      round_trip("127.0.0.1", server.port(), request, 120000);
  ASSERT_EQ(second.at("type").as_string(), "result");
  // Warm pass: 100% of unit lookups served from the cache (>= the 90%
  // acceptance bar), zero retraining.
  EXPECT_EQ(second.at("cache").at("unit_hits").as_number(), 2.0);
  EXPECT_EQ(second.at("cache").at("unit_misses").as_number(), 0.0);

  // Byte-identical across passes AND against the in-process baseline.
  EXPECT_EQ(first.at("sweep").dump(2), direct);
  EXPECT_EQ(second.at("sweep").dump(2), first.at("sweep").dump(2));
  EXPECT_EQ(first.at("config_hash").as_string(),
            search::sweep_config_hash(config));

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.jobs_completed, 2u);
  EXPECT_EQ(stats.cache.unit_hits, 2u);
  EXPECT_EQ(stats.cache.unit_misses, 2u);
}

TEST_F(ServeServerTest, PoolBackedStudyMatchesInProcessBytes) {
  if (!util::subprocess_supported()) GTEST_SKIP() << "no subprocess support";
  const search::SweepConfig config = tiny_study();
  const util::Json request =
      make_study_request(search::Family::Classical, config);

  ServerConfig in_process;
  Server baseline{in_process};
  baseline.start();
  const util::Json direct =
      round_trip("127.0.0.1", baseline.port(), request, 120000);
  baseline.stop();

  ServerConfig pooled;
  pooled.pool_workers = 2;
  Server server{pooled};
  server.start();
  const util::Json reply =
      round_trip("127.0.0.1", server.port(), request, 120000);
  ASSERT_EQ(reply.at("type").as_string(), "result");
  EXPECT_EQ(reply.at("sweep").dump(2), direct.at("sweep").dump(2));
}

TEST_F(ServeServerTest, StudyWithProgressStreamsFramesBeforeTheReply) {
  const search::SweepConfig config = tiny_study();
  const std::string direct =
      search::sweep_to_json(
          search::run_complexity_sweep(search::Family::Classical, config))
          .dump(2);

  Server server{ServerConfig{}};
  server.start();
  util::Json request = make_study_request(search::Family::Classical, config);
  request["progress"] = true;

  std::vector<util::Json> progress;
  const util::Json reply = round_trip(
      "127.0.0.1", server.port(), request,
      [&progress](const util::Json& frame) { progress.push_back(frame); },
      120000);
  ASSERT_EQ(reply.at("type").as_string(), "result");
  // One frame per committed unit window; the tiny study has 2 units and a
  // window of at least 1, so at least one frame must have streamed.
  ASSERT_GE(progress.size(), 1u);
  for (const util::Json& frame : progress) {
    EXPECT_EQ(frame.at("type").as_string(), "progress");
    EXPECT_EQ(frame.at("family").as_string(), "classical");
    EXPECT_EQ(frame.at("features").as_number(), 4.0);
    EXPECT_GE(frame.at("units_done").as_number(), 1.0);
    EXPECT_LE(frame.at("units_done").as_number(),
              frame.at("total_units").as_number());
    EXPECT_TRUE(frame.contains("last_spec"));
  }
  // Progress observation must not perturb the bytes: the streamed study's
  // result is the in-process baseline's.
  EXPECT_EQ(reply.at("sweep").dump(2), direct);
  EXPECT_GE(server.stats().progress_frames, progress.size());

  // A plain request on the same server still gets exactly one frame.
  const util::Json plain = round_trip(
      "127.0.0.1", server.port(),
      make_study_request(search::Family::Classical, config), 120000);
  EXPECT_EQ(plain.at("sweep").dump(2), direct);
}

TEST_F(ServeServerTest, OverloadedQueueShedsDeterministically) {
  ServerConfig config;
  config.executors = 1;
  config.max_queue = 1;
  Server server{config};
  server.start();

  // A occupies the single executor...
  std::thread a([&] {
    const util::Json reply =
        round_trip("127.0.0.1", server.port(), sleep_request(1500), 30000);
    EXPECT_EQ(reply.at("type").as_string(), "result");
  });
  // ...wait until it has actually been dequeued into the executor...
  ASSERT_TRUE(wait_for_stats(server, [](const ServerStats& s) {
    return s.accepted >= 1;
  }));
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  // ...B fills the queue slot...
  std::thread b([&] {
    const util::Json reply =
        round_trip("127.0.0.1", server.port(), sleep_request(1500), 30000);
    EXPECT_EQ(reply.at("type").as_string(), "result");
  });
  ASSERT_TRUE(wait_for_stats(server, [](const ServerStats& s) {
    return s.accepted >= 2;
  }));
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  // ...so C must be shed, immediately, with reason "overloaded".
  const util::Json reply =
      round_trip("127.0.0.1", server.port(), sleep_request(1500), 30000);
  EXPECT_EQ(reply.at("type").as_string(), "rejected");
  EXPECT_EQ(reply.at("reason").as_string(), "overloaded");

  a.join();
  b.join();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.jobs_completed, 2u);
  EXPECT_GE(stats.rejected_overloaded, 1u);
}

TEST_F(ServeServerTest, JobDeadlineCancelsSleep) {
  ServerConfig config;
  config.job_timeout_ms = 200;
  Server server{config};
  server.start();
  const util::Json reply =
      round_trip("127.0.0.1", server.port(), sleep_request(10000), 30000);
  EXPECT_EQ(reply.at("type").as_string(), "cancelled");
  EXPECT_NE(reply.at("reason").as_string().find("deadline"),
            std::string::npos);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.jobs_cancelled, 1u);
  EXPECT_EQ(stats.deadlines_expired, 1u);
}

TEST_F(ServeServerTest, JobDeadlineCancelsStudyCompute) {
  // A heavy study against a tiny budget: the deadline must interrupt real
  // compute at a unit-window boundary, not just the diagnostic sleep job.
  search::SweepConfig config = tiny_study();
  config.search.max_candidates = 8;
  config.search.runs_per_model = 3;
  config.search.train.epochs = 400;
  ServerConfig server_config;
  server_config.job_timeout_ms = 100;
  Server server{server_config};
  server.start();
  const util::Json reply = round_trip(
      "127.0.0.1", server.port(),
      make_study_request(search::Family::Classical, config), 120000);
  EXPECT_EQ(reply.at("type").as_string(), "cancelled");
  EXPECT_EQ(server.stats().deadlines_expired, 1u);
}

TEST_F(ServeServerTest, ClientDisconnectCancelsOrphanedJob) {
  Server server{ServerConfig{}};
  server.start();
  {
    // Submit a long sleep and hang up without reading the reply.
    util::Socket socket = util::connect_tcp("127.0.0.1", server.port());
    ASSERT_TRUE(socket.write_all(
        search::frame_wire(sleep_request(30000).dump())));
    // Give the server a moment to admit the job before the disconnect.
    ASSERT_TRUE(wait_for_stats(server, [](const ServerStats& s) {
      return s.accepted >= 1;
    }));
  }  // socket closes here: the client is gone

  // The orphaned job must be cancelled, not run to completion.
  EXPECT_TRUE(wait_for_stats(server, [](const ServerStats& s) {
    return s.client_disconnects >= 1 && s.jobs_cancelled >= 1;
  }));

  // And the server is still healthy.
  util::Json ping = util::Json::object();
  ping["type"] = "ping";
  EXPECT_EQ(round_trip("127.0.0.1", server.port(), ping, 5000)
                .at("type")
                .as_string(),
            "pong");
}

TEST_F(ServeServerTest, GracefulDrainFinishesInFlightJobs) {
  Server server{ServerConfig{}};
  server.start();
  std::thread in_flight([&] {
    const util::Json reply =
        round_trip("127.0.0.1", server.port(), sleep_request(600), 30000);
    // The job was already executing when the drain began: it must finish
    // and the client must receive its real reply, not a rejection.
    EXPECT_EQ(reply.at("type").as_string(), "result");
  });
  ASSERT_TRUE(wait_for_stats(server, [](const ServerStats& s) {
    return s.accepted >= 1;
  }));
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  server.stop();  // request_drain + join everything
  in_flight.join();
  EXPECT_EQ(server.stats().jobs_completed, 1u);
}

}  // namespace
}  // namespace qhdl::serve
