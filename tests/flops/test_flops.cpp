#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "flops/profiler.hpp"
#include "qnn/hybrid_model.hpp"
#include "search/candidate.hpp"
#include "util/rng.hpp"

namespace qhdl::flops {
namespace {

TEST(CostModel, DenseFormulas) {
  const CostModel cm;
  // Dense(10 -> 6): fwd = 2*10*6 + 6 = 126; bwd = 2*(2*10*6) + 6 = 246.
  EXPECT_DOUBLE_EQ(cm.dense_forward(10, 6), 126.0);
  EXPECT_DOUBLE_EQ(cm.dense_backward(10, 6), 246.0);
}

TEST(CostModel, ActivationAndSoftmax) {
  const CostModel cm;
  EXPECT_DOUBLE_EQ(cm.activation_forward_flops(8), 8.0);
  EXPECT_DOUBLE_EQ(cm.activation_backward_flops(8), 16.0);
  EXPECT_DOUBLE_EQ(cm.softmax_forward_flops(3), 12.0);
  EXPECT_DOUBLE_EQ(cm.softmax_ce_backward_flops(3), 3.0);
}

TEST(CostModel, QuantumGateCosts) {
  const CostModel cm;
  EXPECT_DOUBLE_EQ(cm.amplitudes(3), 8.0);
  // Rotation on 3 qubits: 14*8 + 8 = 120.
  EXPECT_DOUBLE_EQ(cm.rotation_gate_flops(3), 120.0);
  // Entanglers free by default.
  EXPECT_DOUBLE_EQ(cm.entangler_gate_flops(3), 0.0);
  EXPECT_DOUBLE_EQ(cm.expval_z_flops(3), 24.0);
}

TEST(CostModel, QuantumScalesExponentiallyWithQubits) {
  const CostModel cm;
  EXPECT_DOUBLE_EQ(cm.rotation_gate_flops(4) - cm.rotation_setup,
                   2.0 * (cm.rotation_gate_flops(3) - cm.rotation_setup));
}

nn::LayerInfo quantum_info(qnn::AnsatzKind ansatz, std::size_t qubits,
                           std::size_t depth) {
  const auto spec = search::ModelSpec::make_hybrid(qubits, depth, ansatz);
  const auto infos =
      search::spec_layer_infos(spec, 10, 3, qnn::Activation::Tanh);
  return infos[2];  // dense, tanh, quantum, dense
}

TEST(CostModel, EncodingDependsOnlyOnQubits) {
  const CostModel cm;
  const auto a = quantum_info(qnn::AnsatzKind::BasicEntangler, 3, 2);
  const auto b = quantum_info(qnn::AnsatzKind::BasicEntangler, 3, 9);
  EXPECT_DOUBLE_EQ(cm.quantum_encoding_forward(a),
                   cm.quantum_encoding_forward(b));
  EXPECT_DOUBLE_EQ(cm.quantum_encoding_backward(a),
                   cm.quantum_encoding_backward(b));
}

TEST(CostModel, QuantumCircuitGrowsWithDepth) {
  const CostModel cm;
  const auto shallow = quantum_info(qnn::AnsatzKind::BasicEntangler, 3, 1);
  const auto deep = quantum_info(qnn::AnsatzKind::BasicEntangler, 3, 5);
  EXPECT_GT(cm.quantum_circuit_forward(deep),
            cm.quantum_circuit_forward(shallow));
  EXPECT_GT(cm.quantum_circuit_backward(deep),
            cm.quantum_circuit_backward(shallow));
}

TEST(CostModel, SelCostsMoreThanBelAtSameShape) {
  const CostModel cm;
  const auto bel = quantum_info(qnn::AnsatzKind::BasicEntangler, 3, 2);
  const auto sel = quantum_info(qnn::AnsatzKind::StronglyEntangling, 3, 2);
  EXPECT_GT(cm.quantum_circuit_forward(sel), cm.quantum_circuit_forward(bel));
}

TEST(CostModel, UnknownKindThrows) {
  const CostModel cm;
  nn::LayerInfo info;
  info.kind = "mystery";
  EXPECT_THROW(cm.layer_forward(info), std::invalid_argument);
  EXPECT_THROW(cm.layer_backward(info), std::invalid_argument);
}

TEST(CostModel, NonQuantumLayerRejectedByQuantumHelpers) {
  const CostModel cm;
  nn::LayerInfo info;
  info.kind = "dense";
  EXPECT_THROW(cm.quantum_encoding_forward(info), std::invalid_argument);
}

TEST(Profiler, ClassicalModelBreakdown) {
  util::Rng rng{1};
  qnn::ClassicalConfig config;
  config.features = 10;
  config.hidden = {6};
  config.classes = 3;
  const auto model = qnn::build_classical_model(config, rng);
  const FlopsReport report = profile_model(*model);

  // Layers: Dense(10->6), Tanh(6), Dense(6->3).
  ASSERT_EQ(report.layers.size(), 3u);
  const CostModel cm;
  const double expected_forward = cm.dense_forward(10, 6) +
                                  cm.activation_forward_flops(6) +
                                  cm.dense_forward(6, 3);
  EXPECT_DOUBLE_EQ(report.forward_total, expected_forward);
  EXPECT_DOUBLE_EQ(report.quantum, 0.0);
  EXPECT_DOUBLE_EQ(report.encoding, 0.0);
  EXPECT_DOUBLE_EQ(report.classical, report.total());
  EXPECT_EQ(report.parameter_count, 66u + 21u);
}

TEST(Profiler, HybridModelStageSplitSumsToTotal) {
  util::Rng rng{2};
  qnn::HybridConfig config;
  config.features = 10;
  config.qubits = 3;
  config.depth = 2;
  config.ansatz = qnn::AnsatzKind::StronglyEntangling;
  const auto model = qnn::build_hybrid_model(config, rng);
  const FlopsReport report = profile_model(*model);

  EXPECT_GT(report.quantum, 0.0);
  EXPECT_GT(report.encoding, 0.0);
  EXPECT_GT(report.classical, 0.0);
  EXPECT_NEAR(report.classical + report.encoding + report.quantum,
              report.total(), 1e-9);
  EXPECT_NEAR(report.encoding_plus_classical(),
              report.classical + report.encoding, 1e-12);
}

TEST(Profiler, HybridEncodingConstantAcrossFeatureSizes) {
  // Table I property: the Enc column depends only on qubit count.
  const CostModel cm;
  const auto report_at = [&](std::size_t features) {
    const auto spec = search::ModelSpec::make_hybrid(
        3, 2, qnn::AnsatzKind::StronglyEntangling);
    return profile_layers(
        search::spec_layer_infos(spec, features, 3, qnn::Activation::Tanh),
        cm);
  };
  EXPECT_DOUBLE_EQ(report_at(10).encoding, report_at(110).encoding);
  EXPECT_DOUBLE_EQ(report_at(10).quantum, report_at(110).quantum);
  EXPECT_LT(report_at(10).classical, report_at(110).classical);
}

TEST(Profiler, ClassicalStageGrowsLinearlyInFeatures) {
  // CL(F) - CL(F') should equal 6*q*(F - F') with the default cost model
  // (fwd 2Fq + bwd 4Fq), mirroring the slope-18 observation in Table I.
  const CostModel cm;
  const auto classical_at = [&](std::size_t features) {
    const auto spec = search::ModelSpec::make_hybrid(
        3, 2, qnn::AnsatzKind::BasicEntangler);
    return profile_layers(
               search::spec_layer_infos(spec, features, 3,
                                        qnn::Activation::Tanh),
               cm)
        .classical;
  };
  EXPECT_DOUBLE_EQ(classical_at(40) - classical_at(10), 6.0 * 3 * 30);
  EXPECT_DOUBLE_EQ(classical_at(110) - classical_at(80), 6.0 * 3 * 30);
}

TEST(Profiler, CostModelOverridesPropagate) {
  CostModel expensive_cnots;
  expensive_cnots.entangler_per_amplitude = 14.0;
  const auto spec =
      search::ModelSpec::make_hybrid(3, 2, qnn::AnsatzKind::BasicEntangler);
  const auto infos =
      search::spec_layer_infos(spec, 10, 3, qnn::Activation::Tanh);
  const FlopsReport base = profile_layers(infos);
  const FlopsReport heavier = profile_layers(infos, expensive_cnots);
  EXPECT_GT(heavier.quantum, base.quantum);
  EXPECT_DOUBLE_EQ(heavier.classical, base.classical);
}

TEST(DispatchCounts, ClassifyCircuitMatchesMeasuredCounters) {
  // Build a circuit touching every kernel class, classify it statically,
  // then run it un-fused and compare against the measured dispatch
  // counters — the modeled mix must equal what the simulator executed.
  quantum::Circuit circuit{3};
  circuit.parameterized_gate(quantum::GateType::RZ, 0, 0);
  circuit.gate(quantum::GateType::S, 1);
  circuit.parameterized_gate(quantum::GateType::RX, 1, 1);
  circuit.gate(quantum::GateType::PauliX, 2);
  circuit.gate(quantum::GateType::CNOT, 0, 1);
  circuit.gate(quantum::GateType::Hadamard, 2);
  circuit.parameterized_gate(quantum::GateType::CRY, 2, 1, 2);
  circuit.parameterized_gate(quantum::GateType::RZZ, 3, 0, 2);

  const DispatchCounts modeled = classify_circuit(circuit);
  EXPECT_EQ(modeled.diagonal, 2u);       // RZ + S
  EXPECT_EQ(modeled.real_rotation, 1u);  // RX
  EXPECT_EQ(modeled.permutation, 2u);    // PauliX + CNOT
  EXPECT_EQ(modeled.generic, 1u);        // Hadamard
  EXPECT_EQ(modeled.controlled, 1u);     // CRY
  EXPECT_EQ(modeled.double_flip, 1u);    // RZZ
  EXPECT_EQ(modeled.total(), circuit.op_count());

  quantum::kernels::set_force_generic(false);
  quantum::kernels::reset_stats();
  quantum::StateVector state{3};
  const std::vector<double> params{0.3, 0.5, 0.7, 0.9};
  for (const quantum::Op& op : circuit.ops()) {
    quantum::apply_gate(state, op.type, op.angle(params), op.wire0, op.wire1);
  }
  const auto measured = quantum::kernels::stats();
  quantum::kernels::set_force_generic(std::nullopt);
  EXPECT_EQ(measured.diagonal, modeled.diagonal);
  EXPECT_EQ(measured.real_rotation, modeled.real_rotation);
  EXPECT_EQ(measured.permutation, modeled.permutation);
  EXPECT_EQ(measured.controlled, modeled.controlled);
  EXPECT_EQ(measured.double_flip, modeled.double_flip);
  EXPECT_EQ(measured.generic, modeled.generic);

  const std::string table = dispatch_comparison_to_string(modeled, measured);
  EXPECT_NE(table.find("diagonal"), std::string::npos);
  EXPECT_NE(table.find("total"), std::string::npos);
}

TEST(DispatchCounts, ClassifyPlanMatchesMeasuredCompiledCounters) {
  // Classify the compiled fused stream and run it: modeled counts must
  // equal the measured dispatch mix of an ExecutionPlan::run, including the
  // fused-chain and precomputed-pair accounting.
  quantum::Circuit circuit{3};
  circuit.gate(quantum::GateType::Hadamard, 0);       // chain on wire 0...
  circuit.parameterized_gate(quantum::GateType::RY, 0, 0);
  circuit.gate(quantum::GateType::S, 1);              // diagonal chain...
  circuit.gate(quantum::GateType::T, 1);
  circuit.gate(quantum::GateType::CNOT, 1, 2);        // fused pair...
  circuit.gate(quantum::GateType::CZ, 1, 2);
  circuit.parameterized_gate(quantum::GateType::CRY, 1, 0, 2);
  circuit.gate(quantum::GateType::PauliX, 2);         // lone single gate

  const auto plan = quantum::compile_circuit(circuit);
  const DispatchCounts modeled = classify_plan(*plan);
  EXPECT_EQ(modeled.generic, 1u);          // H·RY runtime chain (dense 2x2)
  EXPECT_EQ(modeled.diagonal, 1u);         // S·T precomputed diagonal
  EXPECT_EQ(modeled.two_qubit_dense, 1u);  // CNOT·CZ precomputed 4x4
  EXPECT_EQ(modeled.controlled, 1u);       // CRY
  EXPECT_EQ(modeled.permutation, 1u);      // PauliX
  EXPECT_EQ(modeled.fused, 3u);
  EXPECT_EQ(modeled.fused_gates, 6u);

  quantum::kernels::set_force_generic(false);
  quantum::kernels::reset_stats();
  quantum::StateVector state{3};
  const std::vector<double> params{0.4, -0.8};
  plan->run(state, params);
  const auto measured = quantum::kernels::stats();
  quantum::kernels::set_force_generic(std::nullopt);
  EXPECT_EQ(measured.diagonal, modeled.diagonal);
  EXPECT_EQ(measured.generic, modeled.generic);
  EXPECT_EQ(measured.two_qubit_dense, modeled.two_qubit_dense);
  EXPECT_EQ(measured.controlled, modeled.controlled);
  EXPECT_EQ(measured.permutation, modeled.permutation);
  EXPECT_EQ(measured.fused, modeled.fused);
  EXPECT_EQ(measured.fused_gates, modeled.fused_gates);
  EXPECT_EQ(measured.total_dispatches(), modeled.total());

  const std::string table = dispatch_comparison_to_string(modeled, measured);
  EXPECT_NE(table.find("two_qubit_dense"), std::string::npos);
}

TEST(Profiler, ReportRendering) {
  util::Rng rng{3};
  qnn::HybridConfig config;
  config.features = 6;
  const auto model = qnn::build_hybrid_model(config, rng);
  const std::string text = report_to_string(profile_model(*model));
  EXPECT_NE(text.find("quantum"), std::string::npos);
  EXPECT_NE(text.find("stages:"), std::string::npos);
}

}  // namespace
}  // namespace qhdl::flops
