// Shared gtest entry point for every test binary. It intercepts
// --worker-mode before gtest sees the argv, so any test binary can serve as
// its own worker-pool child process (the pool's default command re-execs
// the current executable — util::current_executable_path()). This is what
// lets the worker-pool tests spawn real supervised OS processes without a
// separate worker binary.
#include <gtest/gtest.h>

#include <cstring>

#include "search/worker_protocol.hpp"

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--worker-mode") == 0) {
      return qhdl::search::worker_main();
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
