// Shared gtest entry point for every test binary. It intercepts
// --worker-mode / --worker-connect before gtest sees the argv, so any test
// binary can serve as its own worker-pool child process (the pool's default
// command re-execs the current executable —
// util::current_executable_path()) or as a remote qhdl_worker daemon for
// the distributed-pool tests. This is what lets those tests spawn real
// supervised OS processes without a separate worker binary.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "search/worker_protocol.hpp"

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--worker-mode") == 0) {
      return qhdl::search::worker_main();
    }
    if (std::strcmp(argv[i], "--worker-connect") == 0 && i + 1 < argc) {
      qhdl::search::RemoteWorkerOptions options;
      if (!qhdl::search::parse_host_port(argv[i + 1], &options.host,
                                         &options.port)) {
        std::fprintf(stderr, "--worker-connect needs host:port\n");
        return 2;
      }
      // Tests want fast turnarounds, not production backoff curves.
      options.connect_timeout_ms = 2000;
      options.reconnect_initial_ms = 50;
      options.reconnect_max_ms = 500;
      for (int j = 1; j < argc; ++j) {
        if (std::strcmp(argv[j], "--worker-slots") == 0 && j + 1 < argc) {
          options.slots = static_cast<std::size_t>(std::atoi(argv[j + 1]));
        } else if (std::strcmp(argv[j], "--worker-max-retries") == 0 &&
                   j + 1 < argc) {
          options.max_reconnect_failures =
              static_cast<std::size_t>(std::atoi(argv[j + 1]));
        } else if (std::strcmp(argv[j], "--worker-persist") == 0) {
          options.persist = true;
        }
      }
      if (options.slots == 0) options.slots = 1;
      return qhdl::search::remote_worker_main(options);
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
