#include <clocale>
#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "util/json.hpp"

namespace qhdl::util {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(Json::parse("-3.5e2").as_number(), -350.0);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, WhitespaceTolerated) {
  const Json j = Json::parse("  {\n\t\"a\" : [ 1 , 2 ] }  ");
  EXPECT_EQ(j.at("a").size(), 2u);
  EXPECT_DOUBLE_EQ(j.at("a").at(1).as_number(), 2.0);
}

TEST(JsonParse, NestedStructures) {
  const Json j = Json::parse(
      R"({"name":"qhdl","nested":{"list":[true,null,{"x":1}]}})");
  EXPECT_EQ(j.at("name").as_string(), "qhdl");
  const Json& list = j.at("nested").at("list");
  EXPECT_TRUE(list.at(0).as_bool());
  EXPECT_TRUE(list.at(1).is_null());
  EXPECT_DOUBLE_EQ(list.at(2).at("x").as_number(), 1.0);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(Json::parse(R"("a\"b\\c\nd\t")").as_string(), "a\"b\\c\nd\t");
  EXPECT_EQ(Json::parse(R"("A")").as_string(), "A");
  EXPECT_EQ(Json::parse(R"("é")").as_string(), "\xc3\xa9");  // é UTF-8
}

TEST(JsonParse, RoundTripThroughDump) {
  Json original = Json::object();
  original["pi"] = Json{3.14159265358979};
  original["label"] = Json{"hybrid \"SEL\""};
  original["flags"] = Json::array_of(std::vector<int>{1, 0, 1});
  const Json reparsed = Json::parse(original.dump(2));
  EXPECT_DOUBLE_EQ(reparsed.at("pi").as_number(), 3.14159265358979);
  EXPECT_EQ(reparsed.at("label").as_string(), "hybrid \"SEL\"");
  EXPECT_EQ(reparsed.at("flags").size(), 3u);
}

TEST(JsonParse, FullDoublePrecisionRoundTrip) {
  const double value = 0.1234567890123456789;
  Json j = Json::object();
  j["v"] = Json{value};
  EXPECT_DOUBLE_EQ(Json::parse(j.dump()).at("v").as_number(), value);
}

TEST(JsonParse, SubnormalsAndSignedZeroRoundTrip) {
  // Regression: std::stod threw out_of_range on subnormals, so a %.17g
  // worker-protocol payload carrying one (a vanishing gradient entry, say)
  // killed the parse. from_chars must accept the full double range.
  const double min_subnormal = std::numeric_limits<double>::denorm_min();
  const double min_normal = std::numeric_limits<double>::min();
  for (const double value :
       {min_subnormal, min_normal / 2.0, min_normal, -min_subnormal}) {
    Json j = Json::object();
    j["v"] = Json{value};
    EXPECT_EQ(Json::parse(j.dump()).at("v").as_number(), value)
        << "value " << value;
  }
  EXPECT_EQ(Json::parse("4.9406564584124654e-324").as_number(),
            min_subnormal);

  const double negative_zero = Json::parse("-0.0").as_number();
  EXPECT_EQ(negative_zero, 0.0);
  EXPECT_TRUE(std::signbit(negative_zero)) << "-0.0 must keep its sign";
}

TEST(JsonParse, NumberParsingIgnoresGlobalLocale) {
  // Regression: std::stod honors the global C locale; under a ','-decimal
  // locale every serialized double failed to parse. from_chars is
  // locale-independent. de_DE may not be installed in minimal containers,
  // so skip (not fail) when setlocale rejects every candidate.
  const char* previous = std::setlocale(LC_NUMERIC, nullptr);
  const std::string saved = previous != nullptr ? previous : "C";
  const char* comma_locale = nullptr;
  for (const char* candidate : {"de_DE.UTF-8", "de_DE", "fr_FR.UTF-8"}) {
    if (std::setlocale(LC_NUMERIC, candidate) != nullptr) {
      comma_locale = candidate;
      break;
    }
  }
  if (comma_locale == nullptr) {
    GTEST_SKIP() << "no comma-decimal locale installed";
  }
  EXPECT_DOUBLE_EQ(Json::parse("3.25").as_number(), 3.25);
  EXPECT_DOUBLE_EQ(Json::parse("[1.5e-3]").at(std::size_t{0}).as_number(),
                   0.0015);
  std::setlocale(LC_NUMERIC, saved.c_str());
}

TEST(JsonParse, OutOfRangeNumbersStillRejected) {
  // Values no finite double can represent keep throwing, as with stod.
  EXPECT_THROW(Json::parse("1e999"), std::invalid_argument);
  EXPECT_THROW(Json::parse("-1e999"), std::invalid_argument);
}

TEST(JsonParse, Errors) {
  EXPECT_THROW(Json::parse(""), std::invalid_argument);
  EXPECT_THROW(Json::parse("{"), std::invalid_argument);
  EXPECT_THROW(Json::parse("[1,]"), std::invalid_argument);
  EXPECT_THROW(Json::parse("tru"), std::invalid_argument);
  EXPECT_THROW(Json::parse("\"unterminated"), std::invalid_argument);
  EXPECT_THROW(Json::parse("{} trailing"), std::invalid_argument);
  EXPECT_THROW(Json::parse("{\"k\" 1}"), std::invalid_argument);
}

TEST(JsonParse, AccessorTypeChecks) {
  const Json j = Json::parse("{\"n\": 1}");
  EXPECT_THROW(j.as_number(), std::logic_error);
  EXPECT_THROW(j.at("n").as_string(), std::logic_error);
  EXPECT_THROW(j.at("missing"), std::out_of_range);
  EXPECT_THROW(j.at(std::size_t{0}), std::logic_error);
}

TEST(JsonParse, MissingFileThrows) {
  EXPECT_THROW(Json::parse_file("/nonexistent/x.json"), std::runtime_error);
}

}  // namespace
}  // namespace qhdl::util
