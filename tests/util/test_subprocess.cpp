#include "util/subprocess.hpp"

#include <gtest/gtest.h>

#if defined(__unix__) || defined(__APPLE__)
#include <poll.h>
#include <unistd.h>
#endif

#include <string>

namespace qhdl::util {
namespace {

#if defined(__unix__) || defined(__APPLE__)

/// Drains the child's (non-blocking) stdout until EOF, polling in between.
std::string read_all(Subprocess& child) {
  std::string out;
  char buffer[1024];
  while (true) {
    const ssize_t n = ::read(child.stdout_fd(), buffer, sizeof(buffer));
    if (n > 0) {
      out.append(buffer, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) break;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      pollfd fd{child.stdout_fd(), POLLIN, 0};
      ::poll(&fd, 1, 1000);
      continue;
    }
    if (errno == EINTR) continue;
    break;
  }
  return out;
}

TEST(Subprocess, EchoesThroughPipes) {
  ASSERT_TRUE(subprocess_supported());
  Subprocess child = Subprocess::spawn({"/bin/cat"});
  EXPECT_GT(child.pid(), 0);
  const std::string message = "hello across the pipe\n";
  EXPECT_TRUE(child.write_all(message.data(), message.size()));
  child.close_stdin();
  EXPECT_EQ(read_all(child), message);
  const ExitStatus status = child.wait();
  EXPECT_TRUE(status.exited);
  EXPECT_EQ(status.exit_code, 0);
  EXPECT_EQ(status.to_string(), "exit 0");
}

TEST(Subprocess, KillHardReportsSignal) {
  Subprocess child = Subprocess::spawn({"/bin/cat"});
  ASSERT_FALSE(child.try_wait().has_value());  // still running
  child.kill_hard();
  const ExitStatus status = child.wait();
  EXPECT_TRUE(status.signaled);
  EXPECT_EQ(status.term_signal, 9);
  EXPECT_EQ(status.to_string(), "killed by signal 9");
}

TEST(Subprocess, SpawnOfMissingBinaryThrows) {
  // The CLOEXEC status pipe makes exec failure synchronous: spawn() itself
  // throws instead of handing back an instantly-dead child.
  EXPECT_THROW(Subprocess::spawn({"/nonexistent/qhdl-no-such-binary"}),
               std::runtime_error);
}

TEST(Subprocess, ExtraEnvOverridesInherited) {
  Subprocess child = Subprocess::spawn(
      {"/bin/sh", "-c", "printf '%s' \"$QHDL_SUBPROCESS_TEST\""},
      {"QHDL_SUBPROCESS_TEST=overridden"});
  child.close_stdin();
  EXPECT_EQ(read_all(child), "overridden");
  EXPECT_TRUE(child.wait().exited);
}

TEST(Subprocess, CurrentExecutablePathIsAbsolute) {
  const std::string self = current_executable_path();
  ASSERT_FALSE(self.empty());
  EXPECT_EQ(self[0], '/');
}

#else

TEST(Subprocess, UnsupportedPlatformReportsSo) {
  EXPECT_FALSE(subprocess_supported());
}

#endif

}  // namespace
}  // namespace qhdl::util
