#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace qhdl::util {
namespace {

Cli make_cli() {
  Cli cli{"prog", "test program"};
  cli.add_flag("verbose", "enable logging");
  cli.add_int("epochs", 100, "training epochs");
  cli.add_double("lr", 0.001, "learning rate");
  cli.add_string("out", "results.csv", "output path");
  return cli;
}

TEST(Cli, DefaultsApply) {
  Cli cli = make_cli();
  const char* argv[] = {"prog"};
  EXPECT_TRUE(cli.parse(1, argv));
  EXPECT_FALSE(cli.flag("verbose"));
  EXPECT_EQ(cli.get_int("epochs"), 100);
  EXPECT_DOUBLE_EQ(cli.get_double("lr"), 0.001);
  EXPECT_EQ(cli.get_string("out"), "results.csv");
}

TEST(Cli, ParsesSeparateValues) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--verbose", "--epochs", "5",
                        "--lr",  "0.5",      "--out",    "x.csv"};
  EXPECT_TRUE(cli.parse(8, argv));
  EXPECT_TRUE(cli.flag("verbose"));
  EXPECT_EQ(cli.get_int("epochs"), 5);
  EXPECT_DOUBLE_EQ(cli.get_double("lr"), 0.5);
  EXPECT_EQ(cli.get_string("out"), "x.csv");
}

TEST(Cli, ParsesEqualsForm) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--epochs=7", "--lr=0.25"};
  EXPECT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.get_int("epochs"), 7);
  EXPECT_DOUBLE_EQ(cli.get_double("lr"), 0.25);
}

TEST(Cli, UnknownOptionThrows) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--bogus"};
  EXPECT_THROW(cli.parse(2, argv), std::invalid_argument);
}

TEST(Cli, MissingValueThrows) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--epochs"};
  EXPECT_THROW(cli.parse(2, argv), std::invalid_argument);
}

TEST(Cli, BadNumberThrows) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--epochs", "abc"};
  EXPECT_THROW(cli.parse(3, argv), std::invalid_argument);
}

TEST(Cli, FlagWithValueThrows) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--verbose=true"};
  EXPECT_THROW(cli.parse(2, argv), std::invalid_argument);
}

TEST(Cli, PositionalArgumentThrows) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "stray"};
  EXPECT_THROW(cli.parse(2, argv), std::invalid_argument);
}

TEST(Cli, HelpReturnsFalse) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, HelpTextListsOptions) {
  Cli cli = make_cli();
  const std::string help = cli.help_text();
  EXPECT_NE(help.find("--verbose"), std::string::npos);
  EXPECT_NE(help.find("--epochs"), std::string::npos);
  EXPECT_NE(help.find("training epochs"), std::string::npos);
}

TEST(Cli, WrongTypeAccessThrows) {
  Cli cli = make_cli();
  const char* argv[] = {"prog"};
  cli.parse(1, argv);
  EXPECT_THROW(cli.get_int("lr"), std::logic_error);
  EXPECT_THROW(cli.flag("epochs"), std::logic_error);
}

}  // namespace
}  // namespace qhdl::util
