#include "util/logging.hpp"

#include <gtest/gtest.h>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include <string>

namespace qhdl::util {
namespace {

TEST(Logging, LevelNamesParse) {
  EXPECT_EQ(log_level_from_name("debug"), LogLevel::Debug);
  EXPECT_EQ(log_level_from_name("INFO"), LogLevel::Info);
  EXPECT_EQ(log_level_from_name("Warn"), LogLevel::Warn);
  EXPECT_EQ(log_level_from_name("warning"), LogLevel::Warn);
  EXPECT_EQ(log_level_from_name("error"), LogLevel::Error);
  EXPECT_EQ(log_level_from_name("silent"), LogLevel::Silent);
  EXPECT_FALSE(log_level_from_name("chatty").has_value());
  EXPECT_FALSE(log_level_from_name("").has_value());
}

TEST(Logging, FormatPrefixesTimestampPidAndLevel) {
  const std::string line = format_log_line(LogLevel::Warn, "disk is full");
  // "[YYYY-MM-DD HH:MM:SS.mmm] [pid N] [WARN ] disk is full"
  ASSERT_GE(line.size(), 26u);
  EXPECT_EQ(line[0], '[');
  EXPECT_EQ(line[5], '-');
  EXPECT_EQ(line[8], '-');
  EXPECT_EQ(line[11], ' ');
  EXPECT_EQ(line[14], ':');
  EXPECT_EQ(line[17], ':');
  EXPECT_EQ(line[20], '.');
  EXPECT_EQ(line[24], ']');
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_NE(line.find("[pid " + std::to_string(::getpid()) + "]"),
            std::string::npos);
#endif
  EXPECT_NE(line.find("[WARN ]"), std::string::npos);
  EXPECT_NE(line.find("disk is full"), std::string::npos);
  // Message comes after the prefix, not inside it.
  EXPECT_GT(line.find("disk is full"), line.find("[WARN ]"));
}

TEST(Logging, FormatDistinguishesLevels) {
  EXPECT_NE(format_log_line(LogLevel::Debug, "x").find("[DEBUG]"),
            std::string::npos);
  EXPECT_NE(format_log_line(LogLevel::Error, "x").find("[ERROR]"),
            std::string::npos);
}

TEST(Logging, SetLogLevelRoundTripsWhenNotEnvPinned) {
  // The test environment does not set QHDL_LOG_LEVEL (CI would document it);
  // skip rather than fight a deliberate pin.
  if (log_level_env_pinned()) {
    GTEST_SKIP() << "QHDL_LOG_LEVEL pins the threshold in this environment";
  }
  const LogLevel before = log_level();
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  set_log_level(before);
}

}  // namespace
}  // namespace qhdl::util
