// Backend registry selection tests (DESIGN.md §13): precedence layers
// (runtime override > QHDL_BACKEND env > deprecated alias flags > build
// default > CPUID auto-detect), unknown/unsupported-backend errors, and the
// deprecated QHDL_FORCE_* alias mapping onto the reference backend.
#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "nn/fastpath.hpp"
#include "quantum/kernels.hpp"
#include "util/backend_registry.hpp"

namespace {

using namespace qhdl;
namespace simd = util::simd;

/// Saves one env var on construction and restores it (set or unset) on
/// destruction, re-resolving the registry so no state leaks across tests.
class EnvScope {
 public:
  explicit EnvScope(const char* name) : name_{name} {
    const char* value = std::getenv(name);
    if (value != nullptr) saved_ = value;
  }
  ~EnvScope() {
    if (saved_.has_value()) {
      ::setenv(name_, saved_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
    simd::set_backend(std::nullopt);
  }

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

TEST(BackendRegistry, ResolutionPrecedenceIsOverrideEnvAliasBuildAuto) {
  const char* source = nullptr;

  // Runtime override beats every other layer.
  EXPECT_EQ(simd::resolve_backend_name("avx2", "generic", "1", "1", "generic",
                                       &source),
            "avx2");
  EXPECT_STREQ(source, "override");

  // Env var beats the aliases and the build default.
  EXPECT_EQ(simd::resolve_backend_name(nullptr, "generic", "1", "1", "avx2",
                                       &source),
            "generic");
  EXPECT_STREQ(source, "env");

  // Either deprecated alias flag maps to the reference backend and beats
  // the build default; "0" and empty mean unset, matching the old flags.
  EXPECT_EQ(simd::resolve_backend_name(nullptr, nullptr, "1", nullptr, "avx2",
                                       &source),
            "reference");
  EXPECT_STREQ(source, "alias");
  EXPECT_EQ(simd::resolve_backend_name(nullptr, nullptr, nullptr, "1", "avx2",
                                       &source),
            "reference");
  EXPECT_STREQ(source, "alias");
  EXPECT_EQ(simd::resolve_backend_name(nullptr, nullptr, "0", "", "avx2",
                                       &source),
            "avx2");
  EXPECT_STREQ(source, "build");

  // Build default applies when nothing stronger is set; empty everywhere
  // means CPUID auto-detection.
  EXPECT_EQ(simd::resolve_backend_name(nullptr, nullptr, nullptr, nullptr,
                                       "generic", &source),
            "generic");
  EXPECT_STREQ(source, "build");
  EXPECT_EQ(simd::resolve_backend_name(nullptr, nullptr, nullptr, nullptr, "",
                                       &source),
            "");
  EXPECT_STREQ(source, "auto");

  // Empty strings are "not set", same as null.
  EXPECT_EQ(
      simd::resolve_backend_name("", "", nullptr, nullptr, "", &source), "");
  EXPECT_STREQ(source, "auto");
}

TEST(BackendRegistry, StandardBackendsAreRegistered) {
  ASSERT_NE(simd::find_backend("generic"), nullptr);
  ASSERT_NE(simd::find_backend("reference"), nullptr);
  EXPECT_FALSE(simd::find_backend("generic")->reference);
  EXPECT_TRUE(simd::find_backend("reference")->reference);
  // generic is the unconditional fallback: always supported, priority 0.
  EXPECT_TRUE(simd::find_backend("generic")->supported());
  EXPECT_EQ(simd::find_backend("generic")->priority, 0);
  // Every KernelOps entry must be populated on every registered backend.
  for (const simd::Backend* backend : simd::backends()) {
    EXPECT_NE(backend->ops.apply_single_qubit, nullptr) << backend->name;
    EXPECT_NE(backend->ops.apply_diagonal, nullptr) << backend->name;
    EXPECT_NE(backend->ops.apply_cnot_pairs, nullptr) << backend->name;
    EXPECT_NE(backend->ops.expval_z, nullptr) << backend->name;
    EXPECT_NE(backend->ops.gemm_micro_4x4, nullptr) << backend->name;
  }
}

TEST(BackendRegistry, UnknownBackendThrowsListingRegisteredNames) {
  try {
    simd::set_backend("definitely-not-a-backend");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("definitely-not-a-backend"), std::string::npos)
        << what;
    EXPECT_NE(what.find("generic"), std::string::npos)
        << "error should list the registered names: " << what;
  }
  // A failed set leaves the previous selection working.
  EXPECT_TRUE(simd::active_backend().supported());
}

TEST(BackendRegistry, UnsupportedBackendRejectedEverywhere) {
  // Inject a fake descriptor whose CPUID gate always fails. Static storage:
  // the registry keeps the pointer for the process lifetime.
  static const simd::Backend kUnsupported{
      "test-unsupported",
      /*priority=*/100000,  // would win auto-detect if support were ignored
      +[] { return false; },
      /*reference=*/false,
      simd::find_backend("generic")->ops,
  };
  simd::register_backend(&kUnsupported);
  ASSERT_NE(simd::find_backend("test-unsupported"), nullptr);

  // Explicit selection of an unsupported backend is an error...
  EXPECT_THROW(simd::set_backend("test-unsupported"), std::invalid_argument);

  // ...and auto-detect skips it despite the huge priority (the graceful
  // fallback path for binaries whose best backend the CPU cannot run).
  simd::set_backend(std::nullopt);
  EXPECT_STRNE(simd::active_backend().name, "test-unsupported");
  EXPECT_TRUE(simd::active_backend().supported());
}

TEST(BackendRegistry, RuntimeOverrideWinsAndClears) {
  simd::set_backend("generic");
  EXPECT_STREQ(simd::active_backend().name, "generic");
  EXPECT_STREQ(simd::active_source(), "override");
  EXPECT_EQ(&simd::ops(), &simd::active_backend().ops);

  simd::set_backend(std::nullopt);
  EXPECT_STRNE(simd::active_source(), "override");
  EXPECT_TRUE(simd::active_backend().supported());
}

TEST(BackendRegistry, EnvSelectionAppliesOnResolution) {
  const EnvScope guard{"QHDL_BACKEND"};
  ::setenv("QHDL_BACKEND", "generic", 1);
  simd::set_backend(std::nullopt);  // clear override, re-read env
  EXPECT_STREQ(simd::active_backend().name, "generic");
  EXPECT_STREQ(simd::active_source(), "env");

  // The runtime override still beats the env var.
  simd::set_backend("reference");
  EXPECT_STREQ(simd::active_backend().name, "reference");
  EXPECT_STREQ(simd::active_source(), "override");
}

TEST(BackendRegistry, UnknownEnvBackendThrowsOnResolution) {
  const EnvScope guard{"QHDL_BACKEND"};
  ::setenv("QHDL_BACKEND", "definitely-not-a-backend", 1);
  try {
    simd::set_backend(std::nullopt);  // forces re-resolution from env
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("definitely-not-a-backend"), std::string::npos)
        << what;
    EXPECT_NE(what.find("env"), std::string::npos)
        << "error should name the deciding layer: " << what;
  }
}

TEST(BackendRegistry, DeprecatedAliasesSelectReferenceBackend) {
  if (std::getenv("QHDL_FORCE_GENERIC_KERNELS") != nullptr ||
      std::getenv("QHDL_FORCE_REFERENCE_NN") != nullptr) {
    GTEST_SKIP() << "legacy force flags already set in this environment";
  }
  const EnvScope backend_guard{"QHDL_BACKEND"};
  const EnvScope generic_guard{"QHDL_FORCE_GENERIC_KERNELS"};
  ::unsetenv("QHDL_BACKEND");
  ::setenv("QHDL_FORCE_GENERIC_KERNELS", "1", 1);
  simd::set_backend(std::nullopt);
  EXPECT_STREQ(simd::active_backend().name, "reference");
  EXPECT_STREQ(simd::active_source(), "alias");
}

TEST(BackendRegistry, ReferenceBackendForcesLegacyReferencePaths) {
  simd::set_backend("reference");
  EXPECT_TRUE(quantum::kernels::force_generic());
  EXPECT_TRUE(quantum::kernels::force_uncompiled());
  EXPECT_TRUE(nn::fastpath::force_reference());

  simd::set_backend("generic");
  if (std::getenv("QHDL_FORCE_GENERIC_KERNELS") == nullptr) {
    EXPECT_FALSE(quantum::kernels::force_generic());
  }
  if (std::getenv("QHDL_FORCE_REFERENCE_NN") == nullptr) {
    EXPECT_FALSE(nn::fastpath::force_reference());
  }
  simd::set_backend(std::nullopt);
}

}  // namespace
