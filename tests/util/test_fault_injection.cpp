#include "util/fault_injection.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace qhdl::util {
namespace {

/// Every test starts disarmed and leaves the injector disarmed, so tests
/// sharing the process-wide singleton cannot poison each other.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::instance().configure(""); }
  void TearDown() override { FaultInjector::instance().configure(""); }
};

TEST_F(FaultInjectionTest, DisarmedInjectorNeverFires) {
  FaultInjector& injector = FaultInjector::instance();
  EXPECT_FALSE(injector.armed());
  for (int i = 0; i < 100; ++i) {
    EXPECT_NO_THROW(injector.on_unit_boundary("unit"));
    EXPECT_NO_THROW(injector.on_io_write("file"));
    EXPECT_FALSE(injector.poison_loss());
  }
  // Disarmed arrivals are not even counted (lock-free fast path).
  EXPECT_EQ(injector.arrivals(FaultSite::Loss), 0u);
}

TEST_F(FaultInjectionTest, CrashFiresAtExactArrival) {
  FaultInjector& injector = FaultInjector::instance();
  injector.configure("unit=crash@3");
  EXPECT_TRUE(injector.armed());
  EXPECT_NO_THROW(injector.on_unit_boundary("u1"));
  EXPECT_NO_THROW(injector.on_unit_boundary("u2"));
  EXPECT_THROW(injector.on_unit_boundary("u3"), InjectedCrash);
  // One-shot trigger: arrival 4 passes.
  EXPECT_NO_THROW(injector.on_unit_boundary("u4"));
  EXPECT_EQ(injector.arrivals(FaultSite::UnitBoundary), 4u);
}

TEST_F(FaultInjectionTest, MultipleArrivalsAndSemicolonEntries) {
  FaultInjector& injector = FaultInjector::instance();
  injector.configure("unit=crash@2,4; io=fail@1");
  EXPECT_NO_THROW(injector.on_unit_boundary("u1"));
  EXPECT_THROW(injector.on_unit_boundary("u2"), InjectedCrash);
  EXPECT_NO_THROW(injector.on_unit_boundary("u3"));
  EXPECT_THROW(injector.on_unit_boundary("u4"), InjectedCrash);
  EXPECT_THROW(injector.on_io_write("f"), std::runtime_error);
  EXPECT_NO_THROW(injector.on_io_write("f"));
}

TEST_F(FaultInjectionTest, OpenEndedTriggerFiresFromArrivalOnward) {
  FaultInjector& injector = FaultInjector::instance();
  injector.configure("loss=nan@3+");
  EXPECT_FALSE(injector.poison_loss());
  EXPECT_FALSE(injector.poison_loss());
  EXPECT_TRUE(injector.poison_loss());
  EXPECT_TRUE(injector.poison_loss());
  EXPECT_TRUE(injector.poison_loss());
}

TEST_F(FaultInjectionTest, ReconfigureResetsCounters) {
  FaultInjector& injector = FaultInjector::instance();
  injector.configure("unit=crash@2");
  EXPECT_NO_THROW(injector.on_unit_boundary("u1"));
  injector.configure("unit=crash@2");
  // The arrival counter restarted, so the next arrival is 1 again.
  EXPECT_NO_THROW(injector.on_unit_boundary("u1"));
  EXPECT_THROW(injector.on_unit_boundary("u2"), InjectedCrash);
  injector.configure("");
  EXPECT_FALSE(injector.armed());
}

TEST_F(FaultInjectionTest, InvalidSpecsThrowAndPreserveState) {
  FaultInjector& injector = FaultInjector::instance();
  injector.configure("unit=crash@5");
  for (const char* bad :
       {"bogus", "unit=explode@1", "disk=fail@1", "unit=crash@0",
        "unit=crash@x", "loss=crash@1", "unit=fail@1", "io=nan@1",
        "unit=crash", "=crash@1"}) {
    EXPECT_THROW(injector.configure(bad), std::invalid_argument) << bad;
  }
  // A rejected spec must not clobber the armed configuration.
  EXPECT_TRUE(injector.armed());
}

TEST_F(FaultInjectionTest, SpecParsingEdgeCases) {
  FaultInjector& injector = FaultInjector::instance();
  // Whitespace-/semicolon-only specs are equivalent to "": disarmed.
  for (const char* empty : {"", "  ", ";", " ; ; "}) {
    EXPECT_NO_THROW(injector.configure(empty)) << "'" << empty << "'";
    EXPECT_FALSE(injector.armed()) << "'" << empty << "'";
  }
  // Unknown sites, malformed counters, and bare fragments are rejected
  // with std::invalid_argument — never silently ignored.
  for (const char* bad :
       {"socket=fail@1",      // unknown site (the real site is "sock")
        "accep=fail@1",       // typo'd site
        "sock=short@",        // missing counter
        "sock=short@1x",      // trailing junk in counter
        "sock=short@-1",      // negative counter
        "sock=short@1++",     // doubled open-ended suffix
        "sock=short@2,",      // dangling comma in the arrival list
        "accept=fail",        // no trigger at all
        "sock=@1",            // empty action
        "@1",                 // no site/action
        "sock short@1"}) {    // missing '='
    EXPECT_THROW(injector.configure(bad), std::invalid_argument) << bad;
  }
}

TEST_F(FaultInjectionTest, SocketSiteActionValidity) {
  FaultInjector& injector = FaultInjector::instance();
  // The socket vocabulary parses...
  EXPECT_NO_THROW(injector.configure("accept=fail@1"));
  EXPECT_NO_THROW(injector.configure("sock=short@1+"));
  EXPECT_NO_THROW(injector.configure("sock=drop@2"));
  EXPECT_NO_THROW(injector.configure("sock=slow@1,3"));
  EXPECT_NO_THROW(injector.configure("sock=short@1;sock=drop@2"));
  // ...but only on the sites it belongs to.
  EXPECT_THROW(injector.configure("accept=short@1"), std::invalid_argument);
  EXPECT_THROW(injector.configure("sock=fail@1"), std::invalid_argument);
  EXPECT_THROW(injector.configure("unit=drop@1"), std::invalid_argument);
  EXPECT_THROW(injector.configure("io=slow@1"), std::invalid_argument);
}

TEST_F(FaultInjectionTest, SocketSitesFireAndCount) {
  FaultInjector& injector = FaultInjector::instance();
  injector.configure("accept=fail@2; sock=short@1;sock=drop@2;sock=slow@3+");
  EXPECT_FALSE(injector.on_socket_accept());
  EXPECT_TRUE(injector.on_socket_accept());
  EXPECT_FALSE(injector.on_socket_accept());  // one-shot
  EXPECT_EQ(injector.arrivals(FaultSite::SocketAccept), 3u);

  EXPECT_EQ(injector.on_socket_read(), SocketFaultMode::ShortRead);
  EXPECT_EQ(injector.on_socket_read(), SocketFaultMode::Disconnect);
  EXPECT_EQ(injector.on_socket_read(), SocketFaultMode::Slow);
  EXPECT_EQ(injector.on_socket_read(), SocketFaultMode::Slow);  // open-ended
  EXPECT_EQ(injector.arrivals(FaultSite::SocketRead), 4u);

  injector.configure("");
  EXPECT_FALSE(injector.on_socket_accept());
  EXPECT_EQ(injector.on_socket_read(), SocketFaultMode::None);
}

TEST_F(FaultInjectionTest, ConnectionSiteActionValidity) {
  FaultInjector& injector = FaultInjector::instance();
  // The connection vocabulary parses...
  EXPECT_NO_THROW(injector.configure("conn=refuse@1"));
  EXPECT_NO_THROW(injector.configure("conn=reset@2"));
  EXPECT_NO_THROW(injector.configure("conn=partition@1,3"));
  EXPECT_NO_THROW(injector.configure("conn=slow@1+"));
  // ...but only on its own site, and only its own actions.
  EXPECT_THROW(injector.configure("conn=nan@1"), std::invalid_argument);
  EXPECT_THROW(injector.configure("conn=crash@1"), std::invalid_argument);
  EXPECT_THROW(injector.configure("unit=refuse@1"), std::invalid_argument);
  EXPECT_THROW(injector.configure("sock=reset@1"), std::invalid_argument);
  EXPECT_THROW(injector.configure("worker=partition@1"),
               std::invalid_argument);
}

TEST_F(FaultInjectionTest, ConnectionSiteFiresAndCounts) {
  FaultInjector& injector = FaultInjector::instance();
  injector.configure("conn=refuse@1;conn=reset@2;conn=partition@3;"
                     "conn=slow@4+");
  // refuse fires only on the connect-attempt helper; the same arrival
  // stream feeds both helpers (one shared site counter).
  EXPECT_TRUE(injector.on_connect_attempt("127.0.0.1:7401"));
  EXPECT_EQ(injector.on_connection("unit a"), ConnFaultMode::Reset);
  EXPECT_EQ(injector.on_connection("unit b"), ConnFaultMode::Partition);
  EXPECT_EQ(injector.on_connection("handshake"), ConnFaultMode::Slow);
  EXPECT_EQ(injector.on_connection("handshake"), ConnFaultMode::Slow);
  EXPECT_EQ(injector.arrivals(FaultSite::Connection), 5u);

  // The cross-helper cases: reset/partition/slow never fire on a connect
  // attempt, refuse never fires on a connection event.
  injector.configure("conn=reset@1;conn=refuse@2");
  EXPECT_FALSE(injector.on_connect_attempt("x"));  // reset: wrong helper
  EXPECT_EQ(injector.on_connection("y"), ConnFaultMode::None);  // refuse

  injector.configure("");
  EXPECT_FALSE(injector.on_connect_attempt("x"));
  EXPECT_EQ(injector.on_connection("y"), ConnFaultMode::None);
}

TEST_F(FaultInjectionTest, InjectedCrashIsNotARuntimeError) {
  // The crash must never be absorbable by ordinary catch(runtime_error)
  // error handling — only a top-level catch(std::exception) or the OS sees
  // it, which is what makes it a faithful stand-in for a real crash.
  FaultInjector& injector = FaultInjector::instance();
  injector.configure("unit=crash@1");
  bool absorbed = false;
  bool crashed = false;
  try {
    try {
      injector.on_unit_boundary("u");
    } catch (const std::runtime_error&) {
      absorbed = true;
    }
  } catch (const InjectedCrash& e) {
    crashed = true;
    EXPECT_NE(std::string(e.what()).find("u"), std::string::npos);
  }
  EXPECT_FALSE(absorbed);
  EXPECT_TRUE(crashed);
}

}  // namespace
}  // namespace qhdl::util
