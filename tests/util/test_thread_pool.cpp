#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace qhdl::util {
namespace {

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool{4};
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(0, n, 4, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, SingleThreadRunsInlineInOrder) {
  ThreadPool pool{4};
  std::vector<std::size_t> order;
  const auto caller = std::this_thread::get_id();
  pool.parallel_for(3, 8, 1, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  EXPECT_EQ(order, (std::vector<std::size_t>{3, 4, 5, 6, 7}));
}

TEST(ThreadPool, EmptyAndReversedRangesAreNoops) {
  ThreadPool pool{2};
  std::atomic<int> calls{0};
  pool.parallel_for(5, 5, 4, [&](std::size_t) { calls.fetch_add(1); });
  pool.parallel_for(7, 3, 4, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool{4};
  EXPECT_THROW(pool.parallel_for(0, 100, 4,
                                 [&](std::size_t i) {
                                   if (i == 37) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, UsableAfterException) {
  ThreadPool pool{4};
  EXPECT_THROW(pool.parallel_for(
                   0, 16, 4,
                   [&](std::size_t) { throw std::runtime_error("boom"); }),
               std::runtime_error);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(0, 100, 4, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPool, ReusedAcrossManyParallelForCalls) {
  // The whole point of the pool: one set of threads services every loop.
  ThreadPool pool{4};
  for (int round = 0; round < 50; ++round) {
    std::vector<double> out(64, 0.0);
    pool.parallel_for(0, out.size(), 4,
                      [&](std::size_t i) { out[i] = static_cast<double>(i); });
    EXPECT_DOUBLE_EQ(std::accumulate(out.begin(), out.end(), 0.0), 2016.0);
  }
}

TEST(ThreadPool, MaxThreadsAboveWorkerCountStillCompletes) {
  ThreadPool pool{2};
  std::vector<std::atomic<int>> hits(256);
  pool.parallel_for(0, hits.size(), 16,
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // Candidate -> training run -> quantum batch all share one pool; the
  // caller of each loop participates, so nesting completes even with every
  // worker busy.
  ThreadPool pool{2};
  std::atomic<std::size_t> total{0};
  pool.parallel_for(0, 4, 4, [&](std::size_t) {
    pool.parallel_for(0, 8, 4, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 32u);
}

TEST(ThreadPool, SharedPoolIsASingletonAndWorks) {
  EXPECT_EQ(&ThreadPool::shared(), &ThreadPool::shared());
  EXPECT_GE(ThreadPool::shared().worker_count(), 1u);
  std::atomic<std::size_t> sum{0};
  parallel_for(0, 10, 4, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 45u);
}

}  // namespace
}  // namespace qhdl::util
