#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace qhdl::util {
namespace {

TEST(Stats, MeanOfKnownSample) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
}

TEST(Stats, MeanOfEmptyThrows) {
  EXPECT_THROW(mean(std::vector<double>{}), std::invalid_argument);
}

TEST(Stats, SampleStddev) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Known sample stddev = sqrt(32/7).
  EXPECT_NEAR(stddev(v), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, StddevOfSingletonIsZero) {
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{5.0}), 0.0);
}

TEST(Stats, StddevOfEmptyThrows) {
  EXPECT_THROW(stddev(std::vector<double>{}), std::invalid_argument);
}

TEST(Stats, SummarizeEmptyIsCountZero) {
  // summarize is the one empty-tolerant aggregate; callers branch on count.
  EXPECT_EQ(summarize(std::vector<double>{}).count, 0u);
}

TEST(Stats, MinMax) {
  const std::vector<double> v{3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min_value(v), -1.0);
  EXPECT_DOUBLE_EQ(max_value(v), 7.0);
  EXPECT_THROW(min_value(std::vector<double>{}), std::invalid_argument);
}

TEST(Stats, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Stats, SummarizeConsistent) {
  const std::vector<double> v{1.0, 3.0, 5.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, 2.0, 1e-12);
}

TEST(Stats, PercentIncreaseMatchesPaperUsage) {
  // Paper headline: classical FLOPs rise 88.5% from F=10 to F=110.
  EXPECT_NEAR(percent_increase(100.0, 188.5), 88.5, 1e-12);
  EXPECT_NEAR(percent_increase(200.0, 100.0), -50.0, 1e-12);
  EXPECT_THROW(percent_increase(0.0, 5.0), std::invalid_argument);
}

TEST(Stats, RunningStatsMatchesBatch) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats rs;
  for (double x : v) rs.add(x);
  EXPECT_EQ(rs.count(), v.size());
  EXPECT_NEAR(rs.mean(), mean(v), 1e-12);
  EXPECT_NEAR(rs.stddev(), stddev(v), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(Stats, RunningStatsEmptyAndSingleton) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  rs.add(3.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 3.0);
  EXPECT_DOUBLE_EQ(rs.stddev(), 0.0);
}

}  // namespace
}  // namespace qhdl::util
