#include <gtest/gtest.h>

#include "util/string_util.hpp"
#include "util/table.hpp"

namespace qhdl::util {
namespace {

TEST(StringUtil, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtil, SplitSingleToken) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("\t\nx\r "), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-", "--"));
}

TEST(StringUtil, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(StringUtil, FormatDoubleTrimsZeros) {
  EXPECT_EQ(format_double(1.5), "1.5");
  EXPECT_EQ(format_double(2.0), "2");
  EXPECT_EQ(format_double(0.125, 3), "0.125");
  EXPECT_EQ(format_double(-3.10, 2), "-3.1");
}

TEST(StringUtil, ToLower) {
  EXPECT_EQ(to_lower("BeL"), "bel");
  EXPECT_EQ(to_lower("SEL123"), "sel123");
}

TEST(Table, RendersAlignedColumns) {
  Table table({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer", "22"});
  const std::string out = table.to_string();
  // Header, rule lines, consistent widths.
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
  EXPECT_NE(out.find("+--------+-------+"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

}  // namespace
}  // namespace qhdl::util
