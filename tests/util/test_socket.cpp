// TCP socket primitives (util/socket.hpp): the connect timeout added for
// the distributed worker fleet, plus the `conn=refuse` injection hook the
// daemon reconnect tests lean on.
#include "util/socket.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "util/deadline.hpp"
#include "util/fault_injection.hpp"

namespace qhdl::util {
namespace {

TEST(SocketConnect, ConnectWithTimeoutSucceedsAgainstLiveListener) {
  if (!sockets_supported()) GTEST_SKIP() << "no socket support";
  ListenSocket listener = ListenSocket::listen_tcp("127.0.0.1", 0);
  Socket client = connect_tcp("127.0.0.1", listener.port(), 2000);
  EXPECT_TRUE(client.valid());
  auto accepted = listener.accept(Deadline::after_ms(2000));
  ASSERT_TRUE(accepted.has_value());
  EXPECT_TRUE(accepted->valid());
  // The fd is usable: a round of bytes makes it through.
  EXPECT_TRUE(client.write_all(std::string("ping")));
}

TEST(SocketConnect, ConnectToClosedPortFailsInsteadOfHanging) {
  if (!sockets_supported()) GTEST_SKIP() << "no socket support";
  // Bind-then-close yields a port that is (very likely) not listening; a
  // refused connect must surface as an exception well inside the timeout,
  // not as a multi-minute OS-default stall.
  std::uint16_t dead_port = 0;
  {
    ListenSocket listener = ListenSocket::listen_tcp("127.0.0.1", 0);
    dead_port = listener.port();
  }
  const std::uint64_t start = monotonic_now_ms();
  EXPECT_THROW(connect_tcp("127.0.0.1", dead_port, 2000),
               std::runtime_error);
  EXPECT_LT(monotonic_now_ms() - start, 2000u);
}

TEST(SocketConnect, InjectedRefusalThrowsThenClears) {
  if (!sockets_supported()) GTEST_SKIP() << "no socket support";
  ListenSocket listener = ListenSocket::listen_tcp("127.0.0.1", 0);
  FaultInjector::instance().configure("conn=refuse@1");
  try {
    (void)connect_tcp("127.0.0.1", listener.port(), 2000);
    FaultInjector::instance().configure("");
    FAIL() << "injected refusal did not throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("injected"), std::string::npos)
        << e.what();
  }
  // The trigger was one-shot: the retry (a reconnecting daemon's second
  // attempt) goes through.
  Socket client = connect_tcp("127.0.0.1", listener.port(), 2000);
  FaultInjector::instance().configure("");
  EXPECT_TRUE(client.valid());
}

}  // namespace
}  // namespace qhdl::util
