#include "util/atomic_file.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/fault_injection.hpp"

namespace qhdl::util {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Fresh scratch directory per test; removed on teardown.
class AtomicFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::instance().configure("");
    dir_ = fs::temp_directory_path() /
           ("qhdl_atomic_file_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    FaultInjector::instance().configure("");
    fs::remove_all(dir_);
  }

  std::size_t entries() const {
    return static_cast<std::size_t>(
        std::distance(fs::directory_iterator(dir_), fs::directory_iterator{}));
  }

  fs::path dir_;
};

TEST_F(AtomicFileTest, WritesContentExactly) {
  const fs::path target = dir_ / "out.json";
  atomic_write_file(target.string(), "{\"a\": 1}\n");
  EXPECT_EQ(read_file(target), "{\"a\": 1}\n");
  // No .tmp staging file may survive a successful write.
  EXPECT_EQ(entries(), 1u);
}

TEST_F(AtomicFileTest, OverwritesExistingFile) {
  const fs::path target = dir_ / "out.csv";
  atomic_write_file(target.string(), "old");
  atomic_write_file(target.string(), "new contents");
  EXPECT_EQ(read_file(target), "new contents");
  EXPECT_EQ(entries(), 1u);
}

TEST_F(AtomicFileTest, MissingDirectoryThrowsDescriptively) {
  const fs::path target = dir_ / "no_such_dir" / "out.json";
  try {
    atomic_write_file(target.string(), "x");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    // The error must name the target so a failed study run is debuggable.
    EXPECT_NE(std::string(e.what()).find("out.json"), std::string::npos)
        << e.what();
  }
}

TEST_F(AtomicFileTest, InjectedIoFailureLeavesTargetIntact) {
  const fs::path target = dir_ / "manifest.json";
  atomic_write_file(target.string(), "previous complete manifest");

  FaultInjector::instance().configure("io=fail@1");
  EXPECT_THROW(atomic_write_file(target.string(), "half-written update"),
               std::runtime_error);
  FaultInjector::instance().configure("");

  // The atomic-rename invariant: the old bytes survive, byte-for-byte, and
  // the aborted staging file is cleaned up.
  EXPECT_EQ(read_file(target), "previous complete manifest");
  EXPECT_EQ(entries(), 1u);

  // And the writer recovers once the fault clears.
  atomic_write_file(target.string(), "next manifest");
  EXPECT_EQ(read_file(target), "next manifest");
}

TEST_F(AtomicFileTest, InjectedDirSyncFailureSurfacesAfterCommit) {
  // The directory-entry fsync happens AFTER the rename: the new content is
  // already committed, but its durability across power loss cannot be
  // proven, so the failure must surface to the caller rather than being
  // swallowed.
  const fs::path target = dir_ / "manifest.json";
  FaultInjector::instance().configure("dir=fail@1");
  try {
    atomic_write_file(target.string(), "committed but maybe not durable");
    FAIL() << "expected std::runtime_error from the dir fsync stage";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("injected directory fsync failure"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("manifest.json"), std::string::npos)
        << e.what();
  }
  FaultInjector::instance().configure("");

  // Unlike an io-stage failure, the rename already happened: the new bytes
  // are in place and no staging file lingers.
  EXPECT_EQ(read_file(target), "committed but maybe not durable");
  EXPECT_EQ(entries(), 1u);

  // Clean writes keep working afterwards.
  atomic_write_file(target.string(), "next");
  EXPECT_EQ(read_file(target), "next");
}

TEST_F(AtomicFileTest, ConcurrentWritersToDistinctFilesDoNotCollide) {
  // The temp-name counter must keep staging files distinct even for the
  // same target basename written twice in a row after a failure.
  const fs::path a = dir_ / "a.json";
  const fs::path b = dir_ / "b.json";
  atomic_write_file(a.string(), "A");
  atomic_write_file(b.string(), "B");
  EXPECT_EQ(read_file(a), "A");
  EXPECT_EQ(read_file(b), "B");
  EXPECT_EQ(entries(), 2u);
}

}  // namespace
}  // namespace qhdl::util
