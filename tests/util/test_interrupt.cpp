#include "util/interrupt.hpp"

#include <gtest/gtest.h>

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace qhdl::util {
namespace {

TEST(Interrupt, CooperativeFlagRoundTrip) {
  clear_interrupt();
  EXPECT_FALSE(interrupt_requested());
  EXPECT_NO_THROW(throw_if_interrupted());
  request_interrupt();
  EXPECT_TRUE(interrupt_requested());
  EXPECT_THROW(throw_if_interrupted(), Interrupted);
  clear_interrupt();
  EXPECT_FALSE(interrupt_requested());
}

#if defined(__unix__) || defined(__APPLE__)

// Signal-delivery semantics need a process of their own: the first SIGINT
// must only set the flag, the second must force an immediate exit with
// status 130 even if the cooperative path is wedged.
TEST(Interrupt, SecondSigintForcesExit130) {
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    install_interrupt_handler();
    ::raise(SIGINT);
    if (!interrupt_requested()) ::_exit(1);  // first signal: flag only
    ::raise(SIGINT);                          // second signal: _exit(130)
    ::_exit(2);                               // must be unreachable
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 130);
}

TEST(Interrupt, RepeatedSigtermStaysCooperative) {
  // Only a second SIGINT escalates; schedulers often send several SIGTERMs
  // and those must keep honoring the save-and-exit path.
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    install_interrupt_handler();
    ::raise(SIGTERM);
    ::raise(SIGTERM);
    ::_exit(interrupt_requested() ? 42 : 1);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 42);
}

#endif

}  // namespace
}  // namespace qhdl::util
