#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

namespace qhdl::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{123}, b{123};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  bool any_difference = false;
  for (int i = 0; i < 16; ++i) {
    if (a.next_u64() != b.next_u64()) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 3.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 3.5);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng{99};
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng{5};
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalWithParameters) {
  Rng rng{5};
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, IndexStaysInBounds) {
  Rng rng{3};
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.index(17), 17u);
  }
}

TEST(Rng, IndexCoversAllValues) {
  Rng rng{3};
  std::set<std::size_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.index(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, IndexZeroThrows) {
  Rng rng{3};
  EXPECT_THROW(rng.index(0), std::invalid_argument);
}

TEST(Rng, IntegerInclusiveRange) {
  Rng rng{11};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.integer(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, IntegerBadRangeThrows) {
  Rng rng{11};
  EXPECT_THROW(rng.integer(5, 4), std::invalid_argument);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng{17};
  std::vector<int> values(50);
  std::iota(values.begin(), values.end(), 0);
  auto shuffled = values;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, values);  // astronomically unlikely to match
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(Rng, ShuffleSingleAndEmptyAreNoOps) {
  Rng rng{17};
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.shuffle(one);
  EXPECT_EQ(one[0], 42);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent{21};
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  // Children differ from each other and from the parent's continuation.
  EXPECT_NE(child1.next_u64(), child2.next_u64());
}

TEST(Rng, SplitIsDeterministic) {
  Rng a{21}, b{21};
  Rng ca = a.split();
  Rng cb = b.split();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(ca.next_u64(), cb.next_u64());
}

TEST(Rng, VectorHelpers) {
  Rng rng{31};
  const auto normals = rng.normal_vector(100);
  EXPECT_EQ(normals.size(), 100u);
  const auto uniforms = rng.uniform_vector(50, 2.0, 3.0);
  EXPECT_EQ(uniforms.size(), 50u);
  for (double u : uniforms) {
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
  }
}

}  // namespace
}  // namespace qhdl::util
