#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace qhdl::util {
namespace {

TEST(Csv, HeaderAndRows) {
  CsvWriter csv({"a", "b"});
  csv.add_row({"1", "2"});
  csv.add_row({"x", "y"});
  EXPECT_EQ(csv.to_string(), "a,b\n1,2\nx,y\n");
  EXPECT_EQ(csv.row_count(), 2u);
}

TEST(Csv, RowWidthMismatchThrows) {
  CsvWriter csv({"a", "b"});
  EXPECT_THROW(csv.add_row({"1"}), std::invalid_argument);
  EXPECT_THROW(csv.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(Csv, EmptyHeaderThrows) {
  EXPECT_THROW(CsvWriter({}), std::invalid_argument);
}

TEST(Csv, QuotesFieldsWithSpecials) {
  CsvWriter csv({"value"});
  csv.add_row({"has,comma"});
  csv.add_row({"has\"quote"});
  csv.add_row({"has\nnewline"});
  EXPECT_EQ(csv.to_string(),
            "value\n\"has,comma\"\n\"has\"\"quote\"\n\"has\nnewline\"\n");
}

TEST(Csv, NumericRowFormatting) {
  CsvWriter csv({"x", "y"});
  csv.add_row_values({1.5, 2.0});
  EXPECT_EQ(csv.to_string(), "x,y\n1.5,2\n");
}

TEST(Csv, ParseRoundTrip) {
  CsvWriter csv({"a", "b"});
  csv.add_row({"plain", "with,comma"});
  csv.add_row({"with\"quote", "with\nnewline"});
  const CsvDocument doc = parse_csv(csv.to_string());
  ASSERT_EQ(doc.header.size(), 2u);
  EXPECT_EQ(doc.header[0], "a");
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[0][1], "with,comma");
  EXPECT_EQ(doc.rows[1][0], "with\"quote");
  EXPECT_EQ(doc.rows[1][1], "with\nnewline");
}

TEST(Csv, ParseToleratesCrlf) {
  const CsvDocument doc = parse_csv("a,b\r\n1,2\r\n");
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][0], "1");
}

TEST(Csv, ParseEmptyFields) {
  const CsvDocument doc = parse_csv("a,b,c\n,,\n");
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0].size(), 3u);
  EXPECT_EQ(doc.rows[0][0], "");
}

TEST(Csv, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "qhdl_csv_test.csv").string();
  CsvWriter csv({"k", "v"});
  csv.add_row({"alpha", "1"});
  csv.write_file(path);
  const CsvDocument doc = read_csv_file(path);
  EXPECT_EQ(doc.rows[0][0], "alpha");
  std::remove(path.c_str());
}

TEST(Csv, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/path.csv"), std::runtime_error);
}

}  // namespace
}  // namespace qhdl::util
