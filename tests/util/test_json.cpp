#include "util/json.hpp"

#include <gtest/gtest.h>

namespace qhdl::util {
namespace {

TEST(Json, Scalars) {
  EXPECT_EQ(Json{}.dump(), "null");
  EXPECT_EQ(Json{true}.dump(), "true");
  EXPECT_EQ(Json{false}.dump(), "false");
  EXPECT_EQ(Json{42}.dump(), "42");
  EXPECT_EQ(Json{-3.5}.dump(), "-3.5");
  EXPECT_EQ(Json{"hi"}.dump(), "\"hi\"");
}

TEST(Json, IntegralNumbersPrintWithoutDecimals) {
  EXPECT_EQ(Json{1000000.0}.dump(), "1000000");
  EXPECT_EQ(Json{std::size_t{155}}.dump(), "155");
}

TEST(Json, NonFiniteBecomesNull) {
  EXPECT_EQ(Json{std::numeric_limits<double>::infinity()}.dump(), "null");
  EXPECT_EQ(Json{std::numeric_limits<double>::quiet_NaN()}.dump(), "null");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json{"a\"b\\c\nd"}.dump(), "\"a\\\"b\\\\c\\nd\"");
}

TEST(Json, ArrayCompact) {
  Json a = Json::array();
  a.push_back(Json{1});
  a.push_back(Json{"two"});
  EXPECT_EQ(a.dump(), "[1,\"two\"]");
  EXPECT_EQ(a.size(), 2u);
}

TEST(Json, ObjectSortedKeys) {
  Json o = Json::object();
  o["zebra"] = Json{1};
  o["apple"] = Json{2};
  EXPECT_EQ(o.dump(), "{\"apple\":2,\"zebra\":1}");
  EXPECT_TRUE(o.contains("apple"));
  EXPECT_FALSE(o.contains("missing"));
}

TEST(Json, NestedPrettyPrint) {
  Json o = Json::object();
  o["list"] = Json::array_of(std::vector<int>{1, 2});
  const std::string pretty = o.dump(2);
  EXPECT_NE(pretty.find("{\n  \"list\": [\n    1,\n    2\n  ]\n}"),
            std::string::npos);
}

TEST(Json, AutoVivifyObject) {
  Json j;  // starts null
  j["key"] = Json{"value"};
  EXPECT_EQ(j.dump(), "{\"key\":\"value\"}");
}

TEST(Json, TypeErrors) {
  Json number{1};
  EXPECT_THROW(number.push_back(Json{2}), std::logic_error);
  EXPECT_THROW(number.size(), std::logic_error);
  Json arr = Json::array();
  EXPECT_THROW(arr["k"], std::logic_error);
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(Json::array().dump(2), "[]");
  EXPECT_EQ(Json::object().dump(2), "{}");
}

}  // namespace
}  // namespace qhdl::util
