#include "test_helpers.hpp"

#include <algorithm>

#include "tensor/ops.hpp"

namespace qhdl::testing {

namespace {

/// Scalar objective L = Σ output ⊙ probe for gradient checking.
double objective(nn::Module& module, const tensor::Tensor& input,
                 const tensor::Tensor& probe) {
  const tensor::Tensor out = module.forward(input);
  return tensor::sum(tensor::multiply(out, probe));
}

tensor::Tensor make_probe(nn::Module& module, const tensor::Tensor& input,
                          util::Rng& rng) {
  const tensor::Tensor out = module.forward(input);
  tensor::Tensor probe{out.shape()};
  for (std::size_t i = 0; i < probe.size(); ++i) {
    probe[i] = rng.uniform(-1.0, 1.0);
  }
  return probe;
}

}  // namespace

double module_input_gradient_error(nn::Module& module,
                                   const tensor::Tensor& input,
                                   util::Rng& rng, double eps) {
  const tensor::Tensor probe = make_probe(module, input, rng);

  // Analytic: backward with dL/d(out) = probe.
  module.zero_grad();
  module.forward(input);
  const tensor::Tensor analytic = module.backward(probe);

  double worst = 0.0;
  tensor::Tensor perturbed = input;
  for (std::size_t i = 0; i < input.size(); ++i) {
    const double saved = perturbed[i];
    perturbed[i] = saved + eps;
    const double plus = objective(module, perturbed, probe);
    perturbed[i] = saved - eps;
    const double minus = objective(module, perturbed, probe);
    perturbed[i] = saved;
    const double numeric = (plus - minus) / (2.0 * eps);
    worst = std::max(worst, std::abs(numeric - analytic[i]));
  }
  return worst;
}

double module_parameter_gradient_error(nn::Module& module,
                                       const tensor::Tensor& input,
                                       util::Rng& rng, double eps) {
  const tensor::Tensor probe = make_probe(module, input, rng);

  module.zero_grad();
  module.forward(input);
  module.backward(probe);

  double worst = 0.0;
  for (nn::Parameter* param : module.parameters()) {
    for (std::size_t i = 0; i < param->value.size(); ++i) {
      const double saved = param->value[i];
      param->value[i] = saved + eps;
      const double plus = objective(module, input, probe);
      param->value[i] = saved - eps;
      const double minus = objective(module, input, probe);
      param->value[i] = saved;
      const double numeric = (plus - minus) / (2.0 * eps);
      worst = std::max(worst, std::abs(numeric - param->grad[i]));
    }
  }
  return worst;
}

}  // namespace qhdl::testing
