#include "core/effective_dimension.hpp"

#include <gtest/gtest.h>

#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "nn/fisher.hpp"
#include "nn/sequential.hpp"
#include "tensor/init.hpp"
#include "tensor/linalg.hpp"
#include "tensor/ops.hpp"

namespace qhdl::core {
namespace {

using tensor::Shape;
using tensor::Tensor;

Tensor random_batch(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  util::Rng rng{seed};
  return tensor::uniform(Shape{rows, cols}, -1.0, 1.0, rng);
}

TEST(Fisher, FlattenGradientCountsAndOrder) {
  util::Rng rng{1};
  nn::Sequential model;
  model.emplace<nn::Dense>(3, 2, rng);
  model.emplace<nn::Dense>(2, 2, rng);
  EXPECT_EQ(nn::flat_parameter_count(model), (3u * 2 + 2) + (2u * 2 + 2));
  model.zero_grad();
  const Tensor flat = nn::flatten_parameter_gradients(model);
  EXPECT_EQ(flat.size(), nn::flat_parameter_count(model));
}

TEST(Fisher, MatrixIsSymmetricPsd) {
  util::Rng rng{2};
  nn::Sequential model;
  model.emplace<nn::Dense>(4, 3, rng);
  const Tensor x = random_batch(10, 4, 3);
  const Tensor fisher = nn::fisher_information(model, x, 3);
  EXPECT_EQ(fisher.rows(), nn::flat_parameter_count(model));
  EXPECT_LT(tensor::symmetry_error(fisher), 1e-12);
  EXPECT_NO_THROW(tensor::cholesky(fisher, 1e-9));
  EXPECT_GT(tensor::trace(fisher), 0.0);
}

TEST(Fisher, ValidatesInputs) {
  util::Rng rng{3};
  nn::Sequential model;
  model.emplace<nn::Dense>(4, 3, rng);
  EXPECT_THROW(nn::fisher_information(model, Tensor{Shape{0, 4}}, 3),
               std::invalid_argument);
  EXPECT_THROW(nn::fisher_information(model, random_batch(4, 4, 1), 1),
               std::invalid_argument);
  // Model outputs 3 classes but 4 requested.
  EXPECT_THROW(nn::fisher_information(model, random_batch(4, 4, 1), 4),
               std::invalid_argument);
}

TEST(Fisher, ScoreGradientExpectationIsZero) {
  // E_{y~p}[∇ log p(y|x)] = 0 — verify per sample by summing weighted grads.
  util::Rng rng{4};
  nn::Sequential model;
  model.emplace<nn::Dense>(3, 3, rng);
  const Tensor x = random_batch(1, 3, 5);

  const Tensor logits = model.forward(x);
  const Tensor probs = nn::softmax_rows(logits);
  Tensor weighted_sum{Shape{nn::flat_parameter_count(model)}};
  for (std::size_t y = 0; y < 3; ++y) {
    Tensor upstream{Shape{1, 3}};
    for (std::size_t c = 0; c < 3; ++c) {
      upstream.at(0, c) = (c == y ? 1.0 : 0.0) - probs.at(0, c);
    }
    model.zero_grad();
    model.forward(x);
    model.backward(upstream);
    const Tensor grad = nn::flatten_parameter_gradients(model);
    for (std::size_t i = 0; i < grad.size(); ++i) {
      weighted_sum[i] += probs.at(0, y) * grad[i];
    }
  }
  EXPECT_LT(tensor::norm(weighted_sum), 1e-12);
}

TEST(EffectiveDimension, BetweenZeroAndParameterCount) {
  const auto spec = search::ModelSpec::make_classical({4});
  EffectiveDimensionConfig config;
  config.parameter_samples = 4;
  config.data_samples = 16;
  const auto result =
      effective_dimension(spec, random_batch(16, 5, 6), 3, config);
  EXPECT_GT(result.effective_dimension, 0.0);
  EXPECT_LE(result.effective_dimension,
            static_cast<double>(result.parameter_count) + 1e-9);
  EXPECT_GT(result.normalized, 0.0);
  EXPECT_LE(result.normalized, 1.0 + 1e-9);
  EXPECT_GT(result.mean_fisher_trace, 0.0);
}

TEST(EffectiveDimension, GrowsWithDatasetSize) {
  // d_eff(γ, n) is non-decreasing in n for fixed Fisher spectra.
  const auto spec = search::ModelSpec::make_classical({4});
  const Tensor x = random_batch(16, 5, 7);
  EffectiveDimensionConfig config;
  config.parameter_samples = 4;
  config.dataset_size = 100;
  const auto small = effective_dimension(spec, x, 3, config);
  config.dataset_size = 100000;
  const auto large = effective_dimension(spec, x, 3, config);
  EXPECT_GT(large.effective_dimension, small.effective_dimension * 0.9);
}

TEST(EffectiveDimension, WorksForHybridModels) {
  const auto spec =
      search::ModelSpec::make_hybrid(2, 1,
                                     qnn::AnsatzKind::StronglyEntangling);
  EffectiveDimensionConfig config;
  config.parameter_samples = 3;
  config.data_samples = 8;
  const auto result =
      effective_dimension(spec, random_batch(8, 4, 8), 3, config);
  EXPECT_GT(result.effective_dimension, 0.0);
  EXPECT_LE(result.normalized, 1.0 + 1e-9);
}

TEST(EffectiveDimension, ValidatesConfig) {
  const auto spec = search::ModelSpec::make_classical({2});
  const Tensor x = random_batch(4, 3, 9);
  EffectiveDimensionConfig config;
  config.parameter_samples = 0;
  EXPECT_THROW(effective_dimension(spec, x, 3, config),
               std::invalid_argument);
  config.parameter_samples = 2;
  config.dataset_size = 2;
  EXPECT_THROW(effective_dimension(spec, x, 3, config),
               std::invalid_argument);
}

}  // namespace
}  // namespace qhdl::core
