#include "core/report.hpp"

#include <gtest/gtest.h>

#include "core/config.hpp"

namespace qhdl::core {
namespace {

StudyResult tiny_result() {
  StudyResult result;
  const auto add_level = [](search::SweepResult& sweep, std::size_t features,
                            search::ModelSpec spec, double flops,
                            std::size_t params) {
    search::LevelResult level;
    level.features = features;
    search::SearchOutcome outcome;
    search::CandidateResult winner;
    winner.spec = std::move(spec);
    winner.flops = flops;
    winner.parameter_count = params;
    winner.avg_best_val_accuracy = 0.91;
    outcome.winner = winner;
    level.search.repetitions.push_back(outcome);
    level.search.successful_repetitions = 1;
    level.search.mean_winner_flops = flops;
    level.search.mean_winner_parameters = static_cast<double>(params);
    level.search.smallest_winner = winner;
    sweep.levels.push_back(level);
  };

  result.classical.family = search::Family::Classical;
  add_level(result.classical, 10, search::ModelSpec::make_classical({2}),
            100, 30);
  add_level(result.classical, 110, search::ModelSpec::make_classical({8}),
            900, 200);

  result.hybrid_sel.family = search::Family::HybridSel;
  add_level(result.hybrid_sel, 10,
            search::ModelSpec::make_hybrid(
                3, 2, qnn::AnsatzKind::StronglyEntangling),
            5000, 60);
  add_level(result.hybrid_sel, 110,
            search::ModelSpec::make_hybrid(
                3, 2, qnn::AnsatzKind::StronglyEntangling),
            7000, 360);
  result.hybrid_bel.family = search::Family::HybridBel;

  result.growth.push_back(analyze_growth(result.classical));
  result.growth.push_back(analyze_growth(result.hybrid_sel));
  result.ablation = run_ablation(
      {{search::HybridSpec{3, 2, qnn::AnsatzKind::StronglyEntangling}, 10}},
      3, flops::CostModel{});
  return result;
}

TEST(StudyReport, ContainsAllSections) {
  const StudyResult result = tiny_result();
  const std::string report =
      study_report_markdown(result, core::bench_scale());

  EXPECT_NE(report.find("# HQNN complexity-scaling study"),
            std::string::npos);
  EXPECT_NE(report.find("## Classical winners (Fig. 6)"), std::string::npos);
  EXPECT_NE(report.find("## Hybrid SEL winners (Fig. 8)"),
            std::string::npos);
  EXPECT_NE(report.find("## Growth comparison (Fig. 10)"),
            std::string::npos);
  EXPECT_NE(report.find("SEL(q=3,d=2)"), std::string::npos);
  // Paper reference values are embedded for side-by-side reading.
  EXPECT_NE(report.find("53.1%"), std::string::npos);
  EXPECT_NE(report.find("88.5%"), std::string::npos);
  // Growth measured: classical 100 -> 900 = +800%.
  EXPECT_NE(report.find("800%"), std::string::npos);
  // Families without winners degrade gracefully.
  EXPECT_NE(report.find("| hybrid BEL | n/a |"), std::string::npos);
  // Ablation table present.
  EXPECT_NE(report.find("Table I"), std::string::npos);
  EXPECT_NE(report.find("10/(3,2)"), std::string::npos);
}

TEST(StudyReport, HandlesEmptyAblation) {
  StudyResult result = tiny_result();
  result.ablation.clear();
  const std::string report =
      study_report_markdown(result, core::bench_scale());
  EXPECT_NE(report.find("ablation unavailable"), std::string::npos);
}

}  // namespace
}  // namespace qhdl::core
