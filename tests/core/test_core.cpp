#include <gtest/gtest.h>

#include "core/ablation.hpp"
#include "core/analysis.hpp"
#include "core/config.hpp"
#include "core/study.hpp"
#include "core/version.hpp"

namespace qhdl::core {
namespace {

TEST(Config, PaperScaleMatchesProtocol) {
  const auto config = paper_scale();
  EXPECT_EQ(config.feature_sizes.size(), 11u);
  EXPECT_EQ(config.feature_sizes.front(), 10u);
  EXPECT_EQ(config.feature_sizes.back(), 110u);
  EXPECT_EQ(config.spiral.points, 1500u);
  EXPECT_EQ(config.spiral.classes, 3u);
  EXPECT_DOUBLE_EQ(config.search.accuracy_threshold, 0.90);
  EXPECT_EQ(config.search.runs_per_model, 5u);
  EXPECT_EQ(config.search.repetitions, 5u);
  EXPECT_EQ(config.search.train.epochs, 100u);
  EXPECT_EQ(config.search.train.batch_size, 8u);
  EXPECT_DOUBLE_EQ(config.search.train.learning_rate, 1e-3);
  EXPECT_DOUBLE_EQ(config.search.prune_margin, 0.0);
}

TEST(Config, BenchAndTestScalesAreReduced) {
  const auto bench = bench_scale();
  EXPECT_LT(bench.search.runs_per_model, paper_scale().search.runs_per_model);
  EXPECT_LT(bench.feature_sizes.size(), paper_scale().feature_sizes.size());
  const auto test = test_scale();
  EXPECT_EQ(test.search.repetitions, 1u);
}

search::SweepResult make_sweep(std::vector<std::size_t> features,
                               std::vector<double> flops,
                               std::vector<double> params) {
  search::SweepResult sweep;
  sweep.family = search::Family::Classical;
  for (std::size_t i = 0; i < features.size(); ++i) {
    search::LevelResult level;
    level.features = features[i];
    level.search.mean_winner_flops = flops[i];
    level.search.mean_winner_parameters = params[i];
    level.search.successful_repetitions = 1;
    sweep.levels.push_back(level);
  }
  return sweep;
}

TEST(Analysis, GrowthFromSyntheticSweep) {
  const auto sweep =
      make_sweep({10, 60, 110}, {1000, 1500, 1885}, {100, 150, 188.5});
  const FamilyGrowth growth = analyze_growth(sweep);
  EXPECT_DOUBLE_EQ(growth.flops.low_value, 1000.0);
  EXPECT_DOUBLE_EQ(growth.flops.high_value, 1885.0);
  EXPECT_DOUBLE_EQ(growth.flops.absolute_increase, 885.0);
  EXPECT_NEAR(growth.flops.percent_increase, 88.5, 1e-12);
  EXPECT_NEAR(growth.parameters.percent_increase, 88.5, 1e-12);
}

TEST(Analysis, GrowthSkipsFailedLevels) {
  auto sweep = make_sweep({10, 60, 110}, {1000, 0, 2000}, {10, 0, 20});
  sweep.levels[1].search.successful_repetitions = 0;  // failed level
  const FamilyGrowth growth = analyze_growth(sweep);
  EXPECT_DOUBLE_EQ(growth.flops.high_value, 2000.0);
}

TEST(Analysis, GrowthNeedsTwoLevels) {
  const auto sweep = make_sweep({10}, {1000}, {100});
  EXPECT_THROW(analyze_growth(sweep), std::invalid_argument);
}

TEST(Analysis, SeriesAndRendering) {
  const auto sweep = make_sweep({10, 110}, {100, 200}, {10, 30});
  const LevelSeries series = sweep_series(sweep);
  ASSERT_EQ(series.features.size(), 2u);
  EXPECT_DOUBLE_EQ(series.mean_flops[1], 200.0);

  const auto growth = analyze_growth(sweep);
  const std::string text = growth_comparison_to_string({growth});
  EXPECT_NE(text.find("classical"), std::string::npos);
  EXPECT_NE(text.find("100"), std::string::npos);
  const auto csv = growth_comparison_to_csv({growth});
  EXPECT_EQ(csv.row_count(), 1u);
}

TEST(Ablation, HybridBreakdownStructure) {
  const flops::CostModel cm;
  const search::HybridSpec spec{3, 2, qnn::AnsatzKind::StronglyEntangling};
  const AblationRow row = ablate_hybrid(spec, 10, 3, cm);
  EXPECT_EQ(row.model, "Hybrid (SEL)");
  EXPECT_EQ(row.features, 10u);
  EXPECT_NEAR(row.total, row.classical + row.encoding + row.quantum, 1e-9);
  EXPECT_NEAR(row.encoding_plus_classical, row.classical + row.encoding,
              1e-9);
  EXPECT_GT(row.quantum, 0.0);
}

TEST(Ablation, PaperSelectionReproducesTableShape) {
  const auto rows = run_ablation(paper_table1_selection(), 3,
                                 flops::CostModel{});
  ASSERT_EQ(rows.size(), 8u);

  // SEL rows (4..7): QL and Enc constant across feature sizes, CL grows.
  for (std::size_t i = 5; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(rows[i].quantum, rows[4].quantum);
    EXPECT_DOUBLE_EQ(rows[i].encoding, rows[4].encoding);
    EXPECT_GT(rows[i].classical, rows[i - 1].classical);
  }
  // BEL rows: QL grows once depth/qubits increase (rows 2 and 3).
  EXPECT_DOUBLE_EQ(rows[1].quantum, rows[0].quantum);  // same (3,2)
  EXPECT_GT(rows[2].quantum, rows[1].quantum);         // (3,4)
  EXPECT_GT(rows[3].quantum, rows[2].quantum);         // (4,4)
  // BEL 110/(4,4) encoding exceeds the 3-qubit encoding.
  EXPECT_GT(rows[3].encoding, rows[2].encoding);

  const std::string text = ablation_to_string(rows);
  EXPECT_NE(text.find("Hybrid (BEL)"), std::string::npos);
  EXPECT_NE(text.find("110/(4,4)"), std::string::npos);
  const auto csv = ablation_to_csv(rows);
  EXPECT_EQ(csv.row_count(), 8u);
}

TEST(Study, MiniatureEndToEnd) {
  // Tiny but complete: all three families, growth + ablation assembled.
  auto config = test_scale();
  config.feature_sizes = {4, 8};
  config.search.accuracy_threshold = 0.05;  // plumbing test, trivially met
  config.search.train.epochs = 2;
  config.search.max_candidates = 2;

  const ComplexityStudy study{config};
  const StudyResult result = study.run();

  EXPECT_EQ(result.classical.levels.size(), 2u);
  EXPECT_EQ(result.hybrid_bel.levels.size(), 2u);
  EXPECT_EQ(result.hybrid_sel.levels.size(), 2u);
  EXPECT_EQ(result.growth.size(), 3u);  // all families found winners

  // Ablation rows exist for the hybrid winners.
  EXPECT_GE(result.ablation.size(), 2u);

  const std::string json = result.to_json().dump();
  EXPECT_NE(json.find("hybrid_sel"), std::string::npos);
  EXPECT_NE(json.find("growth"), std::string::npos);
  EXPECT_NE(json.find("ablation"), std::string::npos);
}

TEST(Study, AblationFromSweepSkipsClassicalWinners) {
  search::SweepResult sweep;
  sweep.family = search::Family::Classical;
  search::LevelResult level;
  level.features = 10;
  search::CandidateResult winner;
  winner.spec = search::ModelSpec::make_classical({4});
  level.search.smallest_winner = winner;
  level.search.successful_repetitions = 1;
  sweep.levels.push_back(level);
  EXPECT_TRUE(ablation_from_sweep(sweep).empty());
}

TEST(Version, Constants) {
  EXPECT_STREQ(kLibraryName, "qhdl");
  EXPECT_NE(std::string{kPaperTitle}.find("Hybrid Quantum"),
            std::string::npos);
}

}  // namespace
}  // namespace qhdl::core
