#include "qnn/ansatz_metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "quantum/gates.hpp"

namespace qhdl::qnn {
namespace {

TEST(MeyerWallach, ZeroForProductStates) {
  quantum::StateVector psi{3};
  psi.apply_single_qubit(quantum::gates::ry(0.8), 0);
  psi.apply_single_qubit(quantum::gates::rx(1.3), 1);
  EXPECT_NEAR(meyer_wallach(psi), 0.0, 1e-12);
}

TEST(MeyerWallach, OneForBellState) {
  quantum::StateVector bell{2};
  bell.apply_single_qubit(quantum::gates::hadamard(), 0);
  bell.apply_cnot(0, 1);
  EXPECT_NEAR(meyer_wallach(bell), 1.0, 1e-12);
}

TEST(MeyerWallach, GhzStateIsMaximal) {
  quantum::StateVector ghz{3};
  ghz.apply_single_qubit(quantum::gates::hadamard(), 0);
  ghz.apply_cnot(0, 1);
  ghz.apply_cnot(1, 2);
  EXPECT_NEAR(meyer_wallach(ghz), 1.0, 1e-12);
}

TEST(HaarBinProbability, SumsToOne) {
  const std::size_t bins = 40;
  double total = 0.0;
  for (std::size_t b = 0; b < bins; ++b) {
    total += haar_bin_probability(8, static_cast<double>(b) / bins,
                                  static_cast<double>(b + 1) / bins);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(HaarBinProbability, ConcentratesNearZeroForLargeDimensions) {
  // Haar-random fidelities concentrate at F≈0 as dimension grows.
  EXPECT_GT(haar_bin_probability(32, 0.0, 0.1),
            haar_bin_probability(32, 0.4, 0.5));
  EXPECT_THROW(haar_bin_probability(1, 0.0, 0.1), std::invalid_argument);
}

TEST(Expressibility, DeeperAnsatzIsMoreExpressive) {
  // KL decreases (more Haar-like) as depth grows; a well-known property.
  util::Rng rng{11};
  ExpressibilityConfig config;
  config.sample_pairs = 400;
  config.bins = 30;
  const double shallow = ansatz_expressibility(
      AnsatzKind::StronglyEntangling, 3, 1, config, rng);
  const double deep = ansatz_expressibility(
      AnsatzKind::StronglyEntangling, 3, 4, config, rng);
  EXPECT_LT(deep, shallow);
}

TEST(Expressibility, SelMoreExpressiveThanBelAtSameDepth) {
  // The paper's core qualitative claim (Section III-C), quantified.
  util::Rng rng{13};
  ExpressibilityConfig config;
  config.sample_pairs = 500;
  config.bins = 30;
  const double bel = ansatz_expressibility(AnsatzKind::BasicEntangler, 3, 2,
                                           config, rng);
  const double sel = ansatz_expressibility(AnsatzKind::StronglyEntangling,
                                           3, 2, config, rng);
  EXPECT_LT(sel, bel);
}

TEST(Expressibility, ValidatesConfig) {
  util::Rng rng{1};
  ExpressibilityConfig config;
  config.sample_pairs = 0;
  EXPECT_THROW(ansatz_expressibility(AnsatzKind::BasicEntangler, 2, 1,
                                     config, rng),
               std::invalid_argument);
}

TEST(EntanglingCapability, IncreasesWithDepthForBel) {
  util::Rng rng{17};
  const double d1 =
      ansatz_entangling_capability(AnsatzKind::BasicEntangler, 3, 1, 200,
                                   rng);
  const double d3 =
      ansatz_entangling_capability(AnsatzKind::BasicEntangler, 3, 3, 200,
                                   rng);
  EXPECT_GT(d3, d1 * 0.9);  // non-decreasing within sampling noise
  EXPECT_GT(d3, 0.3);       // clearly entangling
}

TEST(EntanglingCapability, InRangeZeroOne) {
  util::Rng rng{19};
  const double q = ansatz_entangling_capability(
      AnsatzKind::StronglyEntangling, 4, 2, 100, rng);
  EXPECT_GE(q, 0.0);
  EXPECT_LE(q, 1.0);
}

TEST(GradientStats, MeanNearZeroVariancePositive) {
  util::Rng rng{23};
  const GradientStats stats =
      ansatz_gradient_stats(AnsatzKind::StronglyEntangling, 3, 2, 60, rng);
  EXPECT_NEAR(stats.mean, 0.0, 0.05);
  EXPECT_GT(stats.variance, 0.0);
  EXPECT_GT(stats.mean_abs, 0.0);
}

TEST(GradientStats, VarianceShrinksWithQubits) {
  // Barren-plateau trend: gradient variance decays as width grows.
  util::Rng rng{29};
  const GradientStats narrow =
      ansatz_gradient_stats(AnsatzKind::StronglyEntangling, 2, 3, 80, rng);
  const GradientStats wide =
      ansatz_gradient_stats(AnsatzKind::StronglyEntangling, 6, 3, 80, rng);
  EXPECT_LT(wide.variance, narrow.variance);
}

}  // namespace
}  // namespace qhdl::qnn
