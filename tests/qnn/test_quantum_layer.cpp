#include "qnn/quantum_layer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <vector>

#include "quantum/kernels.hpp"
#include "tensor/init.hpp"
#include "tensor/ops.hpp"
#include "test_helpers.hpp"

namespace qhdl::qnn {
namespace {

using tensor::Shape;
using tensor::Tensor;

QuantumLayerConfig small_config(AnsatzKind ansatz, std::size_t qubits = 3,
                                std::size_t depth = 2) {
  QuantumLayerConfig config;
  config.qubits = qubits;
  config.depth = depth;
  config.ansatz = ansatz;
  return config;
}

TEST(QuantumLayer, OutputShapeMatchesQubits) {
  util::Rng rng{1};
  QuantumLayer layer{small_config(AnsatzKind::BasicEntangler), rng};
  const Tensor x = tensor::uniform(Shape{4, 3}, -1.0, 1.0, rng);
  const Tensor out = layer.forward(x);
  EXPECT_EQ(out.shape(), Shape({4, 3}));
}

TEST(QuantumLayer, OutputsAreExpectationsInRange) {
  util::Rng rng{2};
  QuantumLayer layer{small_config(AnsatzKind::StronglyEntangling), rng};
  const Tensor x = tensor::uniform(Shape{8, 3}, -1.0, 1.0, rng);
  const Tensor out = layer.forward(x);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_GE(out[i], -1.0 - 1e-12);
    EXPECT_LE(out[i], 1.0 + 1e-12);
  }
}

TEST(QuantumLayer, WeightCountMatchesAnsatz) {
  util::Rng rng{3};
  QuantumLayer bel{small_config(AnsatzKind::BasicEntangler, 4, 5), rng};
  EXPECT_EQ(bel.weight_count(), 20u);
  QuantumLayer sel{small_config(AnsatzKind::StronglyEntangling, 4, 5), rng};
  EXPECT_EQ(sel.weight_count(), 60u);
}

TEST(QuantumLayer, ForwardValidatesShape) {
  util::Rng rng{4};
  QuantumLayer layer{small_config(AnsatzKind::BasicEntangler), rng};
  EXPECT_THROW(layer.forward(Tensor::matrix(1, 2, {0.1, 0.2})),
               std::invalid_argument);
}

TEST(QuantumLayer, BackwardBeforeForwardThrows) {
  util::Rng rng{5};
  QuantumLayer layer{small_config(AnsatzKind::BasicEntangler), rng};
  EXPECT_THROW(layer.backward(Tensor::matrix(1, 3, {1, 1, 1})),
               std::logic_error);
}

TEST(QuantumLayer, FailedBackwardInvalidatesCachedInput) {
  // Regression: a shape-mismatched backward used to leave the cached
  // forward batch in place, so the NEXT backward silently differentiated
  // against a stale input instead of surfacing the broken pairing.
  util::Rng rng{6};
  QuantumLayer layer{small_config(AnsatzKind::BasicEntangler), rng};
  layer.forward(Tensor::matrix(2, 3, {0.1, -0.2, 0.3, 0.4, -0.5, 0.6}));
  EXPECT_THROW(layer.backward(Tensor::matrix(1, 3, {1, 1, 1})),
               std::invalid_argument);
  // The cache is gone: even a correctly-shaped upstream must now report
  // "backward before forward" rather than reuse the stale batch.
  EXPECT_THROW(layer.backward(Tensor::matrix(2, 3, {1, 1, 1, 1, 1, 1})),
               std::logic_error);
  // A fresh forward restores the normal pairing.
  layer.forward(Tensor::matrix(1, 3, {0.2, 0.1, -0.3}));
  EXPECT_NO_THROW(layer.backward(Tensor::matrix(1, 3, {1, 0.5, -1})));
}

/// The decisive test: analytic input and weight gradients through the
/// adjoint VJP match finite differences, for both ansätze.
class QuantumLayerGradCheck
    : public ::testing::TestWithParam<std::tuple<AnsatzKind, std::size_t,
                                                 std::size_t>> {};

TEST_P(QuantumLayerGradCheck, MatchesFiniteDifferences) {
  const auto [ansatz, qubits, depth] = GetParam();
  util::Rng rng{77};
  QuantumLayer layer{small_config(ansatz, qubits, depth), rng};
  const Tensor x = tensor::uniform(Shape{2, qubits}, -0.8, 0.8, rng);
  EXPECT_LT(testing::module_input_gradient_error(layer, x, rng), 1e-6);
  EXPECT_LT(testing::module_parameter_gradient_error(layer, x, rng), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, QuantumLayerGradCheck,
    ::testing::Values(
        std::make_tuple(AnsatzKind::BasicEntangler, std::size_t{2},
                        std::size_t{1}),
        std::make_tuple(AnsatzKind::BasicEntangler, std::size_t{3},
                        std::size_t{2}),
        std::make_tuple(AnsatzKind::BasicEntangler, std::size_t{4},
                        std::size_t{3}),
        std::make_tuple(AnsatzKind::StronglyEntangling, std::size_t{2},
                        std::size_t{1}),
        std::make_tuple(AnsatzKind::StronglyEntangling, std::size_t{3},
                        std::size_t{2}),
        std::make_tuple(AnsatzKind::StronglyEntangling, std::size_t{4},
                        std::size_t{2})));

TEST(QuantumLayer, ParameterShiftDiffMethodAgreesWithAdjoint) {
  util::Rng rng_a{91}, rng_b{91};
  QuantumLayerConfig config = small_config(AnsatzKind::BasicEntangler, 3, 2);
  QuantumLayer adjoint{config, rng_a};
  config.diff_method = quantum::DiffMethod::ParameterShift;
  QuantumLayer shift{config, rng_b};  // same seed -> same weights

  const Tensor x = Tensor::matrix(2, 3, {0.1, -0.4, 0.7, 0.5, 0.2, -0.9});
  const Tensor g = Tensor::matrix(2, 3, {1, 0.5, -1, 0.3, -0.2, 0.8});

  adjoint.forward(x);
  const Tensor grad_a = adjoint.backward(g);
  shift.forward(x);
  const Tensor grad_s = shift.backward(g);

  EXPECT_LT(tensor::max_abs_difference(grad_a, grad_s), 1e-9);
  EXPECT_LT(tensor::max_abs_difference(adjoint.parameters()[0]->grad,
                                       shift.parameters()[0]->grad),
            1e-9);
}

TEST(QuantumLayer, EncodingScaleAffectsForwardAndChainRule) {
  util::Rng rng_a{17}, rng_b{17};
  QuantumLayerConfig config = small_config(AnsatzKind::BasicEntangler, 2, 1);
  config.encoding.scale = 1.0;
  QuantumLayer unit{config, rng_a};
  config.encoding.scale = 2.0;
  QuantumLayer doubled{config, rng_b};

  // Same weights: feeding x to the doubled-scale layer equals feeding 2x to
  // the unit-scale layer.
  const Tensor x = Tensor::matrix(1, 2, {0.3, -0.2});
  const Tensor x2 = Tensor::matrix(1, 2, {0.6, -0.4});
  EXPECT_LT(tensor::max_abs_difference(doubled.forward(x), unit.forward(x2)),
            1e-12);

  // Chain rule still passes gradcheck with a non-default scale.
  util::Rng rng{18};
  EXPECT_LT(testing::module_input_gradient_error(doubled, x, rng), 1e-6);
}

TEST(QuantumLayer, InfoDescribesCircuit) {
  util::Rng rng{6};
  QuantumLayer layer{small_config(AnsatzKind::StronglyEntangling, 3, 2), rng};
  const nn::LayerInfo info = layer.info();
  EXPECT_EQ(info.kind, "quantum");
  EXPECT_EQ(info.qubits, 3u);
  EXPECT_EQ(info.depth, 2u);
  EXPECT_EQ(info.ansatz, "sel");
  EXPECT_EQ(info.encoding_gate_count, 3u);
  EXPECT_EQ(info.param_gate_count, 3u + 18u);   // encoding + Rot ops
  EXPECT_EQ(info.gate_count, 3u + 18u + 6u);    // + CNOTs
  EXPECT_EQ(info.parameter_count, 18u);
  EXPECT_EQ(layer.name(), "QuantumSEL(q=3, d=2)");
}

TEST(QuantumLayer, RunSingleMatchesForwardRow) {
  util::Rng rng{7};
  QuantumLayerConfig config = small_config(AnsatzKind::BasicEntangler, 3, 2);
  QuantumLayer layer{config, rng};
  const Tensor x = Tensor::matrix(1, 3, {0.2, -0.5, 0.8});
  const Tensor out = layer.forward(x);
  // run_single takes pre-scaled angles.
  const std::vector<double> angles{0.2 * config.encoding.scale,
                                   -0.5 * config.encoding.scale,
                                   0.8 * config.encoding.scale};
  const auto direct = layer.run_single(angles);
  for (std::size_t w = 0; w < 3; ++w) {
    EXPECT_NEAR(out.at(0, w), direct[w], 1e-12);
  }
  EXPECT_THROW(layer.run_single(std::vector<double>{0.1}),
               std::invalid_argument);
}

TEST(QuantumLayer, NoisyForwardDampsExpectations) {
  util::Rng rng_a{41}, rng_b{41};
  QuantumLayerConfig config = small_config(AnsatzKind::BasicEntangler, 2, 1);
  QuantumLayer clean{config, rng_a};
  config.noise = quantum::NoiseModel::depolarizing(0.1);
  QuantumLayer noisy{config, rng_b};  // same weights

  const Tensor x = Tensor::matrix(1, 2, {0.4, -0.6});
  const Tensor clean_out = clean.forward(x);
  const Tensor noisy_out = noisy.forward(x);
  for (std::size_t i = 0; i < clean_out.size(); ++i) {
    EXPECT_LE(std::abs(noisy_out[i]), std::abs(clean_out[i]) + 1e-12);
  }
}

TEST(QuantumLayer, NoisyGradientsMatchFiniteDifferences) {
  util::Rng rng{43};
  QuantumLayerConfig config = small_config(AnsatzKind::StronglyEntangling,
                                           2, 1);
  config.noise = quantum::NoiseModel::depolarizing(0.05);
  QuantumLayer layer{config, rng};
  const Tensor x = Tensor::matrix(1, 2, {0.3, -0.5});
  EXPECT_LT(testing::module_input_gradient_error(layer, x, rng), 1e-6);
  EXPECT_LT(testing::module_parameter_gradient_error(layer, x, rng), 1e-6);
}

TEST(QuantumLayer, ZeroNoiseDensityPathMatchesStatevector) {
  util::Rng rng_a{47}, rng_b{47};
  QuantumLayerConfig config = small_config(AnsatzKind::BasicEntangler, 3, 2);
  QuantumLayer adjoint{config, rng_a};
  config.noise = quantum::NoiseModel::depolarizing(0.0);
  QuantumLayer noisy_zero{config, rng_b};

  const Tensor x = Tensor::matrix(2, 3, {0.1, 0.7, -0.3, -0.8, 0.2, 0.5});
  EXPECT_LT(tensor::max_abs_difference(adjoint.forward(x),
                                       noisy_zero.forward(x)),
            1e-10);
}

TEST(QuantumLayer, WeightsInitializedInTwoPiRange) {
  util::Rng rng{8};
  QuantumLayer layer{small_config(AnsatzKind::StronglyEntangling, 4, 3), rng};
  const auto& weights = layer.parameters()[0]->value;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    EXPECT_GE(weights[i], 0.0);
    EXPECT_LT(weights[i], 2.0 * std::numbers::pi);
  }
}

TEST(QuantumLayer, GradientsAccumulateAcrossBatches) {
  util::Rng rng{9};
  QuantumLayer layer{small_config(AnsatzKind::BasicEntangler, 2, 1), rng};
  const Tensor x = Tensor::matrix(1, 2, {0.3, 0.4});
  const Tensor g = Tensor::matrix(1, 2, {1.0, 1.0});
  layer.forward(x);
  layer.backward(g);
  const Tensor first = layer.parameters()[0]->grad;
  layer.forward(x);
  layer.backward(g);
  const Tensor second = layer.parameters()[0]->grad;
  EXPECT_LT(tensor::max_abs_difference(second, tensor::scale(first, 2.0)),
            1e-12);
}

}  // namespace
}  // namespace qhdl::qnn

namespace qhdl::qnn {
namespace {

using tensor::Tensor;

TEST(QuantumLayer, HardwareEfficientGradcheck) {
  util::Rng rng{61};
  QuantumLayerConfig config;
  config.qubits = 3;
  config.depth = 2;
  config.ansatz = AnsatzKind::HardwareEfficient;
  QuantumLayer layer{config, rng};
  EXPECT_EQ(layer.weight_count(), 6u);
  const Tensor x = Tensor::matrix(2, 3, {0.2, -0.4, 0.6, -0.1, 0.8, 0.3});
  EXPECT_LT(testing::module_input_gradient_error(layer, x, rng), 1e-6);
  EXPECT_LT(testing::module_parameter_gradient_error(layer, x, rng), 1e-6);
  EXPECT_EQ(layer.info().ansatz, "hea");
}

TEST(QuantumLayer, ShotBasedForwardApproximatesExact) {
  util::Rng rng_a{67}, rng_b{67};
  QuantumLayerConfig config;
  config.qubits = 2;
  config.depth = 1;
  config.ansatz = AnsatzKind::BasicEntangler;
  QuantumLayer exact{config, rng_a};
  config.shots = 8192;
  QuantumLayer sampled{config, rng_b};  // same weights

  const Tensor x = Tensor::matrix(1, 2, {0.3, -0.5});
  const Tensor e = exact.forward(x);
  const Tensor s = sampled.forward(x);
  for (std::size_t i = 0; i < e.size(); ++i) {
    EXPECT_NEAR(s[i], e[i], 0.06) << i;  // ~4 sigma at 8192 shots
  }
  // Shot noise means repeated forwards differ.
  const Tensor s2 = sampled.forward(x);
  EXPECT_GT(tensor::max_abs_difference(s, s2), 0.0);
}

TEST(QuantumLayer, ShotsWithNoiseRejected) {
  util::Rng rng{71};
  QuantumLayerConfig config;
  config.shots = 100;
  config.noise = quantum::NoiseModel::depolarizing(0.01);
  EXPECT_THROW((QuantumLayer{config, rng}), std::invalid_argument);
}

}  // namespace
}  // namespace qhdl::qnn

namespace qhdl::qnn {
namespace {

TEST(QuantumLayer, ThreadedBatchMatchesSequential) {
  util::Rng rng_a{81}, rng_b{81};
  QuantumLayerConfig config;
  config.qubits = 3;
  config.depth = 2;
  config.ansatz = AnsatzKind::StronglyEntangling;
  QuantumLayer sequential{config, rng_a};
  config.threads = 4;
  QuantumLayer threaded{config, rng_b};  // same weights

  util::Rng data_rng{82};
  const tensor::Tensor x =
      tensor::uniform(tensor::Shape{16, 3}, -1.0, 1.0, data_rng);
  const tensor::Tensor g =
      tensor::uniform(tensor::Shape{16, 3}, -1.0, 1.0, data_rng);

  const tensor::Tensor out_seq = sequential.forward(x);
  const tensor::Tensor out_par = threaded.forward(x);
  EXPECT_TRUE(tensor::allclose(out_seq, out_par, 0, 0));

  const tensor::Tensor grad_seq = sequential.backward(g);
  const tensor::Tensor grad_par = threaded.backward(g);
  EXPECT_TRUE(tensor::allclose(grad_seq, grad_par, 0, 0));
  EXPECT_TRUE(tensor::allclose(sequential.parameters()[0]->grad,
                               threaded.parameters()[0]->grad, 1e-15,
                               1e-15));
}

TEST(QuantumLayer, BatchedSoAPathMatchesGenericPerRow) {
  // The SoA batch path (specialized kernels, shared+per-row variants,
  // batched adjoint VJP) must agree with the QHDL_FORCE_GENERIC_KERNELS
  // per-row path — PR1's exact code path — to 1e-12 on outputs, input
  // gradients, and weight gradients.
  util::Rng rng_a{31};
  util::Rng rng_b{31};
  auto config = small_config(AnsatzKind::StronglyEntangling, 4, 3);
  QuantumLayer batched{config, rng_a};
  QuantumLayer generic{config, rng_b};  // same weights

  util::Rng data_rng{13};
  const tensor::Tensor x =
      tensor::uniform(tensor::Shape{7, 4}, -1.0, 1.0, data_rng);
  const tensor::Tensor g =
      tensor::uniform(tensor::Shape{7, 4}, -1.0, 1.0, data_rng);

  quantum::kernels::set_force_generic(false);
  quantum::kernels::reset_stats();
  const tensor::Tensor out_batched = batched.forward(x);
  EXPECT_GT(quantum::kernels::stats().batched_rows, 0u)
      << "specialized mode should take the SoA batch path";
  const tensor::Tensor gin_batched = batched.backward(g);

  quantum::kernels::set_force_generic(true);
  quantum::kernels::reset_stats();
  const tensor::Tensor out_generic = generic.forward(x);
  EXPECT_EQ(quantum::kernels::stats().batched_rows, 0u)
      << "escape hatch should disable the SoA batch path";
  const tensor::Tensor gin_generic = generic.backward(g);
  quantum::kernels::set_force_generic(std::nullopt);

  EXPECT_TRUE(tensor::allclose(out_batched, out_generic, 1e-12, 1e-12));
  EXPECT_TRUE(tensor::allclose(gin_batched, gin_generic, 1e-12, 1e-12));
  EXPECT_TRUE(tensor::allclose(batched.parameters()[0]->grad,
                               generic.parameters()[0]->grad, 1e-12, 1e-12));
}

TEST(QuantumLayer, BatchedPathBitIdenticalAcrossChunkCounts) {
  // Chunking the batch across threads must not change a single bit: the
  // batch kernels do per-row arithmetic in the same order regardless of
  // where chunk boundaries fall.
  util::Rng data_rng{45};
  const tensor::Tensor x =
      tensor::uniform(tensor::Shape{9, 3}, -1.0, 1.0, data_rng);
  const tensor::Tensor g =
      tensor::uniform(tensor::Shape{9, 3}, -1.0, 1.0, data_rng);

  std::vector<tensor::Tensor> outs, gins, wgrads;
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
    util::Rng rng{77};
    auto config = small_config(AnsatzKind::StronglyEntangling, 3, 2);
    config.threads = threads;
    QuantumLayer layer{config, rng};
    outs.push_back(layer.forward(x));
    gins.push_back(layer.backward(g));
    wgrads.push_back(layer.parameters()[0]->grad);
  }
  for (std::size_t i = 1; i < outs.size(); ++i) {
    EXPECT_TRUE(tensor::allclose(outs[0], outs[i], 0, 0));
    EXPECT_TRUE(tensor::allclose(gins[0], gins[i], 0, 0));
    EXPECT_TRUE(tensor::allclose(wgrads[0], wgrads[i], 0, 0));
  }
}

}  // namespace
}  // namespace qhdl::qnn
