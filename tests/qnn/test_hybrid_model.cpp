#include "qnn/hybrid_model.hpp"

#include <gtest/gtest.h>

#include "nn/trainer.hpp"
#include "tensor/init.hpp"
#include "test_helpers.hpp"

namespace qhdl::qnn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(HybridModel, TopologyMatchesPaper) {
  util::Rng rng{1};
  HybridConfig config;
  config.features = 10;
  config.qubits = 3;
  config.depth = 2;
  config.ansatz = AnsatzKind::StronglyEntangling;
  const auto model = build_hybrid_model(config, rng);

  // Dense(F->q), Tanh, Quantum, Dense(q->classes).
  ASSERT_EQ(model->layer_count(), 4u);
  const auto infos = model->layer_infos();
  EXPECT_EQ(infos[0].kind, "dense");
  EXPECT_EQ(infos[0].inputs, 10u);
  EXPECT_EQ(infos[0].outputs, 3u);
  EXPECT_EQ(infos[1].kind, "tanh");
  EXPECT_EQ(infos[2].kind, "quantum");
  EXPECT_EQ(infos[3].kind, "dense");
  EXPECT_EQ(infos[3].outputs, 3u);
}

TEST(HybridModel, ParameterCountFormula) {
  util::Rng rng{2};
  HybridConfig config;
  config.features = 10;
  config.qubits = 3;
  config.depth = 2;
  config.ansatz = AnsatzKind::BasicEntangler;
  const auto model = build_hybrid_model(config, rng);
  // (10*3+3) input + 6 quantum + (3*3+3) output = 33 + 6 + 12 = 51.
  EXPECT_EQ(model->parameter_count(), 51u);
  EXPECT_EQ(hybrid_parameter_count(config), 51u);
}

TEST(HybridModel, SelParameterCount) {
  HybridConfig config;
  config.features = 40;
  config.qubits = 3;
  config.depth = 2;
  config.ansatz = AnsatzKind::StronglyEntangling;
  // (40*3+3) + 18 + (3*3+3) = 123 + 18 + 12 = 153.
  EXPECT_EQ(hybrid_parameter_count(config), 153u);
}

TEST(HybridModel, ForwardProducesLogits) {
  util::Rng rng{3};
  HybridConfig config;
  config.features = 6;
  const auto model = build_hybrid_model(config, rng);
  const Tensor x = tensor::uniform(Shape{5, 6}, -1.0, 1.0, rng);
  const Tensor logits = model->forward(x);
  EXPECT_EQ(logits.shape(), Shape({5, 3}));
}

TEST(HybridModel, EndToEndGradcheck) {
  util::Rng rng{4};
  HybridConfig config;
  config.features = 4;
  config.qubits = 2;
  config.depth = 1;
  config.ansatz = AnsatzKind::StronglyEntangling;
  const auto model = build_hybrid_model(config, rng);
  const Tensor x = tensor::uniform(Shape{2, 4}, -1.0, 1.0, rng);
  EXPECT_LT(testing::module_input_gradient_error(*model, x, rng), 1e-6);
  EXPECT_LT(testing::module_parameter_gradient_error(*model, x, rng), 1e-6);
}

TEST(HybridModel, ValidatesConfig) {
  util::Rng rng{5};
  HybridConfig config;
  config.features = 0;
  EXPECT_THROW(build_hybrid_model(config, rng), std::invalid_argument);
}

TEST(ClassicalModel, TopologyAndParameterCount) {
  util::Rng rng{6};
  ClassicalConfig config;
  config.features = 10;
  config.hidden = {8, 4};
  config.classes = 3;
  const auto model = build_classical_model(config, rng);
  // Dense+act per hidden layer + output dense = 5 layers.
  EXPECT_EQ(model->layer_count(), 5u);
  // (10*8+8) + (8*4+4) + (4*3+3) = 88 + 36 + 15 = 139.
  EXPECT_EQ(model->parameter_count(), 139u);
  EXPECT_EQ(classical_parameter_count(config), 139u);
}

TEST(ClassicalModel, ReluActivationOption) {
  util::Rng rng{7};
  ClassicalConfig config;
  config.features = 4;
  config.hidden = {5};
  config.activation = Activation::ReLU;
  const auto model = build_classical_model(config, rng);
  EXPECT_EQ(model->layer_infos()[1].kind, "relu");
}

TEST(ClassicalModel, NoHiddenLayersIsLogisticRegression) {
  util::Rng rng{8};
  ClassicalConfig config;
  config.features = 4;
  config.hidden = {};
  const auto model = build_classical_model(config, rng);
  EXPECT_EQ(model->layer_count(), 1u);
  EXPECT_EQ(model->parameter_count(), 4u * 3 + 3);
}

TEST(ClassicalModel, ZeroWidthLayerThrows) {
  util::Rng rng{9};
  ClassicalConfig config;
  config.hidden = {4, 0};
  EXPECT_THROW(build_classical_model(config, rng), std::invalid_argument);
}

TEST(HybridModel, TrainsOnTinySeparableProblem) {
  // Smoke test that gradients flow end-to-end: a hybrid model should fit a
  // 2-feature, 2-class linearly separable problem quickly.
  util::Rng rng{10};
  HybridConfig config;
  config.features = 2;
  config.qubits = 2;
  config.depth = 1;
  config.ansatz = AnsatzKind::StronglyEntangling;
  config.classes = 2;
  const auto model = build_hybrid_model(config, rng);

  const std::size_t n = 60;
  Tensor x{Shape{n, 2}};
  std::vector<std::size_t> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = rng.uniform(-1.0, 1.0);
    x.at(i, 0) = x0 + (x0 > 0 ? 0.4 : -0.4);
    x.at(i, 1) = rng.uniform(-1.0, 1.0);
    y[i] = x0 > 0 ? 1 : 0;
  }

  nn::Adam optimizer{0.05};
  nn::TrainConfig train_config;
  train_config.epochs = 25;
  train_config.batch_size = 8;
  const auto history = nn::train_classifier(*model, optimizer, x, y, x, y,
                                            train_config, rng);
  EXPECT_GE(history.best_train_accuracy, 0.9);
}

}  // namespace
}  // namespace qhdl::qnn
