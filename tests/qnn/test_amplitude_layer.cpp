#include "qnn/amplitude_layer.hpp"

#include <gtest/gtest.h>

#include "nn/dense.hpp"
#include "nn/sequential.hpp"
#include "nn/trainer.hpp"
#include "tensor/init.hpp"
#include "tensor/ops.hpp"
#include "test_helpers.hpp"

namespace qhdl::qnn {
namespace {

using tensor::Shape;
using tensor::Tensor;

Tensor nonzero_batch(std::size_t rows, std::size_t cols,
                     std::uint64_t seed) {
  util::Rng rng{seed};
  Tensor x = tensor::uniform(Shape{rows, cols}, 0.3, 1.5, rng);
  for (std::size_t i = 0; i < x.size(); i += 2) x[i] = -x[i];
  return x;
}

TEST(AmplitudeLayer, ShapesAndRange) {
  util::Rng rng{1};
  AmplitudeLayerConfig config;
  config.qubits = 3;
  AmplitudeQuantumLayer layer{config, rng};
  EXPECT_EQ(layer.input_width(), 8u);
  const Tensor x = nonzero_batch(4, 8, 2);
  const Tensor out = layer.forward(x);
  EXPECT_EQ(out.shape(), Shape({4, 3}));
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_GE(out[i], -1.0 - 1e-12);
    EXPECT_LE(out[i], 1.0 + 1e-12);
  }
}

TEST(AmplitudeLayer, NormalizationInvariance) {
  // Amplitude encoding is scale-invariant: f(x) == f(3x).
  util::Rng rng_a{3}, rng_b{3};
  AmplitudeLayerConfig config;
  config.qubits = 2;
  AmplitudeQuantumLayer layer{config, rng_a};
  AmplitudeQuantumLayer same{config, rng_b};
  const Tensor x = nonzero_batch(2, 4, 4);
  const Tensor scaled = tensor::scale(x, 3.0);
  EXPECT_LT(tensor::max_abs_difference(layer.forward(x),
                                       same.forward(scaled)),
            1e-12);
}

TEST(AmplitudeLayer, RejectsBadInputs) {
  util::Rng rng{5};
  AmplitudeLayerConfig config;
  config.qubits = 2;
  AmplitudeQuantumLayer layer{config, rng};
  EXPECT_THROW(layer.forward(Tensor::matrix(1, 3, {1, 2, 3})),
               std::invalid_argument);
  EXPECT_THROW(layer.forward(Tensor{Shape{1, 4}}),  // zero-norm row
               std::invalid_argument);
  EXPECT_THROW(layer.backward(Tensor{Shape{1, 2}}), std::logic_error);
}

/// The decisive test: exact gradients through the ansatz AND the
/// normalization, against central finite differences.
class AmplitudeGradCheck
    : public ::testing::TestWithParam<std::tuple<AnsatzKind, std::size_t>> {
};

TEST_P(AmplitudeGradCheck, MatchesFiniteDifferences) {
  const auto [ansatz, qubits] = GetParam();
  util::Rng rng{7};
  AmplitudeLayerConfig config;
  config.qubits = qubits;
  config.depth = 2;
  config.ansatz = ansatz;
  AmplitudeQuantumLayer layer{config, rng};
  const Tensor x = nonzero_batch(2, layer.input_width(), 8);
  EXPECT_LT(testing::module_input_gradient_error(layer, x, rng), 1e-6);
  EXPECT_LT(testing::module_parameter_gradient_error(layer, x, rng), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, AmplitudeGradCheck,
    ::testing::Values(
        std::make_tuple(AnsatzKind::BasicEntangler, std::size_t{2}),
        std::make_tuple(AnsatzKind::StronglyEntangling, std::size_t{2}),
        std::make_tuple(AnsatzKind::StronglyEntangling, std::size_t{3}),
        std::make_tuple(AnsatzKind::HardwareEfficient, std::size_t{3})));

TEST(AmplitudeLayer, InfoOmitsEncodingGates) {
  util::Rng rng{9};
  AmplitudeLayerConfig config;
  config.qubits = 3;
  config.depth = 2;
  config.ansatz = AnsatzKind::StronglyEntangling;
  AmplitudeQuantumLayer layer{config, rng};
  const nn::LayerInfo info = layer.info();
  EXPECT_EQ(info.inputs, 8u);
  EXPECT_EQ(info.outputs, 3u);
  EXPECT_EQ(info.encoding_gate_count, 0u);  // data IS the state
  EXPECT_EQ(info.param_gate_count, 18u);
  EXPECT_EQ(layer.name(), "AmplitudeQuantumSEL(q=3, d=2)");
}

TEST(AmplitudeLayer, TrainsInsideHybridModel) {
  // 8 features -> amplitude-encoded 3-qubit register -> Dense(3 -> 2):
  // no input compressor at all. Fit a simple sign problem.
  util::Rng rng{11};
  nn::Sequential model;
  AmplitudeLayerConfig config;
  config.qubits = 3;
  config.depth = 2;
  model.emplace<AmplitudeQuantumLayer>(config, rng);
  model.emplace<nn::Dense>(3, 2, rng);

  const std::size_t n = 80;
  Tensor x{Shape{n, 8}};
  std::vector<std::size_t> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.uniform(-1.0, 1.0);
    for (std::size_t j = 0; j < 8; ++j) {
      x.at(i, j) = rng.uniform(0.2, 1.0);
    }
    x.at(i, 0) = a + (a > 0 ? 0.5 : -0.5);
    y[i] = a > 0 ? 1 : 0;
  }
  nn::Adam optimizer{0.05};
  nn::TrainConfig train_config;
  train_config.epochs = 30;
  train_config.batch_size = 8;
  const auto history = nn::train_classifier(model, optimizer, x, y, x, y,
                                            train_config, rng);
  EXPECT_GE(history.best_train_accuracy, 0.85);
}

}  // namespace
}  // namespace qhdl::qnn
