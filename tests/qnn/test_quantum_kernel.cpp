#include "qnn/quantum_kernel.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/kernel_ridge.hpp"
#include "tensor/init.hpp"
#include "tensor/linalg.hpp"
#include "util/rng.hpp"

namespace qhdl::qnn {
namespace {

using tensor::Shape;
using tensor::Tensor;

Tensor random_rows(std::size_t n, std::size_t f, std::uint64_t seed) {
  util::Rng rng{seed};
  return tensor::uniform(Shape{n, f}, -1.0, 1.0, rng);
}

TEST(QuantumKernel, SelfKernelIsOne) {
  QuantumKernelConfig config;
  const std::vector<double> x{0.3, -0.7, 1.1};
  EXPECT_NEAR(kernel_value(config, x, x), 1.0, 1e-12);
}

TEST(QuantumKernel, SymmetricAndBounded) {
  QuantumKernelConfig config;
  util::Rng rng{1};
  for (int trial = 0; trial < 20; ++trial) {
    const auto x1 = rng.uniform_vector(4, -2.0, 2.0);
    const auto x2 = rng.uniform_vector(4, -2.0, 2.0);
    const double k12 = kernel_value(config, x1, x2);
    const double k21 = kernel_value(config, x2, x1);
    EXPECT_NEAR(k12, k21, 1e-12);
    EXPECT_GE(k12, 0.0);
    EXPECT_LE(k12, 1.0 + 1e-12);
  }
}

TEST(QuantumKernel, AngleMapFactorizes) {
  // Product feature map: k(x,x') = Π cos²((x_i − x'_i)/2).
  QuantumKernelConfig config;
  config.map = FeatureMapKind::Angle;
  const std::vector<double> x1{0.4, -0.6};
  const std::vector<double> x2{1.0, 0.2};
  double expected = 1.0;
  for (std::size_t i = 0; i < 2; ++i) {
    const double c = std::cos((x1[i] - x2[i]) / 2.0);
    expected *= c * c;
  }
  EXPECT_NEAR(kernel_value(config, x1, x2), expected, 1e-12);
}

TEST(QuantumKernel, ZzMapDoesNotFactorize) {
  // With entanglement the product formula must fail for generic inputs.
  QuantumKernelConfig config;
  config.map = FeatureMapKind::ZZ;
  const std::vector<double> x1{0.9, -1.3};
  const std::vector<double> x2{-0.5, 0.7};
  double product_formula = 1.0;
  for (std::size_t i = 0; i < 2; ++i) {
    const double c = std::cos((x1[i] - x2[i]) / 2.0);
    product_formula *= c * c;
  }
  EXPECT_GT(std::abs(kernel_value(config, x1, x2) - product_formula), 1e-3);
}

TEST(QuantumKernel, GramMatrixIsPsd) {
  QuantumKernelConfig config;
  const Tensor x = random_rows(12, 3, 2);
  const Tensor k = kernel_matrix(config, x);
  EXPECT_EQ(k.shape(), Shape({12, 12}));
  EXPECT_LT(tensor::symmetry_error(k), 1e-12);
  for (std::size_t i = 0; i < 12; ++i) EXPECT_NEAR(k.at(i, i), 1.0, 1e-12);
  EXPECT_NO_THROW(tensor::cholesky(k, 1e-9));  // PSD up to jitter
}

TEST(QuantumKernel, CrossKernelMatchesPairwise) {
  QuantumKernelConfig config;
  const Tensor a = random_rows(3, 3, 3);
  const Tensor b = random_rows(4, 3, 4);
  const Tensor k = cross_kernel_matrix(config, a, b);
  EXPECT_EQ(k.shape(), Shape({3, 4}));
  std::vector<double> row_a(3), row_b(3);
  for (std::size_t j = 0; j < 3; ++j) row_a[j] = a.at(1, j);
  for (std::size_t j = 0; j < 3; ++j) row_b[j] = b.at(2, j);
  EXPECT_NEAR(k.at(1, 2), kernel_value(config, row_a, row_b), 1e-12);
}

TEST(QuantumKernel, ValidatesInputs) {
  QuantumKernelConfig config;
  EXPECT_THROW(feature_state(config, std::vector<double>{}),
               std::invalid_argument);
  EXPECT_THROW(kernel_value(config, std::vector<double>{1.0},
                            std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
}

TEST(RbfKernel, KnownValuesAndBounds) {
  const Tensor x = Tensor::matrix(2, 1, {0.0, 1.0});
  const Tensor k = rbf_kernel_matrix(x, 0.5);
  EXPECT_DOUBLE_EQ(k.at(0, 0), 1.0);
  EXPECT_NEAR(k.at(0, 1), std::exp(-0.5), 1e-12);
  const Tensor cross = rbf_cross_kernel_matrix(x, x, 0.5);
  EXPECT_NEAR(cross.at(1, 0), std::exp(-0.5), 1e-12);
}

TEST(KernelRidge, LearnsXorWithZzKernelButNotLinearly) {
  // XOR labels on 2 features: the entangling kernel separates them.
  Tensor x{Shape{40, 2}};
  std::vector<std::size_t> y(40);
  util::Rng rng{5};
  for (std::size_t i = 0; i < 40; ++i) {
    const double a = rng.uniform(-1.0, 1.0);
    const double b = rng.uniform(-1.0, 1.0);
    x.at(i, 0) = a + (a > 0 ? 0.3 : -0.3);
    x.at(i, 1) = b + (b > 0 ? 0.3 : -0.3);
    y[i] = (a > 0) != (b > 0) ? 1 : 0;
  }
  QuantumKernelConfig config;
  config.scale = 1.5;
  const Tensor gram = kernel_matrix(config, x);
  nn::KernelRidgeClassifier classifier{1e-3};
  classifier.fit(gram, y, 2);
  EXPECT_GE(classifier.score(gram, y), 0.9);  // training accuracy
}

TEST(KernelRidge, GeneralizesOnHeldOutData) {
  Tensor x_train{Shape{60, 2}}, x_test{Shape{30, 2}};
  std::vector<std::size_t> y_train(60), y_test(30);
  util::Rng rng{6};
  const auto fill = [&](Tensor& x, std::vector<std::size_t>& y) {
    for (std::size_t i = 0; i < x.rows(); ++i) {
      const double a = rng.uniform(-1.0, 1.0);
      x.at(i, 0) = a + (a > 0 ? 0.4 : -0.4);
      x.at(i, 1) = rng.uniform(-1.0, 1.0);
      y[i] = a > 0 ? 1 : 0;
    }
  };
  fill(x_train, y_train);
  fill(x_test, y_test);

  QuantumKernelConfig config;
  nn::KernelRidgeClassifier classifier{1e-3};
  classifier.fit(kernel_matrix(config, x_train), y_train, 2);
  const Tensor cross = cross_kernel_matrix(config, x_test, x_train);
  EXPECT_GE(classifier.score(cross, y_test), 0.85);
}

TEST(KernelRidge, ValidatesUsage) {
  nn::KernelRidgeClassifier classifier{1e-3};
  EXPECT_THROW(nn::KernelRidgeClassifier{0.0}, std::invalid_argument);
  EXPECT_THROW(classifier.predict(Tensor{Shape{1, 1}}), std::logic_error);

  const Tensor gram = Tensor::identity(3);
  const std::vector<std::size_t> bad_labels{0, 1};
  EXPECT_THROW(classifier.fit(gram, bad_labels, 2), std::invalid_argument);
  const std::vector<std::size_t> out_of_range{0, 1, 5};
  EXPECT_THROW(classifier.fit(gram, out_of_range, 2), std::out_of_range);

  const std::vector<std::size_t> labels{0, 1, 0};
  classifier.fit(gram, labels, 2);
  EXPECT_TRUE(classifier.is_fitted());
  EXPECT_THROW(classifier.decision_function(Tensor{Shape{1, 2}}),
               std::invalid_argument);
}

TEST(KernelRidge, PerfectKernelRecoversLabels) {
  // Identity Gram = orthonormal features: training predictions recover the
  // one-vs-rest targets exactly.
  const Tensor gram = Tensor::identity(4);
  const std::vector<std::size_t> labels{0, 1, 2, 1};
  nn::KernelRidgeClassifier classifier{1e-9};
  classifier.fit(gram, labels, 3);
  EXPECT_DOUBLE_EQ(classifier.score(gram, labels), 1.0);
}

}  // namespace
}  // namespace qhdl::qnn
