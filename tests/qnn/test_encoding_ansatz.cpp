#include <gtest/gtest.h>

#include <cmath>

#include "qnn/ansatz.hpp"
#include "qnn/encoding.hpp"

namespace qhdl::qnn {
namespace {

using quantum::Circuit;
using quantum::GateType;

TEST(AngleEncoding, AppendsOneRotationPerQubit) {
  Circuit c{4};
  AngleEncoding encoding;
  const std::size_t consumed = encoding.append(c, 4);
  EXPECT_EQ(consumed, 4u);
  EXPECT_EQ(c.op_count(), 4u);
  EXPECT_EQ(c.parameter_count(), 4u);
  for (const auto& op : c.ops()) {
    EXPECT_EQ(op.type, GateType::RX);
    EXPECT_TRUE(op.param_index.has_value());
  }
}

TEST(AngleEncoding, EncodesExpectedState) {
  Circuit c{1};
  AngleEncoding encoding;
  encoding.append(c, 1);
  // ⟨Z⟩ after RX(x) = cos(x); raw circuit params are raw angles.
  const auto state = c.execute(std::vector<double>{0.9});
  EXPECT_NEAR(state.expval_pauli_z(0), std::cos(0.9), 1e-12);
}

TEST(AngleEncoding, ValidatesArguments) {
  Circuit c{2};
  AngleEncoding encoding;
  EXPECT_THROW(encoding.append(c, 0), std::invalid_argument);
  EXPECT_THROW(encoding.append(c, 3), std::invalid_argument);
  AngleEncoding bad;
  bad.gate = GateType::CNOT;
  EXPECT_THROW(bad.append(c, 2), std::invalid_argument);
}

TEST(AngleEncoding, ParamOffsetRespected) {
  Circuit c{2};
  AngleEncoding encoding;
  encoding.append(c, 2, 5);
  EXPECT_EQ(c.parameter_count(), 7u);  // indices 5, 6 referenced
}

TEST(Ansatz, Names) {
  EXPECT_EQ(ansatz_name(AnsatzKind::BasicEntangler), "BEL");
  EXPECT_EQ(ansatz_name(AnsatzKind::StronglyEntangling), "SEL");
  EXPECT_EQ(ansatz_from_name("bel"), AnsatzKind::BasicEntangler);
  EXPECT_EQ(ansatz_from_name("SEL"), AnsatzKind::StronglyEntangling);
  EXPECT_EQ(ansatz_from_name("StronglyEntangling"),
            AnsatzKind::StronglyEntangling);
  EXPECT_THROW(ansatz_from_name("nope"), std::invalid_argument);
}

TEST(Ansatz, WeightCountsMatchPennyLaneShapes) {
  // BEL: (depth, qubits); SEL: (depth, qubits, 3).
  EXPECT_EQ(ansatz_weight_count(AnsatzKind::BasicEntangler, 3, 2), 6u);
  EXPECT_EQ(ansatz_weight_count(AnsatzKind::StronglyEntangling, 3, 2), 18u);
  EXPECT_EQ(ansatz_weight_count(AnsatzKind::BasicEntangler, 5, 10), 50u);
  EXPECT_EQ(ansatz_weight_count(AnsatzKind::StronglyEntangling, 4, 7), 84u);
}

TEST(Ansatz, OpCounts) {
  // BEL q=3 d=2: 6 RX + 6 CNOT.
  const auto bel = ansatz_op_counts(AnsatzKind::BasicEntangler, 3, 2);
  EXPECT_EQ(bel.rotation_ops, 6u);
  EXPECT_EQ(bel.entangling_ops, 6u);
  // SEL q=3 d=2: 18 rotations (Rot = 3 ops) + 6 CNOT.
  const auto sel = ansatz_op_counts(AnsatzKind::StronglyEntangling, 3, 2);
  EXPECT_EQ(sel.rotation_ops, 18u);
  EXPECT_EQ(sel.entangling_ops, 6u);
  // q=2: single CNOT per layer; q=1: none.
  EXPECT_EQ(ansatz_op_counts(AnsatzKind::BasicEntangler, 2, 3).entangling_ops,
            3u);
  EXPECT_EQ(ansatz_op_counts(AnsatzKind::BasicEntangler, 1, 3).entangling_ops,
            0u);
}

TEST(Ansatz, AppendBelStructure) {
  Circuit c{3};
  const std::size_t consumed =
      append_ansatz(c, AnsatzKind::BasicEntangler, 3, 2, 0);
  EXPECT_EQ(consumed, 6u);
  EXPECT_EQ(c.op_count(), 12u);  // (3 RX + 3 CNOT) x 2
  // First three ops are RX on wires 0..2, then a CNOT ring 0->1,1->2,2->0.
  EXPECT_EQ(c.ops()[0].type, GateType::RX);
  EXPECT_EQ(c.ops()[3].type, GateType::CNOT);
  EXPECT_EQ(c.ops()[3].wire0, 0u);
  EXPECT_EQ(c.ops()[3].wire1, 1u);
  EXPECT_EQ(c.ops()[5].wire0, 2u);
  EXPECT_EQ(c.ops()[5].wire1, 0u);
}

TEST(Ansatz, AppendSelUsesLayerDependentRange) {
  Circuit c{4};
  append_ansatz(c, AnsatzKind::StronglyEntangling, 4, 2, 0);
  // Layer 0: range 1 (CNOT i -> i+1); layer 1: range 2 (CNOT i -> i+2).
  // Per layer: 12 rotation ops (4 Rot) + 4 CNOTs = 16 ops.
  const auto& ops = c.ops();
  ASSERT_EQ(ops.size(), 32u);
  // First layer's first CNOT is op 12: wires 0 -> 1.
  EXPECT_EQ(ops[12].type, GateType::CNOT);
  EXPECT_EQ(ops[12].wire1, 1u);
  // Second layer's first CNOT is op 28: wires 0 -> 2 (range 2).
  EXPECT_EQ(ops[28].type, GateType::CNOT);
  EXPECT_EQ(ops[28].wire1, 2u);
}

TEST(Ansatz, StatePreservesNorm) {
  Circuit c{3};
  AngleEncoding encoding;
  std::size_t offset = encoding.append(c, 3);
  append_ansatz(c, AnsatzKind::StronglyEntangling, 3, 4, offset);
  std::vector<double> params(c.parameter_count());
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i] = 0.1 * static_cast<double>(i + 1);
  }
  EXPECT_NEAR(c.execute(params).norm_squared(), 1.0, 1e-12);
}

TEST(Ansatz, ValidatesArguments) {
  Circuit c{2};
  EXPECT_THROW(append_ansatz(c, AnsatzKind::BasicEntangler, 0, 1, 0),
               std::invalid_argument);
  EXPECT_THROW(append_ansatz(c, AnsatzKind::BasicEntangler, 3, 1, 0),
               std::invalid_argument);
  EXPECT_THROW(append_ansatz(c, AnsatzKind::BasicEntangler, 2, 0, 0),
               std::invalid_argument);
}

TEST(Ansatz, SingleQubitHasNoEntanglers) {
  Circuit c{1};
  append_ansatz(c, AnsatzKind::BasicEntangler, 1, 3, 0);
  for (const auto& op : c.ops()) EXPECT_EQ(op.type, GateType::RX);
}

}  // namespace
}  // namespace qhdl::qnn

namespace qhdl::qnn {
namespace {

TEST(Ansatz, HardwareEfficientStructure) {
  quantum::Circuit c{4};
  const std::size_t consumed =
      append_ansatz(c, AnsatzKind::HardwareEfficient, 4, 2, 0);
  EXPECT_EQ(consumed, 8u);  // (depth, qubits) weights
  // Per layer: 4 RY + 3 CZ (linear chain) = 7 ops.
  ASSERT_EQ(c.op_count(), 14u);
  EXPECT_EQ(c.ops()[0].type, quantum::GateType::RY);
  EXPECT_EQ(c.ops()[4].type, quantum::GateType::CZ);
  EXPECT_EQ(c.ops()[4].wire0, 0u);
  EXPECT_EQ(c.ops()[4].wire1, 1u);
  EXPECT_EQ(c.ops()[6].wire1, 3u);
}

TEST(Ansatz, HardwareEfficientMetadata) {
  EXPECT_EQ(ansatz_name(AnsatzKind::HardwareEfficient), "HEA");
  EXPECT_EQ(ansatz_from_name("hea"), AnsatzKind::HardwareEfficient);
  EXPECT_EQ(ansatz_weight_count(AnsatzKind::HardwareEfficient, 5, 3), 15u);
  const auto counts = ansatz_op_counts(AnsatzKind::HardwareEfficient, 4, 2);
  EXPECT_EQ(counts.rotation_ops, 8u);
  EXPECT_EQ(counts.entangling_ops, 6u);
}

TEST(Ansatz, HardwareEfficientSingleQubitHasNoCz) {
  quantum::Circuit c{1};
  append_ansatz(c, AnsatzKind::HardwareEfficient, 1, 2, 0);
  for (const auto& op : c.ops()) {
    EXPECT_EQ(op.type, quantum::GateType::RY);
  }
}

}  // namespace
}  // namespace qhdl::qnn
