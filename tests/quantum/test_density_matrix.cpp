#include "quantum/density_matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "quantum/channels.hpp"
#include "util/rng.hpp"

namespace qhdl::quantum {
namespace {

constexpr double kTol = 1e-12;

TEST(DensityMatrix, InitializesPureGroundState) {
  const DensityMatrix rho{2};
  EXPECT_EQ(rho.dimension(), 4u);
  EXPECT_NEAR(rho.trace().real(), 1.0, kTol);
  EXPECT_NEAR(rho.purity(), 1.0, kTol);
  EXPECT_NEAR(rho.at(0, 0).real(), 1.0, kTol);
}

TEST(DensityMatrix, RejectsBadSizes) {
  EXPECT_THROW(DensityMatrix{0}, std::invalid_argument);
  EXPECT_THROW(DensityMatrix{20}, std::invalid_argument);
}

TEST(DensityMatrix, FromStatevectorMatchesExpectations) {
  StateVector psi{2};
  psi.apply_single_qubit(gates::ry(0.8), 0);
  psi.apply_cnot(0, 1);
  const DensityMatrix rho = DensityMatrix::from_statevector(psi);
  EXPECT_NEAR(rho.trace().real(), 1.0, kTol);
  EXPECT_NEAR(rho.purity(), 1.0, kTol);
  EXPECT_NEAR(rho.expval_pauli_z(0), psi.expval_pauli_z(0), kTol);
  EXPECT_NEAR(rho.expval_pauli_z(1), psi.expval_pauli_z(1), kTol);
}

TEST(DensityMatrix, MaximallyMixed) {
  const DensityMatrix rho = DensityMatrix::maximally_mixed(2);
  EXPECT_NEAR(rho.trace().real(), 1.0, kTol);
  EXPECT_NEAR(rho.purity(), 0.25, kTol);
  EXPECT_NEAR(rho.expval_pauli_z(0), 0.0, kTol);
}

TEST(DensityMatrix, UnitaryEvolutionMatchesStatevector) {
  // Apply the same circuit to both representations; all ⟨Z⟩ must agree.
  StateVector psi{3};
  DensityMatrix rho{3};
  const auto apply_both = [&](auto&& fn) {
    fn(psi);
    // Mirror on rho via the dedicated methods below.
  };
  (void)apply_both;

  psi.apply_single_qubit(gates::hadamard(), 0);
  rho.apply_single_qubit(gates::hadamard(), 0);
  psi.apply_single_qubit(gates::rx(0.7), 1);
  rho.apply_single_qubit(gates::rx(0.7), 1);
  psi.apply_cnot(0, 2);
  rho.apply_cnot(0, 2);
  psi.apply_cz(1, 2);
  rho.apply_cz(1, 2);
  psi.apply_single_qubit(gates::ry(-1.1), 2);
  rho.apply_single_qubit(gates::ry(-1.1), 2);

  for (std::size_t w = 0; w < 3; ++w) {
    EXPECT_NEAR(rho.expval_pauli_z(w), psi.expval_pauli_z(w), 1e-11)
        << "wire " << w;
  }
  EXPECT_NEAR(rho.purity(), 1.0, 1e-11);
  EXPECT_LT(rho.hermiticity_error(), 1e-12);
}

TEST(DensityMatrix, ControlledRotationMatchesStatevector) {
  StateVector psi{2};
  DensityMatrix rho{2};
  psi.apply_single_qubit(gates::hadamard(), 0);
  rho.apply_single_qubit(gates::hadamard(), 0);
  psi.apply_controlled(gates::rx(0.9), 0, 1);
  rho.apply_controlled(gates::rx(0.9), 0, 1);
  EXPECT_NEAR(rho.expval_pauli_z(1), psi.expval_pauli_z(1), 1e-12);
}

TEST(DensityMatrix, ChannelsAreTracePreserving) {
  for (const auto& channel :
       {channels::depolarizing(0.2), channels::amplitude_damping(0.3),
        channels::phase_damping(0.4), channels::bit_flip(0.1),
        channels::phase_flip(0.25)}) {
    EXPECT_TRUE(channel.is_trace_preserving()) << channel.name;
  }
}

TEST(DensityMatrix, ChannelProbabilityValidated) {
  EXPECT_THROW(channels::depolarizing(-0.1), std::invalid_argument);
  EXPECT_THROW(channels::bit_flip(1.5), std::invalid_argument);
}

TEST(DensityMatrix, DepolarizingShrinksBlochVector) {
  // |+⟩ under depolarizing(p): ⟨X⟩ shrinks by (1 - 4p/3).
  DensityMatrix rho{1};
  rho.apply_single_qubit(gates::hadamard(), 0);
  const double p = 0.3;
  rho.apply_channel(channels::depolarizing(p), 0);
  EXPECT_NEAR(rho.trace().real(), 1.0, kTol);
  // ⟨X⟩ = 2 Re(ρ01).
  EXPECT_NEAR(2.0 * rho.at(0, 1).real(), 1.0 - 4.0 * p / 3.0, 1e-12);
  EXPECT_LT(rho.purity(), 1.0);
}

TEST(DensityMatrix, FullDepolarizingGivesMaximallyMixed) {
  DensityMatrix rho{1};
  rho.apply_single_qubit(gates::ry(0.7), 0);
  rho.apply_channel(channels::depolarizing(0.75), 0);
  // p = 3/4 is the fully-depolarizing point for this Kraus parameterization.
  EXPECT_NEAR(rho.at(0, 0).real(), 0.5, 1e-12);
  EXPECT_NEAR(rho.expval_pauli_z(0), 0.0, 1e-12);
}

TEST(DensityMatrix, AmplitudeDampingDecaysExcitedState) {
  DensityMatrix rho{1};
  rho.apply_single_qubit(gates::pauli_x(), 0);  // |1⟩
  rho.apply_channel(channels::amplitude_damping(0.4), 0);
  // P(1) = 1 - γ.
  EXPECT_NEAR(rho.probabilities()[1], 0.6, 1e-12);
  EXPECT_NEAR(rho.expval_pauli_z(0), 2.0 * 0.4 - 1.0 + 2.0 * 0.0, 1e-9);
}

TEST(DensityMatrix, PhaseDampingKillsCoherenceOnly) {
  DensityMatrix rho{1};
  rho.apply_single_qubit(gates::hadamard(), 0);
  const auto probs_before = rho.probabilities();
  rho.apply_channel(channels::phase_damping(0.5), 0);
  const auto probs_after = rho.probabilities();
  EXPECT_NEAR(probs_after[0], probs_before[0], 1e-12);  // populations kept
  EXPECT_LT(std::abs(rho.at(0, 1)), 0.5);               // coherence reduced
}

TEST(DensityMatrix, ReducedSingleQubitOfBellIsMixed) {
  StateVector bell{2};
  bell.apply_single_qubit(gates::hadamard(), 0);
  bell.apply_cnot(0, 1);
  const DensityMatrix rho = DensityMatrix::from_statevector(bell);
  const Mat2 reduced = rho.reduced_single_qubit(0);
  EXPECT_NEAR(reduced.m00.real(), 0.5, kTol);
  EXPECT_NEAR(reduced.m11.real(), 0.5, kTol);
  EXPECT_NEAR(std::abs(reduced.m01), 0.0, kTol);

  // Statevector fast path agrees.
  const Mat2 direct = reduced_single_qubit(bell, 0);
  EXPECT_NEAR(std::abs(direct.m00 - reduced.m00), 0.0, kTol);
  EXPECT_NEAR(std::abs(direct.m01 - reduced.m01), 0.0, kTol);
}

TEST(DensityMatrix, ReducedOfProductStateIsPure) {
  StateVector psi{2};
  psi.apply_single_qubit(gates::ry(0.9), 0);  // product state
  const Mat2 rho0 = reduced_single_qubit(psi, 0);
  const double purity = std::norm(rho0.m00) + std::norm(rho0.m01) +
                        std::norm(rho0.m10) + std::norm(rho0.m11);
  EXPECT_NEAR(purity, 1.0, kTol);
}

TEST(NoisyExecution, NoiselessMatchesStatevector) {
  Circuit circuit{2};
  circuit.parameterized_gate(GateType::RY, 0, 0);
  circuit.gate(GateType::CNOT, 0, 1);
  const std::vector<double> params{0.8};

  const auto noiseless = noisy_expvals(circuit, params,
                                       NoiseModel::noiseless(),
                                       std::vector<std::size_t>{0, 1});
  const StateVector psi = circuit.execute(params);
  EXPECT_NEAR(noiseless[0], psi.expval_pauli_z(0), 1e-12);
  EXPECT_NEAR(noiseless[1], psi.expval_pauli_z(1), 1e-12);
}

TEST(NoisyExecution, DepolarizingDampsExpectations) {
  Circuit circuit{2};
  circuit.parameterized_gate(GateType::RY, 0, 0);
  circuit.gate(GateType::CNOT, 0, 1);
  const std::vector<double> params{0.8};
  const std::vector<std::size_t> wires{0, 1};

  const auto clean =
      noisy_expvals(circuit, params, NoiseModel::noiseless(), wires);
  const auto noisy =
      noisy_expvals(circuit, params, NoiseModel::depolarizing(0.05), wires);
  for (std::size_t w = 0; w < 2; ++w) {
    EXPECT_LT(std::abs(noisy[w]), std::abs(clean[w]) + 1e-12) << "wire " << w;
  }
}

TEST(NoisyExecution, ParameterShiftMatchesFiniteDifferenceUnderNoise) {
  Circuit circuit{2};
  circuit.parameterized_gate(GateType::RY, 0, 0);
  circuit.gate(GateType::CNOT, 0, 1);
  circuit.parameterized_gate(GateType::RX, 1, 1);
  std::vector<double> params{0.7, -0.4};
  const NoiseModel noise = NoiseModel::depolarizing(0.03);

  const auto analytic =
      noisy_parameter_shift_gradient(circuit, params, noise, 1);

  for (std::size_t i = 0; i < params.size(); ++i) {
    const double eps = 1e-6;
    const double saved = params[i];
    params[i] = saved + eps;
    const double plus = noisy_expvals(circuit, params, noise,
                                      std::vector<std::size_t>{1})[0];
    params[i] = saved - eps;
    const double minus = noisy_expvals(circuit, params, noise,
                                       std::vector<std::size_t>{1})[0];
    params[i] = saved;
    EXPECT_NEAR(analytic[i], (plus - minus) / (2 * eps), 1e-7)
        << "param " << i;
  }
}

TEST(NoisyExecution, TraceStaysOneThroughDeepNoisyCircuit) {
  Circuit circuit{3};
  for (std::size_t p = 0; p < 6; ++p) {
    circuit.parameterized_gate(GateType::RX, p, p % 3);
  }
  circuit.gate(GateType::CNOT, 0, 1).gate(GateType::CNOT, 1, 2);
  util::Rng rng{5};
  const auto params = rng.uniform_vector(6, -3.0, 3.0);

  NoiseModel noise;
  noise.per_gate_channels.push_back(channels::amplitude_damping(0.02));
  noise.per_gate_channels.push_back(channels::phase_damping(0.01));
  const DensityMatrix rho = run_noisy(circuit, params, noise);
  EXPECT_NEAR(rho.trace().real(), 1.0, 1e-9);
  EXPECT_LE(rho.purity(), 1.0 + 1e-9);
  EXPECT_LT(rho.hermiticity_error(), 1e-10);
}

}  // namespace
}  // namespace qhdl::quantum
