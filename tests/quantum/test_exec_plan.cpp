// Compiled execution plans (DESIGN.md §12): golden compiled-vs-uncompiled
// equivalence for every gate × position × {3,4,5} qubits, fusion/cancellation
// lowering invariants, the process-wide plan cache (determinism across
// threads, LRU eviction, fault-injected flushes), and the strict parameter
// size contract the compile pass relies on.
#include <optional>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "qnn/ansatz.hpp"
#include "qnn/encoding.hpp"
#include "quantum/adjoint_diff.hpp"
#include "quantum/circuit.hpp"
#include "quantum/exec_plan.hpp"
#include "quantum/gates.hpp"
#include "quantum/kernels.hpp"
#include "quantum/observable.hpp"
#include "quantum/statevector.hpp"
#include "quantum/statevector_batch.hpp"
#include "util/fault_injection.hpp"
#include "util/rng.hpp"

namespace {

using namespace qhdl;
using quantum::Circuit;
using quantum::ExecutionPlan;
using quantum::FusedOp;
using quantum::GateType;
using quantum::Observable;
using quantum::StateVector;
using quantum::StateVectorBatch;

constexpr double kTol = 1e-12;

/// Forces per-call lowering inside the scope; restores the default on exit.
class UncompiledScope {
 public:
  explicit UncompiledScope(bool uncompiled) {
    quantum::kernels::set_force_uncompiled(uncompiled);
  }
  ~UncompiledScope() {
    quantum::kernels::set_force_uncompiled(std::nullopt);
  }
};

const std::vector<GateType> kAllGates = {
    GateType::PauliX, GateType::PauliY, GateType::PauliZ,
    GateType::Hadamard, GateType::S, GateType::T,
    GateType::RX, GateType::RY, GateType::RZ, GateType::PhaseShift,
    GateType::CNOT, GateType::CZ, GateType::SWAP,
    GateType::CRX, GateType::CRY, GateType::CRZ,
    GateType::RXX, GateType::RYY, GateType::RZZ,
};

void expect_states_close(const StateVector& a, const StateVector& b,
                         double tolerance, const std::string& label) {
  ASSERT_EQ(a.dimension(), b.dimension()) << label;
  for (std::size_t i = 0; i < a.dimension(); ++i) {
    EXPECT_NEAR(a.amplitudes()[i].real(), b.amplitudes()[i].real(),
                tolerance)
        << label << " amplitude " << i << " (real)";
    EXPECT_NEAR(a.amplitudes()[i].imag(), b.amplitudes()[i].imag(),
                tolerance)
        << label << " amplitude " << i << " (imag)";
  }
}

Circuit make_sel_circuit(std::size_t qubits, std::size_t depth,
                         std::vector<double>& params, util::Rng& rng) {
  Circuit circuit{qubits};
  qnn::AngleEncoding encoding;
  std::size_t offset = encoding.append(circuit, qubits);
  offset += qnn::append_ansatz(circuit, qnn::AnsatzKind::StronglyEntangling,
                               qubits, depth, offset);
  params = rng.uniform_vector(offset, -2.0, 2.0);
  return circuit;
}

/// Runs `circuit` compiled and uncompiled from |0...0> and checks 1e-12
/// amplitude agreement.
void check_compiled_matches_uncompiled(const Circuit& circuit,
                                       std::span<const double> params,
                                       const std::string& label) {
  StateVector compiled{circuit.num_qubits()};
  StateVector uncompiled{circuit.num_qubits()};
  {
    const UncompiledScope scope{false};
    circuit.run(compiled, params);
  }
  {
    const UncompiledScope scope{true};
    circuit.run(uncompiled, params);
  }
  expect_states_close(compiled, uncompiled, kTol, label);
}

TEST(ExecPlan, EveryGateEveryPositionMatchesUncompiled) {
  // Golden suite: each gate at each position, sandwiched between a mixing
  // prefix (so the state is non-trivial and complex) and neighbors that
  // exercise the chain fuser around it.
  util::Rng rng{2024};
  for (const std::size_t qubits : {3u, 4u, 5u}) {
    for (const GateType type : kAllGates) {
      const std::size_t arity = quantum::gate_arity(type);
      for (std::size_t w0 = 0; w0 < qubits; ++w0) {
        const std::size_t w1 =
            arity == 2 ? (w0 + 1 + rng.index(qubits - 1)) % qubits : SIZE_MAX;
        Circuit circuit{qubits};
        std::size_t slot = 0;
        for (std::size_t w = 0; w < qubits; ++w) {
          circuit.gate(GateType::Hadamard, w);
          circuit.parameterized_gate(GateType::RY, slot++, w);
        }
        for (std::size_t w = 0; w + 1 < qubits; ++w) {
          circuit.gate(GateType::CNOT, w, w + 1);
        }
        if (quantum::gate_is_parameterized(type)) {
          circuit.parameterized_gate(type, slot++, w0, w1);
        } else {
          circuit.gate(type, w0, w1);
        }
        circuit.parameterized_gate(GateType::RX, slot++, w0);
        const auto params = rng.uniform_vector(slot, -3.0, 3.0);
        check_compiled_matches_uncompiled(
            circuit, params,
            quantum::gate_name(type) + " q=" + std::to_string(qubits) +
                " w0=" + std::to_string(w0));
      }
    }
  }
}

TEST(ExecPlan, SelAnsatzMatchesUncompiledAllDepths) {
  util::Rng rng{31};
  for (const std::size_t qubits : {3u, 4u, 5u}) {
    for (const std::size_t depth : {1u, 4u, 10u}) {
      std::vector<double> params;
      const Circuit circuit = make_sel_circuit(qubits, depth, params, rng);
      check_compiled_matches_uncompiled(
          circuit, params,
          "SEL q=" + std::to_string(qubits) + " d=" + std::to_string(depth));
    }
  }
}

TEST(ExecPlan, RunBatchBitIdenticalToUncompiled) {
  util::Rng rng{17};
  for (const std::size_t qubits : {3u, 5u}) {
    std::vector<double> proto;
    const Circuit circuit = make_sel_circuit(qubits, 3, proto, rng);
    const std::size_t stride = proto.size();
    const std::size_t batch = 6;
    std::vector<double> params(batch * stride);
    for (std::size_t b = 0; b < batch; ++b) {
      for (std::size_t p = 0; p < stride; ++p) {
        params[b * stride + p] =
            p < qubits ? rng.uniform(-2.0, 2.0) : proto[p];
      }
    }
    StateVectorBatch compiled{qubits, batch};
    StateVectorBatch uncompiled{qubits, batch};
    {
      const UncompiledScope scope{false};
      circuit.run_batch(compiled, params, stride);
    }
    {
      const UncompiledScope scope{true};
      circuit.run_batch(uncompiled, params, stride);
    }
    // The compiled flat stream drives the exact same batch kernels, so the
    // amplitudes must be bit-identical, not merely close.
    const auto lhs = compiled.amplitudes();
    const auto rhs = uncompiled.amplitudes();
    ASSERT_EQ(lhs.size(), rhs.size());
    for (std::size_t i = 0; i < lhs.size(); ++i) {
      EXPECT_EQ(lhs[i].real(), rhs[i].real()) << "amplitude " << i;
      EXPECT_EQ(lhs[i].imag(), rhs[i].imag()) << "amplitude " << i;
    }
  }
}

TEST(ExecPlan, AdjointVjpBitIdenticalToUncompiled) {
  util::Rng rng{23};
  const std::size_t qubits = 4;
  std::vector<double> params;
  const Circuit circuit = make_sel_circuit(qubits, 3, params, rng);
  std::vector<Observable> observables;
  std::vector<double> upstream;
  for (std::size_t w = 0; w < qubits; ++w) {
    observables.push_back(Observable::pauli_z(w));
    upstream.push_back(rng.uniform(-1.0, 1.0));
  }
  quantum::AdjointVjpResult compiled, uncompiled;
  {
    const UncompiledScope scope{false};
    compiled = quantum::adjoint_vjp(circuit, params, observables, upstream);
  }
  {
    const UncompiledScope scope{true};
    uncompiled =
        quantum::adjoint_vjp(circuit, params, observables, upstream);
  }
  ASSERT_EQ(compiled.gradient.size(), uncompiled.gradient.size());
  for (std::size_t p = 0; p < compiled.gradient.size(); ++p) {
    EXPECT_EQ(compiled.gradient[p], uncompiled.gradient[p]) << "param " << p;
  }
  for (std::size_t k = 0; k < observables.size(); ++k) {
    EXPECT_EQ(compiled.expectations[k], uncompiled.expectations[k])
        << "obs " << k;
  }
}

TEST(ExecPlan, InvolutionPairsCancel) {
  // X·X, CNOT·CNOT, CZ·CZ (reversed wires too — CZ is symmetric), SWAP·SWAP
  // are pure permutations/sign flips; the peephole pass removes them and the
  // compiled state still matches the uncompiled one exactly.
  Circuit circuit{3};
  circuit.gate(GateType::Hadamard, 0);
  circuit.gate(GateType::PauliX, 1);
  circuit.gate(GateType::PauliX, 1);
  circuit.gate(GateType::CNOT, 0, 1);
  circuit.gate(GateType::CNOT, 0, 1);
  circuit.gate(GateType::CZ, 1, 2);
  circuit.gate(GateType::CZ, 2, 1);
  circuit.gate(GateType::SWAP, 0, 2);
  circuit.gate(GateType::SWAP, 2, 0);
  circuit.parameterized_gate(GateType::RY, 0, 2);

  const auto plan = quantum::compile_circuit(circuit);
  EXPECT_EQ(plan->source_op_count(), 10u);
  EXPECT_EQ(plan->cancelled_op_count(), 8u);
  EXPECT_EQ(plan->flat_ops().size(), 2u);  // Hadamard + RY survive

  const std::vector<double> params = {0.37};
  check_compiled_matches_uncompiled(circuit, params, "involution pairs");
}

TEST(ExecPlan, CnotReversedWiresDoesNotCancel) {
  // CNOT(0,1)·CNOT(1,0) is NOT identity — the cancellation must compare
  // control and target exactly, not as an unordered pair.
  Circuit circuit{2};
  circuit.gate(GateType::Hadamard, 0);
  circuit.gate(GateType::CNOT, 0, 1);
  circuit.gate(GateType::CNOT, 1, 0);
  const auto plan = quantum::compile_circuit(circuit);
  EXPECT_EQ(plan->cancelled_op_count(), 0u);
  check_compiled_matches_uncompiled(circuit, {}, "reversed CNOT");
}

TEST(ExecPlan, FixedSingleQubitChainsPrecompute) {
  // H·S·H on one wire: fixed, not all diagonal -> one FixedChain op.
  Circuit circuit{2};
  circuit.gate(GateType::Hadamard, 0);
  circuit.gate(GateType::S, 0);
  circuit.gate(GateType::Hadamard, 0);
  const auto plan = quantum::compile_circuit(circuit);
  ASSERT_EQ(plan->fused_ops().size(), 1u);
  EXPECT_EQ(plan->fused_ops()[0].kind, FusedOp::Kind::FixedChain);
  EXPECT_EQ(plan->fused_ops()[0].gate_count, 3u);
  check_compiled_matches_uncompiled(circuit, {}, "H S H fixed chain");
}

TEST(ExecPlan, DiagonalChainsPrecomputeDiagonal) {
  // S·T·Z on one wire: fixed and all diagonal -> one DiagonalChain op.
  Circuit circuit{2};
  circuit.gate(GateType::S, 1);
  circuit.gate(GateType::T, 1);
  circuit.gate(GateType::PauliZ, 1);
  const auto plan = quantum::compile_circuit(circuit);
  ASSERT_EQ(plan->fused_ops().size(), 1u);
  EXPECT_EQ(plan->fused_ops()[0].kind, FusedOp::Kind::DiagonalChain);
  check_compiled_matches_uncompiled(circuit, {}, "S T Z diagonal chain");
}

TEST(ExecPlan, AdjacentFixedTwoQubitGatesFuseToPair) {
  // CNOT(0,1)·CZ(0,1) and the wire-order-flipped CNOT(0,1)·CZ(1,0) both
  // collapse to one precomputed 4x4; parameterized two-qubit gates do not.
  {
    Circuit circuit{3};
    circuit.gate(GateType::Hadamard, 0);
    circuit.gate(GateType::Hadamard, 1);
    circuit.gate(GateType::CNOT, 0, 1);
    circuit.gate(GateType::CZ, 0, 1);
    const auto plan = quantum::compile_circuit(circuit);
    bool saw_pair = false;
    for (const FusedOp& op : plan->fused_ops()) {
      if (op.kind == FusedOp::Kind::FusedPair) {
        saw_pair = true;
        EXPECT_EQ(op.gate_count, 2u);
      }
    }
    EXPECT_TRUE(saw_pair);
    check_compiled_matches_uncompiled(circuit, {}, "CNOT CZ same order");
  }
  {
    Circuit circuit{3};
    circuit.gate(GateType::Hadamard, 0);
    circuit.gate(GateType::Hadamard, 1);
    circuit.gate(GateType::CNOT, 0, 1);
    circuit.gate(GateType::CZ, 1, 0);
    const auto plan = quantum::compile_circuit(circuit);
    bool saw_pair = false;
    for (const FusedOp& op : plan->fused_ops()) {
      if (op.kind == FusedOp::Kind::FusedPair) saw_pair = true;
    }
    EXPECT_TRUE(saw_pair);
    check_compiled_matches_uncompiled(circuit, {}, "CNOT CZ flipped order");
  }
  {
    Circuit circuit{3};
    circuit.gate(GateType::Hadamard, 0);
    circuit.parameterized_gate(GateType::CRX, 0, 0, 1);
    circuit.parameterized_gate(GateType::CRZ, 1, 0, 1);
    const auto plan = quantum::compile_circuit(circuit);
    for (const FusedOp& op : plan->fused_ops()) {
      EXPECT_NE(op.kind, FusedOp::Kind::FusedPair)
          << "parameterized two-qubit gates must not pair-fuse";
    }
    const std::vector<double> cr_params = {0.4, -0.9};
    check_compiled_matches_uncompiled(circuit, cr_params,
                                      "parameterized CR chain");
  }
}

TEST(ExecPlan, StructureKeyDistinguishesAngleAndShape) {
  Circuit a{3};
  a.gate(GateType::Hadamard, 0);
  Circuit b{3};
  b.gate(GateType::Hadamard, 1);  // differs in wire
  Circuit c{4};
  c.gate(GateType::Hadamard, 0);  // differs in qubit count
  Circuit d{3};
  d.gate(GateType::RZ, 0, SIZE_MAX, 0.25);
  Circuit e{3};
  e.gate(GateType::RZ, 0, SIZE_MAX, 0.250000000000001);  // differs in angle

  std::set<std::string> keys;
  for (const Circuit* circuit : {&a, &b, &c, &d, &e}) {
    keys.insert(quantum::compile_circuit(*circuit)->structure_key());
  }
  EXPECT_EQ(keys.size(), 5u) << "all five structures must key differently";

  Circuit a2{3};
  a2.gate(GateType::Hadamard, 0);
  EXPECT_EQ(quantum::compile_circuit(a)->structure_key(),
            quantum::compile_circuit(a2)->structure_key());
  EXPECT_EQ(quantum::compile_circuit(a)->structure_hash(),
            quantum::compile_circuit(a2)->structure_hash());
}

TEST(ExecPlan, CacheHitsShareOnePlanAcrossThreads) {
  // Pin compiled execution so the test also passes under a
  // QHDL_FORCE_UNCOMPILED environment (the forced-uncompiled CI leg).
  const UncompiledScope scope{false};
  quantum::plan_cache::clear();
  quantum::plan_cache::reset_stats();

  util::Rng rng{5};
  std::vector<double> params;
  const std::size_t threads = 8;
  std::vector<std::shared_ptr<const ExecutionPlan>> plans(threads);
  {
    // Each thread builds its own structurally-identical circuit and asks
    // for its plan concurrently; every one must get the same object and
    // the structure must compile exactly once.
    std::vector<std::thread> workers;
    for (std::size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        util::Rng thread_rng{7};
        std::vector<double> p;
        const Circuit circuit = make_sel_circuit(4, 3, p, thread_rng);
        plans[t] = circuit.compiled_plan();
      });
    }
    for (auto& w : workers) w.join();
  }
  for (std::size_t t = 0; t < threads; ++t) {
    ASSERT_NE(plans[t], nullptr) << "thread " << t;
    EXPECT_EQ(plans[t], plans[0]) << "thread " << t;
  }
  const auto stats = quantum::plan_cache::stats();
  EXPECT_EQ(stats.compiled, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, threads - 1);
  EXPECT_EQ(stats.size, 1u);
}

TEST(ExecPlan, MemoizedSlotInvalidatesOnMutation) {
  const UncompiledScope scope{false};
  Circuit circuit{3};
  circuit.gate(GateType::Hadamard, 0);
  const auto before = circuit.compiled_plan();
  ASSERT_NE(before, nullptr);
  EXPECT_EQ(circuit.compiled_plan(), before) << "stable while unmutated";
  circuit.gate(GateType::CNOT, 0, 1);
  const auto after = circuit.compiled_plan();
  ASSERT_NE(after, nullptr);
  EXPECT_NE(after, before);
  EXPECT_NE(after->structure_key(), before->structure_key());
}

TEST(ExecPlan, LruEvictionHonorsCapacity) {
  const UncompiledScope scope{false};
  quantum::plan_cache::clear();
  quantum::plan_cache::reset_stats();
  quantum::plan_cache::set_capacity(2);

  const auto touch = [](std::size_t qubits, std::size_t wire) {
    Circuit circuit{qubits};
    circuit.gate(GateType::Hadamard, wire);
    return circuit.compiled_plan();
  };
  touch(4, 0);  // A
  touch(4, 1);  // B
  touch(4, 0);  // A again: hit, refreshes A's recency
  touch(4, 2);  // C: evicts B (least recently used)
  EXPECT_EQ(quantum::plan_cache::size(), 2u);
  EXPECT_EQ(quantum::plan_cache::stats().evictions, 1u);

  touch(4, 0);  // A must still be resident
  EXPECT_EQ(quantum::plan_cache::stats().hits, 2u);
  touch(4, 1);  // B was evicted -> recompiles
  EXPECT_EQ(quantum::plan_cache::stats().compiled, 4u);

  quantum::plan_cache::set_capacity(std::nullopt);
  quantum::plan_cache::clear();
}

TEST(ExecPlan, FaultInjectionFlushesCache) {
  auto& injector = util::FaultInjector::instance();
  quantum::plan_cache::clear();
  quantum::plan_cache::reset_stats();
  injector.configure("plan=evict@2");

  Circuit circuit{3};
  circuit.gate(GateType::Hadamard, 0);
  Circuit other{3};
  other.gate(GateType::Hadamard, 1);

  ASSERT_NE(quantum::compile_circuit(circuit), nullptr);
  quantum::plan_cache::get_or_compile(circuit);  // arrival 1: no fault
  EXPECT_EQ(quantum::plan_cache::size(), 1u);
  quantum::plan_cache::get_or_compile(other);  // arrival 2: flush fires
  // The flush empties the cache before the lookup, so `other` recompiles
  // into an empty cache and `circuit`'s plan is gone.
  EXPECT_EQ(quantum::plan_cache::size(), 1u);
  EXPECT_GE(quantum::plan_cache::stats().evictions, 1u);
  quantum::plan_cache::get_or_compile(circuit);  // arrival 3: miss again
  EXPECT_EQ(quantum::plan_cache::stats().compiled, 3u);

  injector.configure("");
  quantum::plan_cache::clear();
}

TEST(ExecPlan, ForcedUncompiledDisablesPlans) {
  Circuit circuit{3};
  circuit.gate(GateType::Hadamard, 0);
  {
    const UncompiledScope scope{true};
    EXPECT_EQ(circuit.compiled_plan(), nullptr);
  }
  // force_generic implies force_uncompiled: the generic path never compiles.
  quantum::kernels::set_force_generic(true);
  EXPECT_TRUE(quantum::kernels::force_uncompiled());
  EXPECT_EQ(circuit.compiled_plan(), nullptr);
  quantum::kernels::set_force_generic(std::nullopt);
  {
    const UncompiledScope scope{false};
    EXPECT_NE(circuit.compiled_plan(), nullptr);
  }
}

TEST(ExecPlan, RunRejectsWrongSizedParams) {
  Circuit circuit{2};
  circuit.parameterized_gate(GateType::RX, 0, 0);
  circuit.parameterized_gate(GateType::RY, 1, 1);  // (param 1, wire 1)
  StateVector state{2};
  const std::vector<double> short_params = {0.1};
  const std::vector<double> long_params = {0.1, 0.2, 0.3};
  const std::vector<double> exact = {0.1, 0.2};
  EXPECT_THROW(circuit.run(state, short_params), std::invalid_argument);
  EXPECT_THROW(circuit.run(state, long_params), std::invalid_argument);
  EXPECT_NO_THROW(circuit.run(state, exact));

  StateVectorBatch batch{2, 2};
  // run_batch needs exactly rows * stride values.
  const std::vector<double> batch_exact = {0.1, 0.2, 0.3, 0.4};
  const std::vector<double> batch_long = {0.1, 0.2, 0.3, 0.4, 0.5};
  EXPECT_THROW(circuit.run_batch(batch, batch_long, 2),
               std::invalid_argument);
  EXPECT_NO_THROW(circuit.run_batch(batch, batch_exact, 2));
}

TEST(ExecPlan, ForceUncompiledOverrideLatches) {
  quantum::kernels::set_force_uncompiled(true);
  EXPECT_TRUE(quantum::kernels::force_uncompiled());
  quantum::kernels::set_force_uncompiled(false);
  EXPECT_FALSE(quantum::kernels::force_uncompiled());
  quantum::kernels::set_force_uncompiled(std::nullopt);
}

}  // namespace
