// Golden-state equivalence suite for the specialized gate kernels
// (DESIGN.md §8): every gate type × every qubit position × {3,4,5} qubits,
// specialized dispatch must match the generic dense path to 1e-12 on a
// random non-trivial state — plus fused-chain, batched-SoA, and
// gradient-preservation properties.
#include <cmath>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "qnn/ansatz.hpp"
#include "qnn/encoding.hpp"
#include "quantum/adjoint_diff.hpp"
#include "quantum/circuit.hpp"
#include "quantum/gates.hpp"
#include "quantum/kernels.hpp"
#include "quantum/observable.hpp"
#include "quantum/statevector.hpp"
#include "quantum/statevector_batch.hpp"
#include "util/rng.hpp"

namespace {

using namespace qhdl;
using quantum::Circuit;
using quantum::GateType;
using quantum::Observable;
using quantum::StateVector;
using quantum::StateVectorBatch;

constexpr double kTol = 1e-12;

/// Scopes the escape hatch: specialized inside SpecializedScope{false},
/// generic inside SpecializedScope{true}; restores the default on exit.
class KernelScope {
 public:
  explicit KernelScope(bool generic) {
    quantum::kernels::set_force_generic(generic);
  }
  ~KernelScope() { quantum::kernels::set_force_generic(std::nullopt); }
};

const std::vector<GateType> kAllGates = {
    GateType::PauliX, GateType::PauliY, GateType::PauliZ,
    GateType::Hadamard, GateType::S, GateType::T,
    GateType::RX, GateType::RY, GateType::RZ, GateType::PhaseShift,
    GateType::CNOT, GateType::CZ, GateType::SWAP,
    GateType::CRX, GateType::CRY, GateType::CRZ,
    GateType::RXX, GateType::RYY, GateType::RZZ,
};

/// A reproducible, fully-entangled, non-real state: Hadamard + T on every
/// wire, then a CNOT ring, then per-wire RY with distinct angles.
StateVector random_state(std::size_t qubits, util::Rng& rng) {
  StateVector state{qubits};
  const KernelScope scope{true};  // preparation always via generic kernels
  for (std::size_t w = 0; w < qubits; ++w) {
    state.apply_single_qubit(quantum::gates::hadamard(), w);
    state.apply_single_qubit(quantum::gates::t(), w);
    state.apply_single_qubit(quantum::gates::ry(rng.uniform(-2.0, 2.0)), w);
  }
  for (std::size_t w = 0; w + 1 < qubits; ++w) state.apply_cnot(w, w + 1);
  return state;
}

void expect_states_close(const StateVector& a, const StateVector& b,
                         double tolerance, const std::string& label) {
  ASSERT_EQ(a.dimension(), b.dimension()) << label;
  for (std::size_t i = 0; i < a.dimension(); ++i) {
    EXPECT_NEAR(a.amplitudes()[i].real(), b.amplitudes()[i].real(),
                tolerance)
        << label << " amplitude " << i << " (real)";
    EXPECT_NEAR(a.amplitudes()[i].imag(), b.amplitudes()[i].imag(),
                tolerance)
        << label << " amplitude " << i << " (imag)";
  }
}

std::string case_label(GateType type, std::size_t qubits, std::size_t w0,
                       std::size_t w1) {
  std::string label = quantum::gate_name(type) + " q=" +
                      std::to_string(qubits) + " w0=" + std::to_string(w0);
  if (w1 != SIZE_MAX) label += " w1=" + std::to_string(w1);
  return label;
}

/// Applies apply_fn under both kernel modes to copies of the same state and
/// checks 1e-12 agreement.
template <typename ApplyFn>
void check_both_modes(const StateVector& initial, const ApplyFn& apply_fn,
                      const std::string& label) {
  StateVector specialized = initial;
  StateVector generic = initial;
  {
    const KernelScope scope{false};
    apply_fn(specialized);
  }
  {
    const KernelScope scope{true};
    apply_fn(generic);
  }
  expect_states_close(specialized, generic, kTol, label);
}

TEST(KernelEquivalence, EveryGateEveryPositionMatchesGeneric) {
  util::Rng rng{123};
  for (const std::size_t qubits : {3u, 4u, 5u}) {
    for (const GateType type : kAllGates) {
      const double theta = rng.uniform(-3.0, 3.0);
      const std::size_t arity = quantum::gate_arity(type);
      for (std::size_t w0 = 0; w0 < qubits; ++w0) {
        if (arity == 1) {
          const StateVector initial = random_state(qubits, rng);
          check_both_modes(
              initial,
              [&](StateVector& s) {
                quantum::apply_gate(s, type, theta, w0);
              },
              case_label(type, qubits, w0, SIZE_MAX));
        } else {
          for (std::size_t w1 = 0; w1 < qubits; ++w1) {
            if (w1 == w0) continue;
            const StateVector initial = random_state(qubits, rng);
            check_both_modes(
                initial,
                [&](StateVector& s) {
                  quantum::apply_gate(s, type, theta, w0, w1);
                },
                case_label(type, qubits, w0, w1));
          }
        }
      }
    }
  }
}

TEST(KernelEquivalence, InverseGatesMatchGeneric) {
  util::Rng rng{321};
  for (const std::size_t qubits : {3u, 5u}) {
    for (const GateType type : kAllGates) {
      const double theta = rng.uniform(-3.0, 3.0);
      const std::size_t w0 = rng.index(qubits);
      std::size_t w1 = SIZE_MAX;
      if (quantum::gate_arity(type) == 2) {
        w1 = (w0 + 1 + rng.index(qubits - 1)) % qubits;
      }
      const StateVector initial = random_state(qubits, rng);
      check_both_modes(
          initial,
          [&](StateVector& s) {
            quantum::apply_gate_inverse(s, type, theta, w0, w1);
          },
          "inverse " + case_label(type, qubits, w0, w1));
    }
  }
}

TEST(KernelEquivalence, InverseUndoesGate) {
  util::Rng rng{77};
  const KernelScope scope{false};
  for (const GateType type : kAllGates) {
    const std::size_t qubits = 4;
    const double theta = rng.uniform(-3.0, 3.0);
    const std::size_t w0 = rng.index(qubits);
    std::size_t w1 = SIZE_MAX;
    if (quantum::gate_arity(type) == 2) {
      w1 = (w0 + 1 + rng.index(qubits - 1)) % qubits;
    }
    const StateVector initial = random_state(qubits, rng);
    StateVector state = initial;
    quantum::apply_gate(state, type, theta, w0, w1);
    quantum::apply_gate_inverse(state, type, theta, w0, w1);
    expect_states_close(state, initial, kTol,
                        "U†U " + case_label(type, qubits, w0, w1));
  }
}

TEST(KernelEquivalence, DerivativeKernelsMatchGeneric) {
  util::Rng rng{55};
  const std::vector<GateType> parameterized = {
      GateType::RX,  GateType::RY,  GateType::RZ,  GateType::PhaseShift,
      GateType::CRX, GateType::CRY, GateType::CRZ, GateType::RXX,
      GateType::RYY, GateType::RZZ};
  for (const std::size_t qubits : {3u, 4u, 5u}) {
    for (const GateType type : parameterized) {
      const double theta = rng.uniform(-3.0, 3.0);
      for (std::size_t w0 = 0; w0 < qubits; ++w0) {
        std::size_t w1 = SIZE_MAX;
        if (quantum::gate_arity(type) == 2) w1 = (w0 + 1) % qubits;
        const StateVector initial = random_state(qubits, rng);
        check_both_modes(
            initial,
            [&](StateVector& s) {
              quantum::apply_gate_derivative(s, type, theta, w0, w1);
            },
            "derivative " + case_label(type, qubits, w0, w1));
      }
    }
  }
}

Circuit make_sel_circuit(std::size_t qubits, std::size_t depth,
                         std::vector<double>& params, util::Rng& rng) {
  Circuit circuit{qubits};
  qnn::AngleEncoding encoding;
  std::size_t offset = encoding.append(circuit, qubits);
  offset += qnn::append_ansatz(circuit, qnn::AnsatzKind::StronglyEntangling,
                               qubits, depth, offset);
  params = rng.uniform_vector(offset, -2.0, 2.0);
  return circuit;
}

TEST(KernelEquivalence, FusedCircuitRunMatchesGeneric) {
  // SEL rot-triples produce 3-gate chains on each wire — the fusion path.
  util::Rng rng{99};
  for (const std::size_t qubits : {3u, 4u, 5u}) {
    std::vector<double> params;
    const Circuit circuit = make_sel_circuit(qubits, 4, params, rng);
    StateVector fused{qubits};
    StateVector generic{qubits};
    quantum::kernels::reset_stats();
    {
      const KernelScope scope{false};
      circuit.run(fused, params);
    }
    const auto stats = quantum::kernels::stats();
    EXPECT_GT(stats.fused, 0u) << "SEL rot chains should fuse";
    EXPECT_GT(stats.fused_gates, stats.fused)
        << "each fused chain absorbs >= 2 gates";
    {
      const KernelScope scope{true};
      circuit.run(generic, params);
    }
    expect_states_close(fused, generic, kTol,
                        "SEL q=" + std::to_string(qubits));
  }
}

TEST(KernelEquivalence, SpecializedExpectationsBitIdenticalNoFusion) {
  // On a fusion-free circuit (no adjacent same-wire single-qubit chains),
  // the specialized kernels reproduce the generic path's expectations
  // bit-for-bit: each kernel performs the same operations in the same
  // order as the dense matvec.
  util::Rng rng{42};
  const std::size_t qubits = 4;
  Circuit circuit{qubits};
  circuit.parameterized_gate(GateType::RX, 0, 0);
  circuit.parameterized_gate(GateType::RY, 1, 1);
  circuit.parameterized_gate(GateType::RZ, 2, 2);
  circuit.parameterized_gate(GateType::PhaseShift, 3, 3);
  circuit.gate(GateType::CNOT, 0, 1);
  circuit.gate(GateType::CZ, 2, 3);
  const auto params = rng.uniform_vector(4, -2.0, 2.0);

  std::vector<double> specialized, generic;
  {
    const KernelScope scope{false};
    const StateVector psi = circuit.execute(params);
    for (std::size_t w = 0; w < qubits; ++w) {
      specialized.push_back(psi.expval_pauli_z(w));
    }
  }
  {
    const KernelScope scope{true};
    const StateVector psi = circuit.execute(params);
    for (std::size_t w = 0; w < qubits; ++w) {
      generic.push_back(psi.expval_pauli_z(w));
    }
  }
  for (std::size_t w = 0; w < qubits; ++w) {
    EXPECT_DOUBLE_EQ(specialized[w], generic[w]) << "wire " << w;
  }
}

TEST(KernelEquivalence, BatchedRunMatchesPerRow) {
  util::Rng rng{7};
  for (const std::size_t qubits : {3u, 4u, 5u}) {
    std::vector<double> params_proto;
    const Circuit circuit = make_sel_circuit(qubits, 3, params_proto, rng);
    const std::size_t stride = params_proto.size();
    const std::size_t batch = 6;
    // Rows share ansatz weights but differ in encoding angles (the hybrid
    // layer's shape) — exercises shared AND per-row kernels.
    std::vector<double> params(batch * stride);
    for (std::size_t b = 0; b < batch; ++b) {
      for (std::size_t p = 0; p < stride; ++p) {
        params[b * stride + p] =
            p < qubits ? rng.uniform(-2.0, 2.0) : params_proto[p];
      }
    }
    const KernelScope scope{false};
    StateVectorBatch sv_batch{qubits, batch};
    circuit.run_batch(sv_batch, params, stride);
    for (std::size_t b = 0; b < batch; ++b) {
      StateVector row{qubits};
      // Per-row reference without fusion: gate-by-gate dispatch, the same
      // arithmetic order the batch kernels use per row.
      const std::span<const double> row_params{params.data() + b * stride,
                                               stride};
      for (const quantum::Op& op : circuit.ops()) {
        quantum::apply_gate(row, op.type, op.angle(row_params), op.wire0,
                            op.wire1);
      }
      expect_states_close(sv_batch.extract_row(b), row, kTol,
                          "batch row " + std::to_string(b));
    }
  }
}

TEST(KernelEquivalence, BatchedVjpMatchesPerRowVjp) {
  util::Rng rng{8};
  const std::size_t qubits = 4;
  std::vector<double> params_proto;
  const Circuit circuit = make_sel_circuit(qubits, 3, params_proto, rng);
  const std::size_t stride = params_proto.size();
  const std::size_t batch = 5;
  std::vector<double> params(batch * stride);
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t p = 0; p < stride; ++p) {
      params[b * stride + p] =
          p < qubits ? rng.uniform(-2.0, 2.0) : params_proto[p];
    }
  }
  std::vector<Observable> observables;
  for (std::size_t w = 0; w < qubits; ++w) {
    observables.push_back(Observable::pauli_z(w));
  }
  std::vector<double> upstream(batch * qubits);
  for (auto& u : upstream) u = rng.uniform(-1.0, 1.0);

  const KernelScope scope{false};
  const auto batched = quantum::adjoint_vjp_batch(
      circuit, params, stride, batch, observables, upstream);
  ASSERT_EQ(batched.expectations.size(), batch * qubits);
  ASSERT_EQ(batched.gradient.size(), batch * stride);

  for (std::size_t b = 0; b < batch; ++b) {
    const std::span<const double> row_params{params.data() + b * stride,
                                             stride};
    const std::span<const double> row_up{upstream.data() + b * qubits,
                                         qubits};
    const auto row =
        quantum::adjoint_vjp(circuit, row_params, observables, row_up);
    for (std::size_t k = 0; k < qubits; ++k) {
      EXPECT_NEAR(batched.expectations[b * qubits + k],
                  row.expectations[k], kTol)
          << "row " << b << " obs " << k;
    }
    for (std::size_t p = 0; p < stride; ++p) {
      EXPECT_NEAR(batched.gradient[b * stride + p], row.gradient[p], kTol)
          << "row " << b << " param " << p;
    }
  }
}

TEST(KernelEquivalence, FusionPreservesAdjointGradients) {
  // Property: gradients computed with specialized kernels + fusion in the
  // forward pass agree with the generic pipeline to 1e-12 for every ansatz.
  util::Rng rng{64};
  for (const auto kind :
       {qnn::AnsatzKind::StronglyEntangling, qnn::AnsatzKind::BasicEntangler,
        qnn::AnsatzKind::HardwareEfficient}) {
    const std::size_t qubits = 4;
    Circuit circuit{qubits};
    qnn::AngleEncoding encoding;
    std::size_t offset = encoding.append(circuit, qubits);
    offset += qnn::append_ansatz(circuit, kind, qubits, 3, offset);
    const auto params = rng.uniform_vector(offset, -2.0, 2.0);
    std::vector<Observable> observables;
    std::vector<double> upstream;
    for (std::size_t w = 0; w < qubits; ++w) {
      observables.push_back(Observable::pauli_z(w));
      upstream.push_back(rng.uniform(-1.0, 1.0));
    }
    quantum::AdjointVjpResult specialized, generic;
    {
      const KernelScope scope{false};
      specialized =
          quantum::adjoint_vjp(circuit, params, observables, upstream);
    }
    {
      const KernelScope scope{true};
      generic = quantum::adjoint_vjp(circuit, params, observables, upstream);
    }
    ASSERT_EQ(specialized.gradient.size(), generic.gradient.size());
    for (std::size_t p = 0; p < specialized.gradient.size(); ++p) {
      EXPECT_NEAR(specialized.gradient[p], generic.gradient[p], kTol)
          << qnn::ansatz_name(kind) << " param " << p;
    }
    for (std::size_t k = 0; k < observables.size(); ++k) {
      EXPECT_NEAR(specialized.expectations[k], generic.expectations[k], kTol)
          << qnn::ansatz_name(kind) << " obs " << k;
    }
  }
}

TEST(KernelEquivalence, DispatchCountersClassifyCircuit) {
  const KernelScope scope{false};
  quantum::kernels::reset_stats();
  StateVector state{3};
  quantum::apply_gate(state, GateType::RZ, 0.3, 0);
  quantum::apply_gate(state, GateType::RX, 0.4, 1);
  quantum::apply_gate(state, GateType::PauliX, 0.0, 2);
  quantum::apply_gate(state, GateType::Hadamard, 0.0, 0);
  quantum::apply_gate(state, GateType::CNOT, 0.0, 0, 1);
  quantum::apply_gate(state, GateType::CRY, 0.5, 1, 2);
  quantum::apply_gate(state, GateType::RZZ, 0.6, 0, 2);
  const auto stats = quantum::kernels::stats();
  EXPECT_EQ(stats.diagonal, 1u);
  EXPECT_EQ(stats.real_rotation, 1u);
  EXPECT_EQ(stats.permutation, 2u);  // PauliX + CNOT
  EXPECT_EQ(stats.generic, 1u);      // Hadamard
  EXPECT_EQ(stats.controlled, 1u);
  EXPECT_EQ(stats.double_flip, 1u);
  EXPECT_EQ(stats.total_dispatches(), 7u);
}

TEST(KernelEquivalence, ForceGenericEnvOverrideLatches) {
  // The test-override API wins over the env/build default in both
  // directions and resets cleanly.
  quantum::kernels::set_force_generic(true);
  EXPECT_TRUE(quantum::kernels::force_generic());
  quantum::kernels::set_force_generic(false);
  EXPECT_FALSE(quantum::kernels::force_generic());
  quantum::kernels::set_force_generic(std::nullopt);
}

}  // namespace
