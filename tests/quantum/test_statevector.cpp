#include "quantum/statevector.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "quantum/gates.hpp"

namespace qhdl::quantum {
namespace {

constexpr double kTol = 1e-12;

TEST(StateVector, InitializesToGroundState) {
  const StateVector state{3};
  EXPECT_EQ(state.num_qubits(), 3u);
  EXPECT_EQ(state.dimension(), 8u);
  EXPECT_NEAR(std::abs(state.amplitudes()[0] - Complex{1.0, 0.0}), 0.0, kTol);
  for (std::size_t i = 1; i < 8; ++i) {
    EXPECT_NEAR(std::abs(state.amplitudes()[i]), 0.0, kTol);
  }
}

TEST(StateVector, RejectsBadQubitCounts) {
  EXPECT_THROW(StateVector{0}, std::invalid_argument);
  EXPECT_THROW(StateVector{64}, std::invalid_argument);
}

TEST(StateVector, ExplicitAmplitudesValidated) {
  EXPECT_NO_THROW(StateVector(std::vector<Complex>(4, Complex{0.5, 0.0})));
  EXPECT_THROW(StateVector(std::vector<Complex>(3)), std::invalid_argument);
  EXPECT_THROW(StateVector(std::vector<Complex>(1)), std::invalid_argument);
}

TEST(StateVector, SetBasisState) {
  StateVector state{2};
  state.set_basis_state(2);  // |10⟩
  EXPECT_NEAR(state.probability(2), 1.0, kTol);
  EXPECT_NEAR(state.probability(0), 0.0, kTol);
  EXPECT_THROW(state.set_basis_state(4), std::out_of_range);
}

TEST(StateVector, PauliXFlipsWireZeroMsb) {
  // Wire 0 is the most significant bit (PennyLane convention).
  StateVector state{2};
  state.apply_single_qubit(gates::pauli_x(), 0);
  EXPECT_NEAR(state.probability(0b10), 1.0, kTol);
}

TEST(StateVector, PauliXFlipsWireOneLsb) {
  StateVector state{2};
  state.apply_single_qubit(gates::pauli_x(), 1);
  EXPECT_NEAR(state.probability(0b01), 1.0, kTol);
}

TEST(StateVector, HadamardCreatesUniformSuperposition) {
  StateVector state{1};
  state.apply_single_qubit(gates::hadamard(), 0);
  EXPECT_NEAR(state.probability(0), 0.5, kTol);
  EXPECT_NEAR(state.probability(1), 0.5, kTol);
}

TEST(StateVector, BellStateViaHadamardCnot) {
  StateVector state{2};
  state.apply_single_qubit(gates::hadamard(), 0);
  state.apply_cnot(0, 1);
  EXPECT_NEAR(state.probability(0b00), 0.5, kTol);
  EXPECT_NEAR(state.probability(0b11), 0.5, kTol);
  EXPECT_NEAR(state.probability(0b01), 0.0, kTol);
  EXPECT_NEAR(state.probability(0b10), 0.0, kTol);
}

TEST(StateVector, CnotControlZeroIsIdentity) {
  StateVector state{2};  // |00⟩, control = wire 0 = 0
  state.apply_cnot(0, 1);
  EXPECT_NEAR(state.probability(0), 1.0, kTol);
}

TEST(StateVector, CnotValidatesWires) {
  StateVector state{2};
  EXPECT_THROW(state.apply_cnot(0, 0), std::invalid_argument);
  EXPECT_THROW(state.apply_cnot(0, 5), std::out_of_range);
}

TEST(StateVector, CzAppliesPhaseOn11) {
  StateVector state{2};
  state.apply_single_qubit(gates::pauli_x(), 0);
  state.apply_single_qubit(gates::pauli_x(), 1);  // |11⟩
  state.apply_cz(0, 1);
  EXPECT_NEAR(std::abs(state.amplitudes()[3] - Complex{-1.0, 0.0}), 0.0,
              kTol);
}

TEST(StateVector, SwapExchangesWires) {
  StateVector state{2};
  state.apply_single_qubit(gates::pauli_x(), 1);  // |01⟩
  state.apply_swap(0, 1);                          // -> |10⟩
  EXPECT_NEAR(state.probability(0b10), 1.0, kTol);
}

TEST(StateVector, SwapSameWireIsNoOp) {
  StateVector state{2};
  state.apply_single_qubit(gates::hadamard(), 0);
  const auto before = std::vector<Complex>(state.amplitudes().begin(),
                                           state.amplitudes().end());
  state.apply_swap(1, 1);
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_NEAR(std::abs(state.amplitudes()[i] - before[i]), 0.0, kTol);
  }
}

TEST(StateVector, ExpvalZSigns) {
  StateVector state{2};
  EXPECT_NEAR(state.expval_pauli_z(0), 1.0, kTol);   // |0⟩ -> +1
  state.apply_single_qubit(gates::pauli_x(), 0);
  EXPECT_NEAR(state.expval_pauli_z(0), -1.0, kTol);  // |1⟩ -> -1
  EXPECT_NEAR(state.expval_pauli_z(1), 1.0, kTol);   // other wire unaffected
}

TEST(StateVector, ExpvalZOfSuperpositionIsZero) {
  StateVector state{1};
  state.apply_single_qubit(gates::hadamard(), 0);
  EXPECT_NEAR(state.expval_pauli_z(0), 0.0, kTol);
}

TEST(StateVector, RotationPreservesNorm) {
  StateVector state{3};
  state.apply_single_qubit(gates::rx(0.7), 0);
  state.apply_single_qubit(gates::ry(1.3), 1);
  state.apply_single_qubit(gates::rz(-2.1), 2);
  state.apply_cnot(0, 2);
  EXPECT_NEAR(state.norm_squared(), 1.0, kTol);
}

TEST(StateVector, RxRotatesExpvalZAsCosine) {
  // ⟨Z⟩ after RX(θ)|0⟩ = cos(θ).
  for (double theta : {0.0, 0.3, 1.1, std::numbers::pi / 2, 2.7}) {
    StateVector state{1};
    state.apply_single_qubit(gates::rx(theta), 0);
    EXPECT_NEAR(state.expval_pauli_z(0), std::cos(theta), kTol)
        << "theta=" << theta;
  }
}

TEST(StateVector, InnerProductAndScale) {
  StateVector a{1};
  StateVector b{1};
  b.apply_single_qubit(gates::hadamard(), 0);
  const Complex ip = a.inner_product(b);  // ⟨0|+⟩ = 1/√2
  EXPECT_NEAR(ip.real(), 1.0 / std::numbers::sqrt2, kTol);
  EXPECT_NEAR(ip.imag(), 0.0, kTol);

  b.scale(Complex{2.0, 0.0});
  EXPECT_NEAR(b.norm_squared(), 4.0, kTol);
}

TEST(StateVector, InnerProductDimensionMismatchThrows) {
  const StateVector a{1};
  const StateVector b{2};
  EXPECT_THROW(a.inner_product(b), std::invalid_argument);
}

TEST(StateVector, ControlledDerivativeZeroesControlZeroSubspace) {
  StateVector state{2};
  state.apply_single_qubit(gates::hadamard(), 0);  // (|0⟩+|1⟩)/√2 ⊗ |0⟩
  state.apply_controlled_derivative(gates::rx_derivative(0.4), 0, 1);
  // Control-0 amplitudes must be exactly zero.
  EXPECT_NEAR(std::abs(state.amplitudes()[0b00]), 0.0, kTol);
  EXPECT_NEAR(std::abs(state.amplitudes()[0b01]), 0.0, kTol);
}

TEST(StateVector, ProbabilitiesSumToOne) {
  StateVector state{3};
  state.apply_single_qubit(gates::hadamard(), 0);
  state.apply_single_qubit(gates::ry(0.9), 1);
  state.apply_cnot(0, 2);
  const auto probs = state.probabilities();
  double total = 0.0;
  for (double p : probs) total += p;
  EXPECT_NEAR(total, 1.0, kTol);
}

TEST(StateVector, ToStringShowsBasisKets) {
  StateVector state{2};
  state.apply_single_qubit(gates::pauli_x(), 1);
  EXPECT_NE(state.to_string().find("|01⟩"), std::string::npos);
}

TEST(Mat2, UnitaryCheck) {
  EXPECT_TRUE(gates::hadamard().is_unitary());
  EXPECT_TRUE(gates::rx(0.37).is_unitary());
  const Mat2 not_unitary{Complex{2, 0}, Complex{0, 0}, Complex{0, 0},
                         Complex{1, 0}};
  EXPECT_FALSE(not_unitary.is_unitary());
}

TEST(Mat2, DaggerAndProduct) {
  const Mat2 s = gates::s();
  const Mat2 identity = s * s.dagger();
  EXPECT_NEAR(std::abs(identity.m00 - Complex{1, 0}), 0.0, kTol);
  EXPECT_NEAR(std::abs(identity.m11 - Complex{1, 0}), 0.0, kTol);
  EXPECT_NEAR(std::abs(identity.m01), 0.0, kTol);
}

}  // namespace
}  // namespace qhdl::quantum
