#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "quantum/adjoint_diff.hpp"
#include "quantum/channels.hpp"
#include "quantum/parameter_shift.hpp"
#include "quantum/sampling.hpp"
#include "test_helpers.hpp"

namespace qhdl::quantum {
namespace {

constexpr double kTol = 1e-12;

TEST(IsingGates, RzzAppliesParityPhases) {
  // On |+⟩⊗|+⟩, RZZ(θ) creates entanglement detectable via ⟨X⊗X⟩... here we
  // just check the basis phases directly.
  StateVector state{2};
  state.apply_single_qubit(gates::hadamard(), 0);
  state.apply_single_qubit(gates::hadamard(), 1);
  const double theta = 0.8;
  apply_gate(state, GateType::RZZ, theta, 0, 1);
  const auto amps = state.amplitudes();
  // Even parity (00, 11): phase e^{-iθ/2}; odd (01, 10): e^{+iθ/2}.
  EXPECT_NEAR(std::arg(amps[0b00]), -theta / 2.0, kTol);
  EXPECT_NEAR(std::arg(amps[0b11]), -theta / 2.0, kTol);
  EXPECT_NEAR(std::arg(amps[0b01]), theta / 2.0, kTol);
  EXPECT_NEAR(std::arg(amps[0b10]), theta / 2.0, kTol);
}

TEST(IsingGates, RxxOnGroundStateRotatesTo11) {
  StateVector state{2};
  apply_gate(state, GateType::RXX, 1.1, 0, 1);
  EXPECT_NEAR(state.probability(0b00), std::cos(0.55) * std::cos(0.55),
              kTol);
  EXPECT_NEAR(state.probability(0b11), std::sin(0.55) * std::sin(0.55),
              kTol);
  EXPECT_NEAR(state.probability(0b01), 0.0, kTol);
}

TEST(IsingGates, RyyMatchesRxxOnGroundStateProbabilities) {
  // On |00⟩ both RXX and RYY produce cos|00⟩ ± i sin|11⟩ — same probs.
  StateVector xx{2}, yy{2};
  apply_gate(xx, GateType::RXX, 0.9, 0, 1);
  apply_gate(yy, GateType::RYY, 0.9, 0, 1);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(xx.probability(i), yy.probability(i), kTol);
  }
  // But with opposite relative phase on |11⟩.
  EXPECT_NEAR(std::abs(xx.amplitudes()[3] + yy.amplitudes()[3]), 0.0, kTol);
}

TEST(IsingGates, PreserveNorm) {
  util::Rng rng{3};
  StateVector state{3};
  state.apply_single_qubit(gates::hadamard(), 0);
  state.apply_single_qubit(gates::ry(0.7), 1);
  apply_gate(state, GateType::RXX, rng.uniform(-3, 3), 0, 1);
  apply_gate(state, GateType::RYY, rng.uniform(-3, 3), 1, 2);
  apply_gate(state, GateType::RZZ, rng.uniform(-3, 3), 0, 2);
  EXPECT_NEAR(state.norm_squared(), 1.0, 1e-12);
}

TEST(IsingGates, GradientsAgreeAcrossMethods) {
  // Circuit mixing Ising gates with singles; adjoint vs shift vs numeric.
  Circuit c{3};
  c.parameterized_gate(GateType::RY, 0, 0);
  c.parameterized_gate(GateType::RXX, 1, 0, 1);
  c.parameterized_gate(GateType::RZZ, 2, 1, 2);
  c.parameterized_gate(GateType::RYY, 3, 0, 2);
  const std::vector<double> params{0.7, -0.9, 1.3, 0.4};
  const Observable obs = Observable::pauli_z(2);

  const AdjointResult adjoint = adjoint_gradient(c, params, obs);
  const auto shift = parameter_shift_gradient(c, params, obs);
  const auto numeric = testing::numerical_circuit_gradient(c, params, obs);
  for (std::size_t i = 0; i < params.size(); ++i) {
    EXPECT_NEAR(adjoint.gradient[i], shift[i], 1e-10) << i;
    EXPECT_NEAR(adjoint.gradient[i], numeric[i], 1e-7) << i;
  }
}

TEST(IsingGates, DensityMatrixMatchesStatevector) {
  Circuit c{2};
  c.parameterized_gate(GateType::RY, 0, 0);
  c.parameterized_gate(GateType::RXX, 1, 0, 1);
  c.parameterized_gate(GateType::RZZ, 2, 0, 1);
  const std::vector<double> params{0.6, 1.2, -0.5};

  const StateVector psi = c.execute(params);
  const auto noiseless = noisy_expvals(c, params, NoiseModel::noiseless(),
                                       std::vector<std::size_t>{0, 1});
  EXPECT_NEAR(noiseless[0], psi.expval_pauli_z(0), 1e-11);
  EXPECT_NEAR(noiseless[1], psi.expval_pauli_z(1), 1e-11);
}

TEST(IsingGates, NoisyParameterShiftMatchesFiniteDifference) {
  Circuit c{2};
  c.parameterized_gate(GateType::RY, 0, 0);
  c.parameterized_gate(GateType::RZZ, 1, 0, 1);
  std::vector<double> params{0.8, -0.6};
  const NoiseModel noise = NoiseModel::depolarizing(0.04);
  const auto analytic = noisy_parameter_shift_gradient(c, params, noise, 1);
  for (std::size_t i = 0; i < params.size(); ++i) {
    const double eps = 1e-6;
    const double saved = params[i];
    params[i] = saved + eps;
    const double plus =
        noisy_expvals(c, params, noise, std::vector<std::size_t>{1})[0];
    params[i] = saved - eps;
    const double minus =
        noisy_expvals(c, params, noise, std::vector<std::size_t>{1})[0];
    params[i] = saved;
    EXPECT_NEAR(analytic[i], (plus - minus) / (2 * eps), 1e-7) << i;
  }
}

TEST(Sampling, DeterministicStateGivesDeterministicSamples) {
  StateVector state{2};  // |00⟩
  util::Rng rng{1};
  const auto outcomes = sample_basis_states(state, 100, rng);
  for (std::size_t outcome : outcomes) EXPECT_EQ(outcome, 0u);
  EXPECT_THROW(sample_basis_states(state, 0, rng), std::invalid_argument);
}

TEST(Sampling, CountsFollowBornRule) {
  StateVector state{1};
  state.apply_single_qubit(gates::ry(2.0 * std::acos(std::sqrt(0.3))), 0);
  // P(0) should be 0.3.
  util::Rng rng{2};
  const auto counts = sample_counts(state, 20000, rng);
  const double p0 =
      static_cast<double>(counts.count(0) ? counts.at(0) : 0) / 20000.0;
  EXPECT_NEAR(p0, 0.3, 0.02);
}

TEST(Sampling, ExpvalEstimateConvergesAsInverseSqrtShots) {
  StateVector state{1};
  state.apply_single_qubit(gates::rx(0.9), 0);
  const double exact = state.expval_pauli_z(0);

  // Repeated estimates: empirical std dev shrinks roughly like 1/sqrt(shots).
  const auto stddev_of = [&](std::size_t shots, std::uint64_t seed) {
    util::Rng rng{seed};
    double sum = 0.0, sum_sq = 0.0;
    const int reps = 60;
    for (int r = 0; r < reps; ++r) {
      const double e = estimate_expval_z(state, 0, shots, rng);
      sum += e;
      sum_sq += e * e;
    }
    const double mean = sum / reps;
    EXPECT_NEAR(mean, exact, 0.1);
    return std::sqrt(sum_sq / reps - mean * mean);
  };
  const double sd_small = stddev_of(64, 3);
  const double sd_large = stddev_of(4096, 4);
  EXPECT_LT(sd_large, sd_small / 4.0);  // expect ~1/8, allow slack
}

TEST(Sampling, SharedShotsAcrossWires) {
  StateVector state{2};
  state.apply_single_qubit(gates::hadamard(), 0);
  state.apply_cnot(0, 1);  // Bell: wires perfectly correlated
  util::Rng rng{5};
  const std::vector<std::size_t> wires{0, 1};
  const auto estimates = estimate_expvals_z(state, wires, 5000, rng);
  EXPECT_NEAR(estimates[0], 0.0, 0.05);
  EXPECT_NEAR(estimates[1], 0.0, 0.05);
  EXPECT_THROW(
      estimate_expvals_z(state, std::vector<std::size_t>{7}, 10, rng),
      std::out_of_range);
}

TEST(Sampling, BasisSamplerCoversSupport) {
  StateVector state{2};
  state.apply_single_qubit(gates::hadamard(), 0);
  state.apply_single_qubit(gates::hadamard(), 1);
  const BasisSampler sampler{state};
  util::Rng rng{6};
  std::set<std::size_t> seen;
  for (int i = 0; i < 400; ++i) seen.insert(sampler.draw(rng));
  EXPECT_EQ(seen.size(), 4u);
}

}  // namespace
}  // namespace qhdl::quantum
