// Randomized invariant sweeps over the full gate set: unitarity of circuit
// execution (norm/probability preservation), density-matrix equivalence,
// circuit metadata consistency — the "can't-be-wrong" layer under the
// targeted unit tests.
#include <gtest/gtest.h>

#include <cmath>

#include "quantum/channels.hpp"
#include "test_helpers.hpp"

namespace qhdl::quantum {
namespace {

struct PropertyCase {
  std::size_t qubits;
  std::size_t ops;
  std::uint64_t seed;
};

class RandomCircuitInvariants
    : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(RandomCircuitInvariants, NormAndProbabilitiesPreserved) {
  const PropertyCase c = GetParam();
  util::Rng rng{c.seed};
  std::vector<double> params;
  const Circuit circuit = testing::random_circuit(c.qubits, c.ops, rng,
                                                  params);
  const StateVector psi = circuit.execute(params);

  EXPECT_NEAR(psi.norm_squared(), 1.0, 1e-11);
  double total = 0.0;
  for (double p : psi.probabilities()) {
    EXPECT_GE(p, -1e-15);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-11);
  for (std::size_t w = 0; w < c.qubits; ++w) {
    const double z = psi.expval_pauli_z(w);
    EXPECT_GE(z, -1.0 - 1e-11);
    EXPECT_LE(z, 1.0 + 1e-11);
  }
}

TEST_P(RandomCircuitInvariants, InverseSweepRestoresGroundState) {
  const PropertyCase c = GetParam();
  util::Rng rng{c.seed + 1000};
  std::vector<double> params;
  const Circuit circuit = testing::random_circuit(c.qubits, c.ops, rng,
                                                  params);
  StateVector psi = circuit.execute(params);
  const auto& ops = circuit.ops();
  for (std::size_t idx = ops.size(); idx-- > 0;) {
    const Op& op = ops[idx];
    apply_gate_inverse(psi, op.type, op.angle(params), op.wire0, op.wire1);
  }
  EXPECT_NEAR(psi.probability(0), 1.0, 1e-10);
}

TEST_P(RandomCircuitInvariants, DensityMatrixAgreesWithStatevector) {
  const PropertyCase c = GetParam();
  if (c.qubits > 4) GTEST_SKIP() << "density path kept small";
  util::Rng rng{c.seed + 2000};
  std::vector<double> params;
  const Circuit circuit = testing::random_circuit(c.qubits, c.ops, rng,
                                                  params);
  const StateVector psi = circuit.execute(params);
  std::vector<std::size_t> wires(c.qubits);
  for (std::size_t w = 0; w < c.qubits; ++w) wires[w] = w;
  const auto density =
      noisy_expvals(circuit, params, NoiseModel::noiseless(), wires);
  for (std::size_t w = 0; w < c.qubits; ++w) {
    EXPECT_NEAR(density[w], psi.expval_pauli_z(w), 1e-10) << "wire " << w;
  }
}

TEST_P(RandomCircuitInvariants, MetadataConsistent) {
  const PropertyCase c = GetParam();
  util::Rng rng{c.seed + 3000};
  std::vector<double> params;
  const Circuit circuit = testing::random_circuit(c.qubits, c.ops, rng,
                                                  params);
  // Histogram totals the op count.
  std::size_t histogram_total = 0;
  for (const auto& [type, count] : circuit.gate_histogram()) {
    histogram_total += count;
  }
  EXPECT_EQ(histogram_total, circuit.op_count());
  // Depth is bounded by the op count and at least ceil(ops / qubits).
  EXPECT_LE(circuit.depth(), circuit.op_count());
  if (circuit.op_count() > 0) {
    EXPECT_GE(circuit.depth(), 1u);
  }
  EXPECT_LE(circuit.two_qubit_op_count(), circuit.op_count());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomCircuitInvariants,
    ::testing::Values(PropertyCase{1, 6, 11}, PropertyCase{2, 10, 12},
                      PropertyCase{3, 15, 13}, PropertyCase{3, 25, 14},
                      PropertyCase{4, 20, 15}, PropertyCase{5, 30, 16},
                      PropertyCase{6, 24, 17}));

TEST(CircuitMetadata, DepthOfKnownCircuits) {
  Circuit c{3};
  EXPECT_EQ(c.depth(), 0u);
  c.gate(GateType::Hadamard, 0);
  c.gate(GateType::Hadamard, 1);
  c.gate(GateType::Hadamard, 2);
  EXPECT_EQ(c.depth(), 1u);  // all parallel
  c.gate(GateType::CNOT, 0, 1);
  EXPECT_EQ(c.depth(), 2u);
  c.gate(GateType::CNOT, 1, 2);
  EXPECT_EQ(c.depth(), 3u);  // chained through wire 1
  c.gate(GateType::PauliX, 0);
  EXPECT_EQ(c.depth(), 3u);  // fits in wire 0's slack
  EXPECT_EQ(c.two_qubit_op_count(), 2u);
}

TEST(ObservableAlgebra, ExpectationIsLinearInTerms) {
  util::Rng rng{21};
  std::vector<double> params;
  const Circuit circuit = testing::random_circuit(3, 12, rng, params);
  const StateVector psi = circuit.execute(params);

  Observable combined;
  combined.add_term(0.7, PauliWord::z(0));
  combined.add_term(-1.3, PauliWord::z(2));
  const double direct = combined.expectation(psi);
  const double sum = 0.7 * Observable::pauli_z(0).expectation(psi) -
                     1.3 * Observable::pauli_z(2).expectation(psi);
  EXPECT_NEAR(direct, sum, 1e-12);
}

}  // namespace
}  // namespace qhdl::quantum
