// Batched-vs-per-row golden equivalence suite (DESIGN.md §14): the SoA
// batch executor vectorizes ACROSS batch lanes, so every batch row must
// reproduce the scalar per-row path BIT-IDENTICALLY (EXPECT_EQ on raw
// doubles) on every supported backend, for every batch size — including the
// odd tails (1, 3, 5, 7) that exercise the scalar remainder loops — in
// compiled, uncompiled, and force-generic execution modes. The adjoint
// batch VJP is held to the same contract against row-by-row adjoint_vjp
// for the single-term diagonal observables the hybrid layer emits.
#include <complex>
#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "qnn/ansatz.hpp"
#include "qnn/encoding.hpp"
#include "quantum/adjoint_diff.hpp"
#include "quantum/circuit.hpp"
#include "quantum/gates.hpp"
#include "quantum/kernels.hpp"
#include "quantum/observable.hpp"
#include "quantum/statevector.hpp"
#include "quantum/statevector_batch.hpp"
#include "util/backend_registry.hpp"
#include "util/rng.hpp"

namespace {

using namespace qhdl;
namespace simd = util::simd;
using quantum::Circuit;
using quantum::Observable;
using quantum::StateVector;
using quantum::StateVectorBatch;
using Complex = std::complex<double>;

constexpr std::size_t kBatchSizes[] = {1, 3, 5, 7, 16};
constexpr std::size_t kQubitCounts[] = {3, 4, 5};

/// Pins one backend for the scope; restores env/build/auto selection on
/// exit.
class BackendScope {
 public:
  explicit BackendScope(const char* name) { simd::set_backend(name); }
  ~BackendScope() { simd::set_backend(std::nullopt); }
};

/// All backends bound by the batched bit-identity contract: generic itself
/// plus every supported non-reference SIMD backend.
std::vector<const simd::Backend*> batch_backends_under_test() {
  std::vector<const simd::Backend*> out;
  for (const simd::Backend* backend : simd::backends()) {
    if (backend->reference || !backend->supported()) continue;
    out.push_back(backend);
  }
  return out;
}

/// Reproducible entangled non-real state, prepared under the pinned
/// generic backend so every comparison starts from identical bits.
StateVector random_state(std::size_t qubits, util::Rng& rng) {
  const BackendScope scope{"generic"};
  StateVector state{qubits};
  for (std::size_t w = 0; w < qubits; ++w) {
    state.apply_single_qubit(quantum::gates::hadamard(), w);
    state.apply_single_qubit(quantum::gates::t(), w);
    state.apply_single_qubit(quantum::gates::ry(rng.uniform(-2.0, 2.0)), w);
  }
  for (std::size_t w = 0; w + 1 < qubits; ++w) state.apply_cnot(w, w + 1);
  return state;
}

/// Seeds a batch with independent random rows; returns the rows so the test
/// can replay the same gates through the scalar path.
std::vector<StateVector> seed_batch(StateVectorBatch& batch, util::Rng& rng) {
  std::vector<StateVector> rows;
  rows.reserve(batch.batch());
  for (std::size_t b = 0; b < batch.batch(); ++b) {
    rows.push_back(random_state(batch.num_qubits(), rng));
    batch.set_row(b, rows.back());
  }
  return rows;
}

void expect_row_bit_identical(const StateVector& row, const StateVector& golden,
                              const std::string& label) {
  ASSERT_EQ(row.dimension(), golden.dimension()) << label;
  for (std::size_t i = 0; i < row.dimension(); ++i) {
    EXPECT_EQ(row.amplitudes()[i].real(), golden.amplitudes()[i].real())
        << label << " amplitude " << i << " (real)";
    EXPECT_EQ(row.amplitudes()[i].imag(), golden.amplitudes()[i].imag())
        << label << " amplitude " << i << " (imag)";
  }
}

TEST(BatchEquivalence, GateKernelsBitIdenticalPerRow) {
  util::Rng rng{41};
  for (const simd::Backend* backend : batch_backends_under_test()) {
    for (const std::size_t qubits : kQubitCounts) {
      for (const std::size_t batch_size : kBatchSizes) {
        const std::string label = std::string{backend->name} +
                                  " q=" + std::to_string(qubits) +
                                  " b=" + std::to_string(batch_size);
        const quantum::Mat2 ry = quantum::gates::ry(rng.uniform(-3.0, 3.0));
        const double theta = rng.uniform(-3.0, 3.0);
        const Complex d0{std::cos(theta / 2.0), -std::sin(theta / 2.0)};
        const Complex d1{std::cos(theta / 2.0), std::sin(theta / 2.0)};
        quantum::Mat4 dense4;
        for (auto& mrow : dense4.m) {
          for (auto& entry : mrow) {
            entry = Complex{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
          }
        }

        StateVectorBatch batch{qubits, batch_size};
        std::vector<StateVector> rows = seed_batch(batch, rng);
        const BackendScope scope{backend->name};
        for (std::size_t w = 0; w < qubits; ++w) {
          batch.apply_single_qubit(ry, w);
          batch.apply_diagonal(d0, d1, w);
          // Phase-gate fast path (d0 == 1).
          batch.apply_diagonal(Complex{1.0, 0.0}, d1, w);
        }
        batch.apply_cnot(0, qubits - 1);
        batch.apply_cnot(qubits - 1, 0);
        batch.apply_two_qubit(dense4, 1, 0);
        for (std::size_t b = 0; b < batch_size; ++b) {
          StateVector& row = rows[b];
          for (std::size_t w = 0; w < qubits; ++w) {
            row.apply_single_qubit(ry, w);
            row.apply_diagonal(d0, d1, w);
            row.apply_diagonal(Complex{1.0, 0.0}, d1, w);
          }
          row.apply_cnot(0, qubits - 1);
          row.apply_cnot(qubits - 1, 0);
          row.apply_two_qubit(dense4, 1, 0);
          expect_row_bit_identical(batch.extract_row(b), row,
                                   label + " row " + std::to_string(b));
        }
      }
    }
  }
}

TEST(BatchEquivalence, ReductionsBitIdenticalPerRow) {
  util::Rng rng{42};
  for (const simd::Backend* backend : batch_backends_under_test()) {
    for (const std::size_t qubits : kQubitCounts) {
      for (const std::size_t batch_size : kBatchSizes) {
        const std::string label = std::string{backend->name} +
                                  " q=" + std::to_string(qubits) +
                                  " b=" + std::to_string(batch_size);
        StateVectorBatch batch{qubits, batch_size};
        const std::vector<StateVector> rows = seed_batch(batch, rng);
        StateVectorBatch other{qubits, batch_size};
        const std::vector<StateVector> other_rows = seed_batch(other, rng);

        const BackendScope scope{backend->name};
        std::vector<double> out(batch_size);
        for (std::size_t w = 0; w < qubits; ++w) {
          batch.expval_pauli_z(w, out);
          const std::size_t mask = std::size_t{1} << (qubits - 1 - w);
          for (std::size_t b = 0; b < batch_size; ++b) {
            // The batched canon: one sequential running sum per row in
            // ascending amplitude order (Observable::expectation's order).
            double golden = 0.0;
            const auto amps = rows[b].amplitudes();
            for (std::size_t i = 0; i < rows[b].dimension(); ++i) {
              if ((i & mask) == 0) {
                golden += std::norm(amps[i]);
              } else {
                golden -= std::norm(amps[i]);
              }
            }
            EXPECT_EQ(out[b], golden)
                << label << " expval w=" << w << " row " << b;
          }
        }

        batch.inner_products_real(other, out);
        for (std::size_t b = 0; b < batch_size; ++b) {
          EXPECT_EQ(out[b], rows[b].inner_product(other_rows[b]).real())
              << label << " inner row " << b;
        }
      }
    }
  }
}

Circuit make_sel_circuit(std::size_t qubits, std::size_t depth,
                         std::vector<double>& params, util::Rng& rng) {
  Circuit circuit{qubits};
  qnn::AngleEncoding encoding;
  std::size_t offset = encoding.append(circuit, qubits);
  offset += qnn::append_ansatz(circuit, qnn::AnsatzKind::StronglyEntangling,
                               qubits, depth, offset);
  params = rng.uniform_vector(offset, -2.0, 2.0);
  return circuit;
}

/// Batch parameter pack in the hybrid layer's shape: per-row encoding
/// angles (first `qubits` slots), shared ansatz weights.
std::vector<double> make_batch_params(const std::vector<double>& proto,
                                      std::size_t qubits, std::size_t batch,
                                      util::Rng& rng) {
  std::vector<double> params(batch * proto.size());
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t p = 0; p < proto.size(); ++p) {
      params[b * proto.size() + p] =
          p < qubits ? rng.uniform(-2.0, 2.0) : proto[p];
    }
  }
  return params;
}

enum class ExecMode { Compiled, Uncompiled, ForceGeneric };

constexpr ExecMode kExecModes[] = {ExecMode::Compiled, ExecMode::Uncompiled,
                                   ExecMode::ForceGeneric};

const char* mode_name(ExecMode mode) {
  switch (mode) {
    case ExecMode::Compiled: return "compiled";
    case ExecMode::Uncompiled: return "uncompiled";
    case ExecMode::ForceGeneric: return "generic-kernels";
  }
  return "?";
}

/// Pins one execution mode (plan / runtime fuser / unfused generic); the
/// batch driver mirrors the scalar lowering mode-for-mode, which is what
/// makes the EXPECT_EQ below valid.
class ExecModeScope {
 public:
  explicit ExecModeScope(ExecMode mode) {
    quantum::kernels::set_force_generic(mode == ExecMode::ForceGeneric);
    quantum::kernels::set_force_uncompiled(mode == ExecMode::Uncompiled);
  }
  ~ExecModeScope() {
    quantum::kernels::set_force_generic(std::nullopt);
    quantum::kernels::set_force_uncompiled(std::nullopt);
  }
};

TEST(BatchEquivalence, CircuitRunBitIdenticalPerRowAllModes) {
  util::Rng rng{43};
  for (const std::size_t qubits : kQubitCounts) {
    std::vector<double> proto;
    const Circuit circuit = make_sel_circuit(qubits, 3, proto, rng);
    for (const std::size_t batch_size : kBatchSizes) {
      const std::vector<double> params =
          make_batch_params(proto, qubits, batch_size, rng);
      for (const ExecMode mode : kExecModes) {
        const ExecModeScope mode_scope{mode};
        for (const simd::Backend* backend : batch_backends_under_test()) {
          const BackendScope scope{backend->name};
          StateVectorBatch batch{qubits, batch_size};
          circuit.run_batch(batch, params, proto.size());
          for (std::size_t b = 0; b < batch_size; ++b) {
            const std::span<const double> row_params{
                params.data() + b * proto.size(), proto.size()};
            const StateVector golden = circuit.execute(row_params);
            expect_row_bit_identical(
                batch.extract_row(b), golden,
                std::string{backend->name} + " " + mode_name(mode) +
                    " q=" + std::to_string(qubits) +
                    " b=" + std::to_string(batch_size) + " row " +
                    std::to_string(b));
          }
        }
      }
    }
  }
}

TEST(BatchEquivalence, AdjointVjpBitIdenticalPerRowAllModes) {
  util::Rng rng{44};
  const std::size_t qubits = 4;
  std::vector<double> proto;
  const Circuit circuit = make_sel_circuit(qubits, 3, proto, rng);
  std::vector<Observable> observables;
  for (std::size_t w = 0; w < qubits; ++w) {
    observables.push_back(Observable::pauli_z(w));
  }
  for (const std::size_t batch_size : kBatchSizes) {
    const std::vector<double> params =
        make_batch_params(proto, qubits, batch_size, rng);
    std::vector<double> upstream(batch_size * qubits);
    for (auto& u : upstream) u = rng.uniform(-1.0, 1.0);
    // Exercise the w == 0 skip, which both seeds share.
    upstream[0] = 0.0;
    for (const ExecMode mode : kExecModes) {
      const ExecModeScope mode_scope{mode};
      for (const simd::Backend* backend : batch_backends_under_test()) {
        const BackendScope scope{backend->name};
        const std::string label = std::string{backend->name} + " " +
                                  mode_name(mode) +
                                  " b=" + std::to_string(batch_size);
        const auto batched = quantum::adjoint_vjp_batch(
            circuit, params, proto.size(), batch_size, observables, upstream);
        ASSERT_EQ(batched.expectations.size(), batch_size * qubits) << label;
        ASSERT_EQ(batched.gradient.size(), batch_size * proto.size()) << label;
        for (std::size_t b = 0; b < batch_size; ++b) {
          const std::span<const double> row_params{
              params.data() + b * proto.size(), proto.size()};
          const std::span<const double> row_up{upstream.data() + b * qubits,
                                               qubits};
          const auto row =
              quantum::adjoint_vjp(circuit, row_params, observables, row_up);
          for (std::size_t k = 0; k < qubits; ++k) {
            EXPECT_EQ(batched.expectations[b * qubits + k],
                      row.expectations[k])
                << label << " expectation row " << b << " obs " << k;
          }
          for (std::size_t p = 0; p < proto.size(); ++p) {
            EXPECT_EQ(batched.gradient[b * proto.size() + p],
                      row.gradient[p])
                << label << " gradient row " << b << " param " << p;
          }
        }
      }
    }
  }
}

}  // namespace
