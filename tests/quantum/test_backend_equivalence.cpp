// Cross-backend golden equivalence suite (DESIGN.md §13): every registered
// supported non-reference backend must reproduce the generic backend's
// amplitudes BIT-IDENTICALLY (EXPECT_EQ on raw doubles, not EXPECT_NEAR)
// for the four registry-dispatched kernels and for full circuit execution,
// compiled and uncompiled. The reference backend is held to 1e-12 on the
// expval reduction only — its sequential sum order legitimately differs
// from the canonical mod-8 lane order.
#include <complex>
#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "qnn/ansatz.hpp"
#include "qnn/encoding.hpp"
#include "quantum/circuit.hpp"
#include "quantum/gates.hpp"
#include "quantum/kernels.hpp"
#include "quantum/statevector.hpp"
#include "util/backend_registry.hpp"
#include "util/rng.hpp"

namespace {

using namespace qhdl;
namespace simd = util::simd;
using quantum::Circuit;
using quantum::GateType;
using quantum::StateVector;
using Complex = std::complex<double>;

/// Pins one backend for the scope; restores env/build/auto selection on
/// exit.
class BackendScope {
 public:
  explicit BackendScope(const char* name) { simd::set_backend(name); }
  ~BackendScope() { simd::set_backend(std::nullopt); }
};

/// Supported non-reference backends other than generic — the ones bound by
/// the bit-identity contract.
std::vector<const simd::Backend*> simd_backends_under_test() {
  std::vector<const simd::Backend*> out;
  for (const simd::Backend* backend : simd::backends()) {
    if (backend->reference || !backend->supported()) continue;
    if (std::string{backend->name} == "generic") continue;
    out.push_back(backend);
  }
  return out;
}

/// Reproducible entangled non-real state, prepared under the pinned
/// generic backend so every comparison starts from identical bits.
StateVector random_state(std::size_t qubits, util::Rng& rng) {
  const BackendScope scope{"generic"};
  StateVector state{qubits};
  for (std::size_t w = 0; w < qubits; ++w) {
    state.apply_single_qubit(quantum::gates::hadamard(), w);
    state.apply_single_qubit(quantum::gates::t(), w);
    state.apply_single_qubit(quantum::gates::ry(rng.uniform(-2.0, 2.0)), w);
  }
  for (std::size_t w = 0; w + 1 < qubits; ++w) state.apply_cnot(w, w + 1);
  return state;
}

void expect_states_bit_identical(const StateVector& a, const StateVector& b,
                                 const std::string& label) {
  ASSERT_EQ(a.dimension(), b.dimension()) << label;
  for (std::size_t i = 0; i < a.dimension(); ++i) {
    EXPECT_EQ(a.amplitudes()[i].real(), b.amplitudes()[i].real())
        << label << " amplitude " << i << " (real)";
    EXPECT_EQ(a.amplitudes()[i].imag(), b.amplitudes()[i].imag())
        << label << " amplitude " << i << " (imag)";
  }
}

/// Applies apply_fn to copies of `initial` under `backend` and under
/// generic; the amplitudes must match bit-for-bit.
template <typename ApplyFn>
void check_against_generic(const simd::Backend* backend,
                           const StateVector& initial, const ApplyFn& apply_fn,
                           const std::string& label) {
  StateVector golden = initial;
  StateVector candidate = initial;
  {
    const BackendScope scope{"generic"};
    apply_fn(golden);
  }
  {
    const BackendScope scope{backend->name};
    apply_fn(candidate);
  }
  expect_states_bit_identical(candidate, golden,
                              std::string{backend->name} + " " + label);
}

TEST(BackendEquivalence, DenseSingleQubitBitIdentical) {
  // Qubit counts 1..7 sweep every stride class: the scalar tails (n < 4),
  // the AVX2 stride==1 regrouping, 2-wide stride==2, and the AVX-512
  // 4-wide path (stride >= 4).
  util::Rng rng{2024};
  for (const simd::Backend* backend : simd_backends_under_test()) {
    for (std::size_t qubits = 1; qubits <= 7; ++qubits) {
      for (std::size_t w = 0; w < qubits; ++w) {
        const StateVector initial = random_state(qubits, rng);
        const quantum::Mat2 gate =
            quantum::gates::ry(rng.uniform(-3.0, 3.0));
        const quantum::Mat2 dense = quantum::gates::hadamard();
        check_against_generic(
            backend, initial,
            [&](StateVector& s) {
              s.apply_single_qubit(gate, w);
              s.apply_single_qubit(dense, w);
            },
            "dense q=" + std::to_string(qubits) + " w=" + std::to_string(w));
      }
    }
  }
}

TEST(BackendEquivalence, DiagonalBitIdentical) {
  util::Rng rng{2025};
  for (const simd::Backend* backend : simd_backends_under_test()) {
    for (std::size_t qubits = 1; qubits <= 7; ++qubits) {
      for (std::size_t w = 0; w < qubits; ++w) {
        const StateVector initial = random_state(qubits, rng);
        const double theta = rng.uniform(-3.0, 3.0);
        check_against_generic(
            backend, initial,
            [&](StateVector& s) {
              // General diagonal (RZ: d0 != 1) and the phase-gate fast
              // path (d0 == 1) in one sequence.
              const double c = std::cos(theta / 2.0);
              const double si = std::sin(theta / 2.0);
              s.apply_diagonal(Complex{c, -si}, Complex{c, si}, w);
              s.apply_diagonal(Complex{1.0, 0.0},
                               Complex{std::cos(theta), std::sin(theta)}, w);
            },
            "diag q=" + std::to_string(qubits) + " w=" + std::to_string(w));
      }
    }
  }
}

TEST(BackendEquivalence, CnotBitIdentical) {
  util::Rng rng{2026};
  for (const simd::Backend* backend : simd_backends_under_test()) {
    for (std::size_t qubits = 2; qubits <= 6; ++qubits) {
      for (std::size_t c = 0; c < qubits; ++c) {
        for (std::size_t t = 0; t < qubits; ++t) {
          if (c == t) continue;
          const StateVector initial = random_state(qubits, rng);
          check_against_generic(
              backend, initial,
              [&](StateVector& s) { s.apply_cnot(c, t); },
              "cnot q=" + std::to_string(qubits) + " c=" + std::to_string(c) +
                  " t=" + std::to_string(t));
        }
      }
    }
  }
}

TEST(BackendEquivalence, ExpvalZBitIdenticalAcrossSimdBackends) {
  util::Rng rng{2027};
  for (std::size_t qubits = 1; qubits <= 7; ++qubits) {
    const StateVector state = random_state(qubits, rng);
    for (std::size_t w = 0; w < qubits; ++w) {
      double golden = 0.0;
      {
        const BackendScope scope{"generic"};
        golden = state.expval_pauli_z(w);
      }
      for (const simd::Backend* backend : simd_backends_under_test()) {
        const BackendScope scope{backend->name};
        EXPECT_EQ(state.expval_pauli_z(w), golden)
            << backend->name << " q=" << qubits << " w=" << w;
      }
      // The reference backend keeps the historical sequential reduction:
      // numerically equal to 1e-12, not bitwise.
      {
        const BackendScope scope{"reference"};
        EXPECT_NEAR(state.expval_pauli_z(w), golden, 1e-12)
            << "reference q=" << qubits << " w=" << w;
      }
    }
  }
}

Circuit make_sel_circuit(std::size_t qubits, std::size_t depth,
                         std::vector<double>& params, util::Rng& rng) {
  Circuit circuit{qubits};
  qnn::AngleEncoding encoding;
  std::size_t offset = encoding.append(circuit, qubits);
  offset += qnn::append_ansatz(circuit, qnn::AnsatzKind::StronglyEntangling,
                               qubits, depth, offset);
  params = rng.uniform_vector(offset, -2.0, 2.0);
  return circuit;
}

TEST(BackendEquivalence, FullCircuitBitIdenticalCompiledAndUncompiled) {
  util::Rng rng{2028};
  for (const std::size_t qubits : {3u, 5u, 6u}) {
    std::vector<double> params;
    const Circuit circuit = make_sel_circuit(qubits, 4, params, rng);
    for (const bool uncompiled : {false, true}) {
      quantum::kernels::set_force_uncompiled(uncompiled);
      StateVector golden = [&] {
        const BackendScope scope{"generic"};
        return circuit.execute(params);
      }();
      for (const simd::Backend* backend : simd_backends_under_test()) {
        const BackendScope scope{backend->name};
        const StateVector candidate = circuit.execute(params);
        expect_states_bit_identical(
            candidate, golden,
            std::string{backend->name} + " SEL q=" + std::to_string(qubits) +
                (uncompiled ? " uncompiled" : " compiled"));
      }
      quantum::kernels::set_force_uncompiled(std::nullopt);
    }
  }
}

TEST(BackendEquivalence, ReferenceBackendCircuitMatchesGenericNumerically) {
  // The reference backend runs the seed's scalar path (generic kernels,
  // uncompiled lowering); results agree with the registry's generic backend
  // to float tolerance — the historical KernelEquivalence contract.
  util::Rng rng{2029};
  std::vector<double> params;
  const Circuit circuit = make_sel_circuit(5, 4, params, rng);
  const StateVector golden = [&] {
    const BackendScope scope{"generic"};
    return circuit.execute(params);
  }();
  const BackendScope scope{"reference"};
  const StateVector reference = circuit.execute(params);
  ASSERT_EQ(reference.dimension(), golden.dimension());
  for (std::size_t i = 0; i < golden.dimension(); ++i) {
    EXPECT_NEAR(reference.amplitudes()[i].real(),
                golden.amplitudes()[i].real(), 1e-12)
        << "amplitude " << i;
    EXPECT_NEAR(reference.amplitudes()[i].imag(),
                golden.amplitudes()[i].imag(), 1e-12)
        << "amplitude " << i;
  }
}

}  // namespace
