#include "quantum/executor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "test_helpers.hpp"

namespace qhdl::quantum {
namespace {

Executor make_executor(DiffMethod method) {
  Circuit c{2};
  c.parameterized_gate(GateType::RY, 0, 0);
  c.gate(GateType::CNOT, 0, 1);
  c.parameterized_gate(GateType::RX, 1, 1);
  std::vector<Observable> observables{Observable::pauli_z(0),
                                      Observable::pauli_z(1)};
  return Executor{std::move(c), std::move(observables), method};
}

TEST(Executor, RunReturnsPerObservableExpectations) {
  const Executor ex = make_executor(DiffMethod::Adjoint);
  const std::vector<double> params{0.4, -0.9};
  const auto expectations = ex.run(params);
  ASSERT_EQ(expectations.size(), 2u);
  EXPECT_NEAR(expectations[0], std::cos(0.4), 1e-12);
}

TEST(Executor, RequiresObservables) {
  Circuit c{1};
  EXPECT_THROW(Executor(std::move(c), {}), std::invalid_argument);
}

TEST(Executor, AdjointAndShiftAgreeOnVjp) {
  const Executor adjoint = make_executor(DiffMethod::Adjoint);
  const Executor shift = make_executor(DiffMethod::ParameterShift);
  const std::vector<double> params{0.8, 1.7};
  const std::vector<double> upstream{0.6, -0.3};

  const auto a = adjoint.run_with_vjp(params, upstream);
  const auto s = shift.run_with_vjp(params, upstream);

  ASSERT_EQ(a.gradient.size(), s.gradient.size());
  for (std::size_t i = 0; i < a.gradient.size(); ++i) {
    EXPECT_NEAR(a.gradient[i], s.gradient[i], 1e-10);
  }
  for (std::size_t k = 0; k < a.expectations.size(); ++k) {
    EXPECT_NEAR(a.expectations[k], s.expectations[k], 1e-12);
  }
}

TEST(Executor, VjpUpstreamSizeValidated) {
  const Executor ex = make_executor(DiffMethod::Adjoint);
  const std::vector<double> params{0.1, 0.2};
  EXPECT_THROW(ex.run_with_vjp(params, std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(Executor, JacobianMethodsAgree) {
  const Executor adjoint = make_executor(DiffMethod::Adjoint);
  const Executor shift = make_executor(DiffMethod::ParameterShift);
  const std::vector<double> params{-0.5, 1.1};
  const auto ja = adjoint.jacobian(params);
  const auto js = shift.jacobian(params);
  ASSERT_EQ(ja.size(), 2u);
  ASSERT_EQ(js.size(), 2u);
  for (std::size_t k = 0; k < 2; ++k) {
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_NEAR(ja[k][j], js[k][j], 1e-10) << "obs " << k << " param " << j;
    }
  }
}

TEST(Executor, AccessorsReportStructure) {
  const Executor ex = make_executor(DiffMethod::Adjoint);
  EXPECT_EQ(ex.observable_count(), 2u);
  EXPECT_EQ(ex.parameter_count(), 2u);
  EXPECT_EQ(ex.diff_method(), DiffMethod::Adjoint);
  EXPECT_EQ(ex.circuit().num_qubits(), 2u);
}

}  // namespace
}  // namespace qhdl::quantum
