#include "quantum/gates.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace qhdl::quantum {
namespace {

constexpr double kTol = 1e-12;

TEST(GateMeta, ArityAndFlags) {
  EXPECT_EQ(gate_arity(GateType::RX), 1u);
  EXPECT_EQ(gate_arity(GateType::CNOT), 2u);
  EXPECT_EQ(gate_arity(GateType::CRZ), 2u);
  EXPECT_TRUE(gate_is_parameterized(GateType::RY));
  EXPECT_TRUE(gate_is_parameterized(GateType::CRX));
  EXPECT_FALSE(gate_is_parameterized(GateType::Hadamard));
  EXPECT_TRUE(gate_is_controlled(GateType::CNOT));
  EXPECT_FALSE(gate_is_controlled(GateType::SWAP));
  EXPECT_EQ(gate_name(GateType::PhaseShift), "PhaseShift");
}

/// All parameterized single-qubit matrices must be unitary at any angle.
class RotationUnitarity
    : public ::testing::TestWithParam<std::tuple<GateType, double>> {};

TEST_P(RotationUnitarity, MatrixIsUnitary) {
  const auto [gate, theta] = GetParam();
  EXPECT_TRUE(gates::matrix_for(gate, theta).is_unitary())
      << gate_name(gate) << "(" << theta << ")";
}

INSTANTIATE_TEST_SUITE_P(
    AnglesAndGates, RotationUnitarity,
    ::testing::Combine(::testing::Values(GateType::RX, GateType::RY,
                                         GateType::RZ, GateType::PhaseShift),
                       ::testing::Values(-3.0, -0.5, 0.0, 0.37, 1.0,
                                         std::numbers::pi, 6.0)));

/// Fixed gates are unitary.
class FixedUnitarity : public ::testing::TestWithParam<GateType> {};

TEST_P(FixedUnitarity, MatrixIsUnitary) {
  EXPECT_TRUE(gates::matrix_for(GetParam(), 0.0).is_unitary());
}

INSTANTIATE_TEST_SUITE_P(FixedGates, FixedUnitarity,
                         ::testing::Values(GateType::PauliX, GateType::PauliY,
                                           GateType::PauliZ,
                                           GateType::Hadamard, GateType::S,
                                           GateType::T));

TEST(GateMatrices, RotationsAtZeroAreIdentity) {
  for (GateType g : {GateType::RX, GateType::RY, GateType::RZ,
                     GateType::PhaseShift}) {
    const Mat2 m = gates::matrix_for(g, 0.0);
    EXPECT_NEAR(std::abs(m.m00 - Complex{1, 0}), 0.0, kTol) << gate_name(g);
    EXPECT_NEAR(std::abs(m.m11 - Complex{1, 0}), 0.0, kTol) << gate_name(g);
    EXPECT_NEAR(std::abs(m.m01), 0.0, kTol) << gate_name(g);
    EXPECT_NEAR(std::abs(m.m10), 0.0, kTol) << gate_name(g);
  }
}

TEST(GateMatrices, RxAtPiIsMinusIX) {
  const Mat2 m = gates::rx(std::numbers::pi);
  EXPECT_NEAR(std::abs(m.m01 - Complex{0, -1}), 0.0, kTol);
  EXPECT_NEAR(std::abs(m.m10 - Complex{0, -1}), 0.0, kTol);
  EXPECT_NEAR(std::abs(m.m00), 0.0, kTol);
}

TEST(GateMatrices, SSquaredIsZ) {
  const Mat2 z = gates::s() * gates::s();
  EXPECT_NEAR(std::abs(z.m11 - Complex{-1, 0}), 0.0, kTol);
}

TEST(GateMatrices, TSquaredIsS) {
  const Mat2 s2 = gates::t() * gates::t();
  EXPECT_NEAR(std::abs(s2.m11 - gates::s().m11), 0.0, kTol);
}

/// Derivative matrices match finite differences of the gate matrices.
class DerivativeCheck
    : public ::testing::TestWithParam<std::tuple<GateType, double>> {};

TEST_P(DerivativeCheck, MatchesFiniteDifference) {
  const auto [gate, theta] = GetParam();
  const double eps = 1e-7;
  const Mat2 plus = gates::matrix_for(gate, theta + eps);
  const Mat2 minus = gates::matrix_for(gate, theta - eps);
  const Mat2 derivative = gates::derivative_for(gate, theta);

  const auto check = [&](Complex analytic, Complex p, Complex m,
                         const char* entry) {
    const Complex numeric = (p - m) / (2.0 * eps);
    EXPECT_NEAR(std::abs(analytic - numeric), 0.0, 1e-7)
        << gate_name(gate) << " " << entry << " at theta=" << theta;
  };
  check(derivative.m00, plus.m00, minus.m00, "m00");
  check(derivative.m01, plus.m01, minus.m01, "m01");
  check(derivative.m10, plus.m10, minus.m10, "m10");
  check(derivative.m11, plus.m11, minus.m11, "m11");
}

INSTANTIATE_TEST_SUITE_P(
    Rotations, DerivativeCheck,
    ::testing::Combine(::testing::Values(GateType::RX, GateType::RY,
                                         GateType::RZ, GateType::PhaseShift),
                       ::testing::Values(-1.2, 0.0, 0.7, 2.9)));

TEST(GateMatrices, DerivativeForFixedGateThrows) {
  EXPECT_THROW(gates::derivative_for(GateType::Hadamard, 0.0),
               std::invalid_argument);
}

TEST(GateMatrices, MatrixForCnotThrows) {
  EXPECT_THROW(gates::matrix_for(GateType::CNOT, 0.0), std::invalid_argument);
}

/// apply_gate followed by apply_gate_inverse restores the state for every
/// gate type.
class InverseRoundTrip : public ::testing::TestWithParam<GateType> {};

TEST_P(InverseRoundTrip, RestoresState) {
  const GateType gate = GetParam();
  StateVector state{3};
  // Prepare a non-trivial state.
  state.apply_single_qubit(gates::hadamard(), 0);
  state.apply_single_qubit(gates::ry(0.8), 1);
  state.apply_single_qubit(gates::rx(1.4), 2);
  state.apply_cnot(0, 1);
  const std::vector<Complex> before(state.amplitudes().begin(),
                                    state.amplitudes().end());

  const double theta = 0.9137;
  const std::size_t wire1 = gate_arity(gate) == 2 ? 2 : SIZE_MAX;
  apply_gate(state, gate, theta, 0, wire1);
  apply_gate_inverse(state, gate, theta, 0, wire1);

  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_NEAR(std::abs(state.amplitudes()[i] - before[i]), 0.0, 1e-12)
        << gate_name(gate) << " amplitude " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGates, InverseRoundTrip,
    ::testing::Values(GateType::PauliX, GateType::PauliY, GateType::PauliZ,
                      GateType::Hadamard, GateType::S, GateType::T,
                      GateType::RX, GateType::RY, GateType::RZ,
                      GateType::PhaseShift, GateType::CNOT, GateType::CZ,
                      GateType::SWAP, GateType::CRX, GateType::CRY,
                      GateType::CRZ, GateType::RXX, GateType::RYY,
                      GateType::RZZ));

TEST(ApplyGate, TwoQubitGateWithoutSecondWireThrows) {
  StateVector state{2};
  EXPECT_THROW(apply_gate(state, GateType::CNOT, 0.0, 0),
               std::invalid_argument);
}

TEST(ApplyGate, DerivativeOfFixedGateThrows) {
  StateVector state{2};
  EXPECT_THROW(apply_gate_derivative(state, GateType::CNOT, 0.0, 0, 1),
               std::invalid_argument);
}

TEST(ApplyGate, ControlledRotationActsOnlyOnControlOne) {
  // CRX on |00⟩ does nothing; on |10⟩ rotates the target.
  StateVector state{2};
  apply_gate(state, GateType::CRX, 1.1, 0, 1);
  EXPECT_NEAR(state.probability(0b00), 1.0, kTol);

  StateVector excited{2};
  excited.apply_single_qubit(gates::pauli_x(), 0);
  apply_gate(excited, GateType::CRX, 1.1, 0, 1);
  EXPECT_NEAR(excited.probability(0b10), std::cos(0.55) * std::cos(0.55),
              1e-12);
  EXPECT_NEAR(excited.probability(0b11), std::sin(0.55) * std::sin(0.55),
              1e-12);
}

}  // namespace
}  // namespace qhdl::quantum
