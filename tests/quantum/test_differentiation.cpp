// Cross-validation of the three gradient methods: adjoint differentiation,
// parameter-shift rules, and central finite differences — over hand-built
// circuits and randomized property sweeps.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "quantum/adjoint_diff.hpp"
#include "quantum/parameter_shift.hpp"
#include "test_helpers.hpp"

namespace qhdl::quantum {
namespace {

TEST(AdjointDiff, SingleRxAnalytic) {
  // E(θ) = ⟨Z⟩ after RX(θ) = cos θ; dE/dθ = -sin θ.
  Circuit c{1};
  c.parameterized_gate(GateType::RX, 0, 0);
  for (double theta : {-2.0, -0.3, 0.0, 0.9, 2.5}) {
    const std::vector<double> params{theta};
    const AdjointResult r =
        adjoint_gradient(c, params, Observable::pauli_z(0));
    EXPECT_NEAR(r.expectation, std::cos(theta), 1e-12);
    EXPECT_NEAR(r.gradient[0], -std::sin(theta), 1e-12);
  }
}

TEST(AdjointDiff, RyAnalytic) {
  Circuit c{1};
  c.parameterized_gate(GateType::RY, 0, 0);
  const std::vector<double> params{0.77};
  const AdjointResult r = adjoint_gradient(c, params, Observable::pauli_z(0));
  EXPECT_NEAR(r.gradient[0], -std::sin(0.77), 1e-12);
}

TEST(AdjointDiff, SharedParameterAccumulates) {
  // RX(θ)RX(θ) = RX(2θ): dE/dθ = -2 sin(2θ).
  Circuit c{1};
  c.parameterized_gate(GateType::RX, 0, 0);
  c.parameterized_gate(GateType::RX, 0, 0);
  const std::vector<double> params{0.6};
  const AdjointResult r = adjoint_gradient(c, params, Observable::pauli_z(0));
  EXPECT_NEAR(r.gradient[0], -2.0 * std::sin(1.2), 1e-12);
}

TEST(AdjointDiff, EntangledCircuitMatchesNumerical) {
  Circuit c{2};
  c.parameterized_gate(GateType::RY, 0, 0);
  c.gate(GateType::CNOT, 0, 1);
  c.parameterized_gate(GateType::RX, 1, 1);
  const std::vector<double> params{0.8, -1.3};
  const Observable obs = Observable::pauli_z(1);
  const AdjointResult r = adjoint_gradient(c, params, obs);
  const auto numeric = testing::numerical_circuit_gradient(c, params, obs);
  for (std::size_t i = 0; i < params.size(); ++i) {
    EXPECT_NEAR(r.gradient[i], numeric[i], 1e-8);
  }
}

TEST(ParameterShift, MatchesAnalyticSingleGate) {
  Circuit c{1};
  c.parameterized_gate(GateType::RX, 0, 0);
  const std::vector<double> params{1.1};
  const auto grad =
      parameter_shift_gradient(c, params, Observable::pauli_z(0));
  EXPECT_NEAR(grad[0], -std::sin(1.1), 1e-12);
}

TEST(ParameterShift, EvaluationCountRules) {
  Circuit c{2};
  c.parameterized_gate(GateType::RX, 0, 0);       // 2 evals
  c.parameterized_gate(GateType::CRY, 1, 0, 1);   // 4 evals
  c.gate(GateType::CNOT, 0, 1);                   // 0 evals
  c.parameterized_gate(GateType::PhaseShift, 2, 1);  // 2 evals
  EXPECT_EQ(parameter_shift_evaluation_count(c), 8u);
}

TEST(ParameterShift, ShiftHelperBounds) {
  Circuit c{1};
  c.parameterized_gate(GateType::RX, 0, 0);
  const std::vector<double> params{0.5};
  EXPECT_THROW(expectation_with_op_shift(c, params, Observable::pauli_z(0),
                                         5, 0.1),
               std::out_of_range);
}

/// Property sweep: all three gradient methods agree on random circuits
/// covering RX/RY/RZ/PhaseShift/CRX/CRY/CRZ/CNOT/CZ.
struct RandomCircuitCase {
  std::size_t qubits;
  std::size_t ops;
  std::uint64_t seed;
};

class GradientAgreement : public ::testing::TestWithParam<RandomCircuitCase> {
};

TEST_P(GradientAgreement, AdjointVsShiftVsNumerical) {
  const RandomCircuitCase param = GetParam();
  util::Rng rng{param.seed};
  std::vector<double> params;
  const Circuit c =
      testing::random_circuit(param.qubits, param.ops, rng, params);

  // Random weighted-Z observable exercises the multi-term path.
  std::vector<double> weights;
  std::vector<std::size_t> wires;
  for (std::size_t w = 0; w < param.qubits; ++w) {
    weights.push_back(rng.uniform(-1.0, 1.0));
    wires.push_back(w);
  }
  const Observable obs = Observable::weighted_z_sum(weights, wires);

  const AdjointResult adjoint = adjoint_gradient(c, params, obs);
  const auto shift = parameter_shift_gradient(c, params, obs);
  const auto numeric = testing::numerical_circuit_gradient(c, params, obs);

  ASSERT_EQ(adjoint.gradient.size(), params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    EXPECT_NEAR(adjoint.gradient[i], shift[i], 1e-10)
        << "param " << i << " adjoint vs shift";
    EXPECT_NEAR(adjoint.gradient[i], numeric[i], 1e-7)
        << "param " << i << " adjoint vs numerical";
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomCircuits, GradientAgreement,
    ::testing::Values(RandomCircuitCase{1, 4, 101},
                      RandomCircuitCase{2, 6, 102},
                      RandomCircuitCase{2, 10, 103},
                      RandomCircuitCase{3, 8, 104},
                      RandomCircuitCase{3, 14, 105},
                      RandomCircuitCase{4, 12, 106},
                      RandomCircuitCase{4, 20, 107},
                      RandomCircuitCase{5, 16, 108}));

TEST(AdjointVjp, MatchesWeightedJacobianContraction) {
  util::Rng rng{55};
  std::vector<double> params;
  const Circuit c = testing::random_circuit(3, 10, rng, params);

  std::vector<Observable> observables;
  for (std::size_t w = 0; w < 3; ++w) {
    observables.push_back(Observable::pauli_z(w));
  }
  const std::vector<double> upstream{0.3, -1.1, 0.5};

  const AdjointVjpResult vjp = adjoint_vjp(c, params, observables, upstream);
  const auto jacobian = adjoint_jacobian(c, params, observables);

  for (std::size_t j = 0; j < params.size(); ++j) {
    double expected = 0.0;
    for (std::size_t k = 0; k < observables.size(); ++k) {
      expected += upstream[k] * jacobian[k][j];
    }
    EXPECT_NEAR(vjp.gradient[j], expected, 1e-10);
  }
  // Expectations from the VJP match direct evaluation.
  const StateVector psi = c.execute(params);
  for (std::size_t k = 0; k < observables.size(); ++k) {
    EXPECT_NEAR(vjp.expectations[k], observables[k].expectation(psi), 1e-12);
  }
}

TEST(AdjointVjp, ZeroUpstreamGivesZeroGradient) {
  util::Rng rng{56};
  std::vector<double> params;
  const Circuit c = testing::random_circuit(2, 6, rng, params);
  const std::vector<Observable> observables{Observable::pauli_z(0)};
  const std::vector<double> upstream{0.0};
  const AdjointVjpResult vjp = adjoint_vjp(c, params, observables, upstream);
  for (double g : vjp.gradient) EXPECT_DOUBLE_EQ(g, 0.0);
}

TEST(AdjointVjp, SizeMismatchThrows) {
  Circuit c{1};
  c.parameterized_gate(GateType::RX, 0, 0);
  const std::vector<double> params{0.1};
  const std::vector<Observable> observables{Observable::pauli_z(0)};
  const std::vector<double> upstream{1.0, 2.0};
  EXPECT_THROW(adjoint_vjp(c, params, observables, upstream),
               std::invalid_argument);
}

TEST(AdjointDiff, GradientOfCircuitWithOnlyFixedGatesIsEmpty) {
  Circuit c{2};
  c.gate(GateType::Hadamard, 0).gate(GateType::CNOT, 0, 1);
  const AdjointResult r = adjoint_gradient(c, std::vector<double>{},
                                           Observable::pauli_z(0));
  EXPECT_TRUE(r.gradient.empty());
  EXPECT_NEAR(r.expectation, 0.0, 1e-12);
}

}  // namespace
}  // namespace qhdl::quantum
