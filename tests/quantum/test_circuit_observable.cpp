#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "quantum/circuit.hpp"
#include "quantum/observable.hpp"

namespace qhdl::quantum {
namespace {

constexpr double kTol = 1e-12;

TEST(Circuit, BuildAndCount) {
  Circuit c{3};
  c.gate(GateType::Hadamard, 0)
      .parameterized_gate(GateType::RX, 0, 1)
      .gate(GateType::CNOT, 0, 2)
      .parameterized_gate(GateType::RZ, 1, 2);
  EXPECT_EQ(c.op_count(), 4u);
  EXPECT_EQ(c.parameter_count(), 2u);
  EXPECT_EQ(c.parameterized_op_count(), 2u);
}

TEST(Circuit, ValidatesWires) {
  Circuit c{2};
  EXPECT_THROW(c.gate(GateType::Hadamard, 2), std::out_of_range);
  EXPECT_THROW(c.gate(GateType::CNOT, 0, 0), std::invalid_argument);
  EXPECT_THROW(c.gate(GateType::CNOT, 0), std::invalid_argument);
  EXPECT_THROW(c.gate(GateType::Hadamard, 0, 1), std::invalid_argument);
  EXPECT_THROW(c.parameterized_gate(GateType::CNOT, 0, 0, 1),
               std::invalid_argument);
}

TEST(Circuit, ZeroQubitsThrows) {
  EXPECT_THROW(Circuit{0}, std::invalid_argument);
}

TEST(Circuit, ExecuteAppliesOpsInOrder) {
  Circuit c{1};
  c.parameterized_gate(GateType::RX, 0, 0);
  const std::vector<double> params{1.234};
  const StateVector state = c.execute(params);
  EXPECT_NEAR(state.expval_pauli_z(0), std::cos(1.234), kTol);
}

TEST(Circuit, FixedAngleGates) {
  Circuit c{1};
  c.gate(GateType::RX, 0, SIZE_MAX, 0.6);
  const StateVector state = c.execute(std::vector<double>{});
  EXPECT_NEAR(state.expval_pauli_z(0), std::cos(0.6), kTol);
}

TEST(Circuit, RunValidatesParamCountAndState) {
  Circuit c{2};
  c.parameterized_gate(GateType::RX, 1, 0);  // needs params[0..1]
  StateVector state{2};
  EXPECT_THROW(c.run(state, std::vector<double>{0.1}),
               std::invalid_argument);
  StateVector wrong{3};
  EXPECT_THROW(c.run(wrong, std::vector<double>{0.1, 0.2}),
               std::invalid_argument);
}

TEST(Circuit, RotDecomposition) {
  // Rot(φ,θ,ω) acting on |0⟩: ⟨Z⟩ depends only on θ.
  Circuit c{1};
  c.rot(0, 0);
  EXPECT_EQ(c.parameter_count(), 3u);
  const std::vector<double> params{0.3, 1.1, -0.7};
  const StateVector state = c.execute(params);
  EXPECT_NEAR(state.expval_pauli_z(0), std::cos(1.1), kTol);
}

TEST(Circuit, SharedParameterIndex) {
  // Two RX gates sharing one parameter compose: RX(θ)RX(θ) = RX(2θ).
  Circuit c{1};
  c.parameterized_gate(GateType::RX, 0, 0);
  c.parameterized_gate(GateType::RX, 0, 0);
  const std::vector<double> params{0.4};
  const StateVector state = c.execute(params);
  EXPECT_NEAR(state.expval_pauli_z(0), std::cos(0.8), kTol);
}

TEST(Circuit, ToStringMentionsOps) {
  Circuit c{2};
  c.parameterized_gate(GateType::RX, 0, 0).gate(GateType::CNOT, 0, 1);
  const std::string s = c.to_string();
  EXPECT_NE(s.find("RX(p0) q0"), std::string::npos);
  EXPECT_NE(s.find("CNOT q0,q1"), std::string::npos);
}

TEST(Observable, PauliZExpectations) {
  const Observable z0 = Observable::pauli_z(0);
  StateVector state{2};
  EXPECT_NEAR(z0.expectation(state), 1.0, kTol);
  state.apply_single_qubit(gates::pauli_x(), 0);
  EXPECT_NEAR(z0.expectation(state), -1.0, kTol);
}

TEST(Observable, WeightedZSum) {
  const std::vector<double> weights{0.5, -2.0};
  const std::vector<std::size_t> wires{0, 1};
  const Observable obs = Observable::weighted_z_sum(weights, wires);
  StateVector state{2};  // |00⟩: 0.5*1 + (-2)*1 = -1.5
  EXPECT_NEAR(obs.expectation(state), -1.5, kTol);
  state.apply_single_qubit(gates::pauli_x(), 1);  // |01⟩: 0.5 + 2 = 2.5
  EXPECT_NEAR(obs.expectation(state), 2.5, kTol);
}

TEST(Observable, WeightedZSumSizeMismatchThrows) {
  const std::vector<double> weights{1.0};
  const std::vector<std::size_t> wires{0, 1};
  EXPECT_THROW(Observable::weighted_z_sum(weights, wires),
               std::invalid_argument);
}

TEST(Observable, PauliXExpectation) {
  // ⟨+|X|+⟩ = 1.
  Observable x{PauliWord{{Pauli::X}, {0}}};
  StateVector state{1};
  state.apply_single_qubit(gates::hadamard(), 0);
  EXPECT_NEAR(x.expectation(state), 1.0, kTol);
  EXPECT_FALSE(x.is_diagonal());
}

TEST(Observable, PauliYExpectation) {
  // RX(-π/2)|0⟩ = (|0⟩ + i|1⟩)/√2, the +1 eigenstate of Y.
  Observable y{PauliWord{{Pauli::Y}, {0}}};
  StateVector state{1};
  state.apply_single_qubit(gates::rx(-std::numbers::pi / 2.0), 0);
  EXPECT_NEAR(y.expectation(state), 1.0, kTol);
}

TEST(Observable, TwoQubitWordZZ) {
  // Bell state (|00⟩+|11⟩)/√2 has ⟨Z⊗Z⟩ = 1 and ⟨Z_0⟩ = 0.
  Observable zz{PauliWord{{Pauli::Z, Pauli::Z}, {0, 1}}};
  StateVector state{2};
  state.apply_single_qubit(gates::hadamard(), 0);
  state.apply_cnot(0, 1);
  EXPECT_NEAR(zz.expectation(state), 1.0, kTol);
  EXPECT_NEAR(Observable::pauli_z(0).expectation(state), 0.0, kTol);
  EXPECT_TRUE(zz.is_diagonal());
}

TEST(Observable, ApplyMatchesExpectation) {
  // ⟨ψ|O|ψ⟩ computed via apply + inner product must match expectation().
  Observable obs;
  obs.add_term(0.7, PauliWord{{Pauli::Z}, {0}});
  obs.add_term(-0.4, PauliWord{{Pauli::X, Pauli::Z}, {1, 2}});
  StateVector state{3};
  state.apply_single_qubit(gates::ry(0.9), 0);
  state.apply_single_qubit(gates::hadamard(), 1);
  state.apply_cnot(1, 2);

  StateVector out{3};
  obs.apply(state, out);
  EXPECT_NEAR(state.inner_product(out).real(), obs.expectation(state), kTol);
}

TEST(Observable, IdentityWordActsAsIdentity) {
  Observable id{PauliWord::identity()};
  StateVector state{2};
  state.apply_single_qubit(gates::ry(1.3), 0);
  EXPECT_NEAR(id.expectation(state), 1.0, kTol);  // ⟨ψ|ψ⟩ = 1
}

TEST(Observable, MalformedWordThrows) {
  Observable obs;
  PauliWord bad;
  bad.factors = {Pauli::Z};
  bad.wires = {};  // length mismatch
  EXPECT_THROW(obs.add_term(1.0, bad), std::invalid_argument);
}

TEST(Observable, ToStringRendersTerms) {
  Observable obs;
  obs.add_term(0.5, PauliWord::z(1));
  EXPECT_NE(obs.to_string().find("Z1"), std::string::npos);
  EXPECT_EQ(Observable{}.to_string(), "0");
}

}  // namespace
}  // namespace qhdl::quantum
