// Cross-backend GEMM bit-identity (DESIGN.md §13): the packed blocked path
// dispatches its 4x4 micro-kernel through the backend registry; every
// supported backend must produce byte-for-byte identical results because
// each acc element sums its products in ascending p regardless of ISA.
#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/gemm.hpp"
#include "util/backend_registry.hpp"
#include "util/rng.hpp"

namespace {

using namespace qhdl;
namespace simd = util::simd;

class BackendScope {
 public:
  explicit BackendScope(const char* name) { simd::set_backend(name); }
  ~BackendScope() { simd::set_backend(std::nullopt); }
};

std::vector<const simd::Backend*> supported_backends() {
  std::vector<const simd::Backend*> out;
  for (const simd::Backend* backend : simd::backends()) {
    if (!backend->supported()) continue;
    if (std::string{backend->name} == "generic") continue;
    out.push_back(backend);
  }
  return out;
}

std::vector<double> random_matrix(std::size_t rows, std::size_t cols,
                                  util::Rng& rng) {
  return rng.uniform_vector(rows * cols, -1.0, 1.0);
}

std::vector<double> run_dgemm(std::size_t m, std::size_t n, std::size_t k,
                              const std::vector<double>& a, bool a_transposed,
                              const std::vector<double>& b, bool b_transposed,
                              bool accumulate) {
  std::vector<double> c(m * n, accumulate ? 0.5 : -7.0);
  const std::size_t lda = a_transposed ? m : k;
  const std::size_t ldb = b_transposed ? k : n;
  tensor::gemm::dgemm(m, n, k, a.data(), lda, a_transposed, b.data(), ldb,
                      b_transposed, c.data(), n, accumulate);
  return c;
}

struct Shape {
  std::size_t m, n, k;
  const char* note;
};

TEST(GemmBackend, PackedAndDirectPathsBitIdenticalAcrossBackends) {
  // 160^3 and the k=300 case exceed the direct-path dispatch bounds
  // (k <= 256, n <= 128, k*n <= 8192), so they run the packed blocked path
  // whose micro-kernel is registry-dispatched — including edge tiles (166
  // is not a multiple of the 4x4 register tile). The small shapes cover the
  // shared direct kernels for completeness.
  const std::vector<Shape> shapes = {
      {160, 160, 160, "packed, k*n > 8192"},
      {166, 131, 300, "packed, k > KC, ragged tiles"},
      {8, 48, 32, "direct row kernel"},
      {5, 3, 7, "direct, sub-tile"},
  };
  util::Rng rng{90210};
  for (const Shape& shape : shapes) {
    for (const bool a_transposed : {false, true}) {
      for (const bool b_transposed : {false, true}) {
        for (const bool accumulate : {false, true}) {
          const auto a = a_transposed
                             ? random_matrix(shape.k, shape.m, rng)
                             : random_matrix(shape.m, shape.k, rng);
          const auto b = b_transposed
                             ? random_matrix(shape.n, shape.k, rng)
                             : random_matrix(shape.k, shape.n, rng);
          std::vector<double> golden;
          {
            const BackendScope scope{"generic"};
            golden = run_dgemm(shape.m, shape.n, shape.k, a, a_transposed, b,
                               b_transposed, accumulate);
          }
          for (const simd::Backend* backend : supported_backends()) {
            const BackendScope scope{backend->name};
            const auto candidate = run_dgemm(shape.m, shape.n, shape.k, a,
                                             a_transposed, b, b_transposed,
                                             accumulate);
            ASSERT_EQ(candidate.size(), golden.size());
            for (std::size_t i = 0; i < golden.size(); ++i) {
              ASSERT_EQ(candidate[i], golden[i])
                  << backend->name << " " << shape.note << " m=" << shape.m
                  << " n=" << shape.n << " k=" << shape.k
                  << " aT=" << a_transposed << " bT=" << b_transposed
                  << " acc=" << accumulate << " element " << i;
            }
          }
        }
      }
    }
  }
}

}  // namespace
