#include "tensor/ops.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/init.hpp"
#include "util/rng.hpp"

namespace qhdl::tensor {
namespace {

TEST(Ops, MatmulKnownValues) {
  const Tensor a = Tensor::matrix(2, 3, {1, 2, 3, 4, 5, 6});
  const Tensor b = Tensor::matrix(3, 2, {7, 8, 9, 10, 11, 12});
  const Tensor c = matmul(a, b);
  EXPECT_EQ(c.shape(), Shape({2, 2}));
  EXPECT_DOUBLE_EQ(c.at(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 154.0);
}

TEST(Ops, MatmulShapeMismatchThrows) {
  const Tensor a = Tensor::matrix(2, 3, {1, 2, 3, 4, 5, 6});
  const Tensor b = Tensor::matrix(2, 2, {1, 2, 3, 4});
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
}

TEST(Ops, MatmulIdentity) {
  util::Rng rng{1};
  const Tensor a = uniform(Shape{4, 4}, -1, 1, rng);
  EXPECT_TRUE(allclose(matmul(a, Tensor::identity(4)), a));
  EXPECT_TRUE(allclose(matmul(Tensor::identity(4), a), a));
}

TEST(Ops, TransposedVariantsMatchExplicitTranspose) {
  util::Rng rng{2};
  const Tensor a = uniform(Shape{3, 5}, -1, 1, rng);
  const Tensor b = uniform(Shape{3, 4}, -1, 1, rng);
  // Aᵀ·B via matmul_transpose_a must equal transpose(A)·B.
  EXPECT_TRUE(allclose(matmul_transpose_a(a, b), matmul(transpose(a), b)));

  const Tensor c = uniform(Shape{5, 3}, -1, 1, rng);
  const Tensor d = uniform(Shape{4, 3}, -1, 1, rng);
  // C·Dᵀ via matmul_transpose_b must equal C·transpose(D).
  EXPECT_TRUE(allclose(matmul_transpose_b(c, d), matmul(c, transpose(d))));
}

TEST(Ops, TransposeInvolution) {
  util::Rng rng{3};
  const Tensor a = uniform(Shape{3, 7}, -1, 1, rng);
  EXPECT_TRUE(allclose(transpose(transpose(a)), a));
}

TEST(Ops, ElementwiseArithmetic) {
  const Tensor a = Tensor::matrix(1, 3, {1, 2, 3});
  const Tensor b = Tensor::matrix(1, 3, {10, 20, 30});
  EXPECT_DOUBLE_EQ(add(a, b).at(0, 2), 33.0);
  EXPECT_DOUBLE_EQ(subtract(b, a).at(0, 0), 9.0);
  EXPECT_DOUBLE_EQ(multiply(a, b).at(0, 1), 40.0);
  EXPECT_THROW(add(a, Tensor::matrix(1, 2, {1, 2})), std::invalid_argument);
}

TEST(Ops, InplaceOps) {
  Tensor a = Tensor::matrix(1, 2, {1, 2});
  add_inplace(a, Tensor::matrix(1, 2, {3, 4}));
  EXPECT_DOUBLE_EQ(a.at(0, 1), 6.0);
  scale_inplace(a, 0.5);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(scale(a, 2.0).at(0, 0), 4.0);
}

TEST(Ops, RowBroadcast) {
  const Tensor m = Tensor::matrix(2, 3, {0, 0, 0, 1, 1, 1});
  const Tensor row = Tensor::row({10, 20, 30});
  const Tensor out = add_row_broadcast(m, row);
  EXPECT_DOUBLE_EQ(out.at(0, 0), 10.0);
  EXPECT_DOUBLE_EQ(out.at(1, 2), 31.0);
  EXPECT_THROW(add_row_broadcast(m, Tensor::row({1, 2})),
               std::invalid_argument);
}

TEST(Ops, MapSumMean) {
  const Tensor a = Tensor::matrix(1, 4, {1, 2, 3, 4});
  const Tensor doubled = map(a, [](double v) { return 2 * v; });
  EXPECT_DOUBLE_EQ(doubled.at(0, 3), 8.0);
  EXPECT_DOUBLE_EQ(sum(a), 10.0);
  EXPECT_DOUBLE_EQ(mean_value(a), 2.5);
}

TEST(Ops, SumRows) {
  const Tensor m = Tensor::matrix(2, 3, {1, 2, 3, 4, 5, 6});
  const Tensor sums = sum_rows(m);
  EXPECT_EQ(sums.shape(), Shape({1, 3}));
  EXPECT_DOUBLE_EQ(sums[0], 5.0);
  EXPECT_DOUBLE_EQ(sums[2], 9.0);
}

TEST(Ops, ArgmaxRow) {
  const Tensor m = Tensor::matrix(2, 3, {0.1, 0.9, 0.3, 5, 4, 6});
  EXPECT_EQ(argmax_row(m, 0), 1u);
  EXPECT_EQ(argmax_row(m, 1), 2u);
  EXPECT_THROW(argmax_row(m, 2), std::out_of_range);
}

TEST(Ops, NormsAndDifferences) {
  const Tensor a = Tensor::matrix(1, 2, {3, 4});
  EXPECT_DOUBLE_EQ(norm(a), 5.0);
  const Tensor b = Tensor::matrix(1, 2, {3, 4.5});
  EXPECT_DOUBLE_EQ(max_abs_difference(a, b), 0.5);
  EXPECT_TRUE(allclose(a, a));
  EXPECT_FALSE(allclose(a, b, 1e-9, 1e-9));
}

TEST(Ops, AllcloseShapeMismatchFalse) {
  EXPECT_FALSE(allclose(Tensor{Shape{2}}, Tensor{Shape{3}}));
}

TEST(Init, GlorotUniformBounds) {
  util::Rng rng{1};
  const std::size_t fan_in = 10, fan_out = 6;
  const Tensor w = glorot_uniform(fan_in, fan_out, rng);
  EXPECT_EQ(w.shape(), Shape({fan_in, fan_out}));
  const double limit = std::sqrt(6.0 / (fan_in + fan_out));
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_GE(w[i], -limit);
    EXPECT_LE(w[i], limit);
  }
}

TEST(Init, HeNormalVariance) {
  util::Rng rng{2};
  const Tensor w = he_normal(100, 200, rng);
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) sum_sq += w[i] * w[i];
  const double var = sum_sq / static_cast<double>(w.size());
  EXPECT_NEAR(var, 2.0 / 100.0, 0.002);
}

TEST(Init, DeterministicForSeed) {
  util::Rng rng1{5}, rng2{5};
  const Tensor a = glorot_uniform(4, 4, rng1);
  const Tensor b = glorot_uniform(4, 4, rng2);
  EXPECT_TRUE(allclose(a, b, 0, 0));
}

}  // namespace
}  // namespace qhdl::tensor
