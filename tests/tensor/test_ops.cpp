#include "tensor/ops.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/init.hpp"
#include "util/rng.hpp"

namespace qhdl::tensor {
namespace {

TEST(Ops, MatmulKnownValues) {
  const Tensor a = Tensor::matrix(2, 3, {1, 2, 3, 4, 5, 6});
  const Tensor b = Tensor::matrix(3, 2, {7, 8, 9, 10, 11, 12});
  const Tensor c = matmul(a, b);
  EXPECT_EQ(c.shape(), Shape({2, 2}));
  EXPECT_DOUBLE_EQ(c.at(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 154.0);
}

TEST(Ops, MatmulShapeMismatchThrows) {
  const Tensor a = Tensor::matrix(2, 3, {1, 2, 3, 4, 5, 6});
  const Tensor b = Tensor::matrix(2, 2, {1, 2, 3, 4});
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
}

TEST(Ops, MatmulIdentity) {
  util::Rng rng{1};
  const Tensor a = uniform(Shape{4, 4}, -1, 1, rng);
  EXPECT_TRUE(allclose(matmul(a, Tensor::identity(4)), a));
  EXPECT_TRUE(allclose(matmul(Tensor::identity(4), a), a));
}

TEST(Ops, TransposedVariantsMatchExplicitTranspose) {
  util::Rng rng{2};
  const Tensor a = uniform(Shape{3, 5}, -1, 1, rng);
  const Tensor b = uniform(Shape{3, 4}, -1, 1, rng);
  // Aᵀ·B via matmul_transpose_a must equal transpose(A)·B.
  EXPECT_TRUE(allclose(matmul_transpose_a(a, b), matmul(transpose(a), b)));

  const Tensor c = uniform(Shape{5, 3}, -1, 1, rng);
  const Tensor d = uniform(Shape{4, 3}, -1, 1, rng);
  // C·Dᵀ via matmul_transpose_b must equal C·transpose(D).
  EXPECT_TRUE(allclose(matmul_transpose_b(c, d), matmul(c, transpose(d))));
}

// Naive j-inner triple loop with ascending-k accumulation — the arithmetic
// order the blocked GEMM must reproduce exactly (per element, contributions
// arrive in ascending k).
Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  Tensor c{Shape{a.rows(), b.cols()}};
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aval = a.at(i, k);
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c.at(i, j) += aval * b.at(k, j);
      }
    }
  }
  return c;
}

TEST(Ops, MatmulZeroHeavyInputs) {
  // The old kernel skipped a == 0.0 contributions with a data-dependent
  // branch; the blocked kernel must handle zero-heavy inputs (e.g. ReLU
  // activations) with no special casing and no wrong results.
  util::Rng rng{7};
  Tensor a = uniform(Shape{9, 13}, -1, 1, rng);
  for (std::size_t i = 0; i < a.size(); i += 2) a[i] = 0.0;  // ~half zeros
  const Tensor b = uniform(Shape{13, 6}, -1, 1, rng);
  const Tensor c = matmul(a, b);
  const Tensor expected = naive_matmul(a, b);
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_EQ(c[i], expected[i]);

  const Tensor all_zero = Tensor::zeros(Shape{9, 13});
  const Tensor zc = matmul(all_zero, b);
  for (std::size_t i = 0; i < zc.size(); ++i) EXPECT_EQ(zc[i], 0.0);
}

TEST(Ops, BlockedMatmulBitIdenticalToNaiveOrder) {
  // Shapes that exercise full tiles, edge tiles, and the search-space
  // extremes (k stays below the 256-wide k-block, so the packed kernel's
  // per-element accumulation order is exactly ascending k).
  const struct { std::size_t m, k, n; } shapes[] = {
      {1, 1, 1}, {4, 4, 4}, {5, 3, 7}, {8, 110, 10},
      {37, 29, 11}, {70, 2, 130}, {3, 256, 5},
  };
  util::Rng rng{11};
  for (const auto& s : shapes) {
    const Tensor a = uniform(Shape{s.m, s.k}, -1, 1, rng);
    const Tensor b = uniform(Shape{s.k, s.n}, -1, 1, rng);
    const Tensor c = matmul(a, b);
    const Tensor expected = naive_matmul(a, b);
    for (std::size_t i = 0; i < c.size(); ++i) {
      ASSERT_EQ(c[i], expected[i])
          << "m=" << s.m << " k=" << s.k << " n=" << s.n << " flat=" << i;
    }
  }
}

TEST(Ops, MatmulLargeKMatchesNaiveClosely) {
  // k > 256 splits the accumulation across k-blocks (different rounding
  // order than the naive loop, same value up to normal fp tolerance).
  util::Rng rng{13};
  const Tensor a = uniform(Shape{6, 300}, -1, 1, rng);
  const Tensor b = uniform(Shape{300, 5}, -1, 1, rng);
  EXPECT_TRUE(allclose(matmul(a, b), naive_matmul(a, b), 1e-12, 1e-12));
}

TEST(Ops, MatmulIntoMatchesMatmul) {
  util::Rng rng{17};
  const Tensor a = uniform(Shape{6, 9}, -1, 1, rng);
  const Tensor b = uniform(Shape{9, 4}, -1, 1, rng);
  Tensor out{Shape{6, 4}};
  matmul_into(a, b, out);
  const Tensor expected = matmul(a, b);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], expected[i]);

  Tensor bad{Shape{4, 6}};
  EXPECT_THROW(matmul_into(a, b, bad), std::invalid_argument);
}

TEST(Ops, MatmulTransposeAIntoAccumulates) {
  util::Rng rng{19};
  const Tensor a = uniform(Shape{8, 5}, -1, 1, rng);   // [batch, in]
  const Tensor b = uniform(Shape{8, 3}, -1, 1, rng);   // [batch, out]
  const Tensor product = matmul_transpose_a(a, b);     // [in, out]

  Tensor acc = Tensor::full(Shape{5, 3}, 1.5);
  matmul_transpose_a_into(a, b, acc, /*accumulate=*/true);
  for (std::size_t i = 0; i < acc.size(); ++i) {
    EXPECT_DOUBLE_EQ(acc[i], 1.5 + product[i]);
  }

  Tensor fresh{Shape{5, 3}};
  matmul_transpose_a_into(a, b, fresh, /*accumulate=*/false);
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_EQ(fresh[i], product[i]);
  }
}

TEST(Ops, MatmulTransposeBIntoMatches) {
  util::Rng rng{23};
  const Tensor a = uniform(Shape{7, 4}, -1, 1, rng);   // [batch, out]
  const Tensor b = uniform(Shape{6, 4}, -1, 1, rng);   // [in, out] (W)
  Tensor out{Shape{7, 6}};
  matmul_transpose_b_into(a, b, out);
  const Tensor expected = matmul_transpose_b(a, b);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], expected[i]);
}

TEST(Ops, AddRowBroadcastIntoAliasesSafely) {
  Tensor m = Tensor::matrix(2, 3, {0, 0, 0, 1, 1, 1});
  const Tensor row = Tensor::row({10, 20, 30});
  Tensor out{Shape{2, 3}};
  add_row_broadcast_into(m, row, out);
  EXPECT_DOUBLE_EQ(out.at(0, 0), 10.0);
  EXPECT_DOUBLE_EQ(out.at(1, 2), 31.0);
  // In-place form: out aliases the matrix.
  add_row_broadcast_into(m, row, m);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 20.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 11.0);
  EXPECT_THROW(add_row_broadcast_into(m, Tensor::row({1, 2}), m),
               std::invalid_argument);
}

TEST(Ops, SumRowsIntoAccumulates) {
  const Tensor m = Tensor::matrix(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor acc = Tensor::row({10, 10, 10});
  sum_rows_into(m, acc, /*accumulate=*/true);
  EXPECT_DOUBLE_EQ(acc[0], 15.0);
  EXPECT_DOUBLE_EQ(acc[2], 19.0);
  sum_rows_into(m, acc, /*accumulate=*/false);
  EXPECT_DOUBLE_EQ(acc[1], 7.0);
}

TEST(Ops, TransposeInvolution) {
  util::Rng rng{3};
  const Tensor a = uniform(Shape{3, 7}, -1, 1, rng);
  EXPECT_TRUE(allclose(transpose(transpose(a)), a));
}

TEST(Ops, ElementwiseArithmetic) {
  const Tensor a = Tensor::matrix(1, 3, {1, 2, 3});
  const Tensor b = Tensor::matrix(1, 3, {10, 20, 30});
  EXPECT_DOUBLE_EQ(add(a, b).at(0, 2), 33.0);
  EXPECT_DOUBLE_EQ(subtract(b, a).at(0, 0), 9.0);
  EXPECT_DOUBLE_EQ(multiply(a, b).at(0, 1), 40.0);
  EXPECT_THROW(add(a, Tensor::matrix(1, 2, {1, 2})), std::invalid_argument);
}

TEST(Ops, InplaceOps) {
  Tensor a = Tensor::matrix(1, 2, {1, 2});
  add_inplace(a, Tensor::matrix(1, 2, {3, 4}));
  EXPECT_DOUBLE_EQ(a.at(0, 1), 6.0);
  scale_inplace(a, 0.5);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(scale(a, 2.0).at(0, 0), 4.0);
}

TEST(Ops, RowBroadcast) {
  const Tensor m = Tensor::matrix(2, 3, {0, 0, 0, 1, 1, 1});
  const Tensor row = Tensor::row({10, 20, 30});
  const Tensor out = add_row_broadcast(m, row);
  EXPECT_DOUBLE_EQ(out.at(0, 0), 10.0);
  EXPECT_DOUBLE_EQ(out.at(1, 2), 31.0);
  EXPECT_THROW(add_row_broadcast(m, Tensor::row({1, 2})),
               std::invalid_argument);
}

TEST(Ops, MapSumMean) {
  const Tensor a = Tensor::matrix(1, 4, {1, 2, 3, 4});
  const Tensor doubled = map(a, [](double v) { return 2 * v; });
  EXPECT_DOUBLE_EQ(doubled.at(0, 3), 8.0);
  EXPECT_DOUBLE_EQ(sum(a), 10.0);
  EXPECT_DOUBLE_EQ(mean_value(a), 2.5);
}

TEST(Ops, SumRows) {
  const Tensor m = Tensor::matrix(2, 3, {1, 2, 3, 4, 5, 6});
  const Tensor sums = sum_rows(m);
  EXPECT_EQ(sums.shape(), Shape({1, 3}));
  EXPECT_DOUBLE_EQ(sums[0], 5.0);
  EXPECT_DOUBLE_EQ(sums[2], 9.0);
}

TEST(Ops, ArgmaxRow) {
  const Tensor m = Tensor::matrix(2, 3, {0.1, 0.9, 0.3, 5, 4, 6});
  EXPECT_EQ(argmax_row(m, 0), 1u);
  EXPECT_EQ(argmax_row(m, 1), 2u);
  EXPECT_THROW(argmax_row(m, 2), std::out_of_range);
}

TEST(Ops, NormsAndDifferences) {
  const Tensor a = Tensor::matrix(1, 2, {3, 4});
  EXPECT_DOUBLE_EQ(norm(a), 5.0);
  const Tensor b = Tensor::matrix(1, 2, {3, 4.5});
  EXPECT_DOUBLE_EQ(max_abs_difference(a, b), 0.5);
  EXPECT_TRUE(allclose(a, a));
  EXPECT_FALSE(allclose(a, b, 1e-9, 1e-9));
}

TEST(Ops, AllcloseShapeMismatchFalse) {
  EXPECT_FALSE(allclose(Tensor{Shape{2}}, Tensor{Shape{3}}));
}

TEST(Init, GlorotUniformBounds) {
  util::Rng rng{1};
  const std::size_t fan_in = 10, fan_out = 6;
  const Tensor w = glorot_uniform(fan_in, fan_out, rng);
  EXPECT_EQ(w.shape(), Shape({fan_in, fan_out}));
  const double limit = std::sqrt(6.0 / (fan_in + fan_out));
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_GE(w[i], -limit);
    EXPECT_LE(w[i], limit);
  }
}

TEST(Init, HeNormalVariance) {
  util::Rng rng{2};
  const Tensor w = he_normal(100, 200, rng);
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) sum_sq += w[i] * w[i];
  const double var = sum_sq / static_cast<double>(w.size());
  EXPECT_NEAR(var, 2.0 / 100.0, 0.002);
}

TEST(Init, DeterministicForSeed) {
  util::Rng rng1{5}, rng2{5};
  const Tensor a = glorot_uniform(4, 4, rng1);
  const Tensor b = glorot_uniform(4, 4, rng2);
  EXPECT_TRUE(allclose(a, b, 0, 0));
}

}  // namespace
}  // namespace qhdl::tensor
