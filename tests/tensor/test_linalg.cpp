#include "tensor/linalg.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/init.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace qhdl::tensor {
namespace {

TEST(Cholesky, KnownFactorization) {
  // A = [[4,2],[2,3]] -> L = [[2,0],[1,sqrt(2)]].
  const Tensor a = Tensor::matrix(2, 2, {4, 2, 2, 3});
  const Tensor l = cholesky(a);
  EXPECT_DOUBLE_EQ(l.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(l.at(1, 0), 1.0);
  EXPECT_NEAR(l.at(1, 1), std::sqrt(2.0), 1e-15);
  EXPECT_DOUBLE_EQ(l.at(0, 1), 0.0);
}

TEST(Cholesky, ReconstructsRandomSpdMatrix) {
  util::Rng rng{1};
  // SPD via B Bᵀ + small ridge.
  const Tensor b = uniform(Shape{6, 6}, -1, 1, rng);
  Tensor a = gram(b);
  for (std::size_t i = 0; i < 6; ++i) a.at(i, i) += 0.1;

  const Tensor l = cholesky(a);
  const Tensor reconstructed = matmul_transpose_b(l, l);
  EXPECT_LT(max_abs_difference(reconstructed, a), 1e-10);
}

TEST(Cholesky, RejectsNonSpd) {
  const Tensor indefinite = Tensor::matrix(2, 2, {1, 2, 2, 1});
  EXPECT_THROW(cholesky(indefinite), std::invalid_argument);
  const Tensor rect = Tensor::matrix(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_THROW(cholesky(rect), std::invalid_argument);
}

TEST(Cholesky, JitterRescuesSemidefinite) {
  // Rank-1 PSD matrix; jitter makes it PD.
  const Tensor v = Tensor::matrix(1, 3, {1, 2, 3});
  const Tensor a = matmul_transpose_a(v, v);
  EXPECT_THROW(cholesky(a), std::invalid_argument);
  EXPECT_NO_THROW(cholesky(a, 1e-8));
}

TEST(LogdetSpd, MatchesKnownDeterminant) {
  const Tensor a = Tensor::matrix(2, 2, {4, 2, 2, 3});
  EXPECT_NEAR(logdet_spd(a), std::log(8.0), 1e-12);  // det = 12-4 = 8
  EXPECT_NEAR(logdet_spd(Tensor::identity(5)), 0.0, 1e-12);
}

TEST(LogdetSpd, ScalesWithDiagonal) {
  Tensor a = Tensor::identity(4);
  scale_inplace(a, 3.0);
  EXPECT_NEAR(logdet_spd(a), 4.0 * std::log(3.0), 1e-12);
}

TEST(Gram, SymmetricAndPsd) {
  util::Rng rng{2};
  const Tensor b = uniform(Shape{4, 7}, -1, 1, rng);
  const Tensor g = gram(b);
  EXPECT_EQ(g.shape(), Shape({4, 4}));
  EXPECT_DOUBLE_EQ(symmetry_error(g), 0.0);
  EXPECT_NO_THROW(cholesky(g, 1e-9));
}

TEST(Trace, SumsDiagonal) {
  const Tensor a = Tensor::matrix(3, 3, {1, 9, 9, 9, 2, 9, 9, 9, 3});
  EXPECT_DOUBLE_EQ(trace(a), 6.0);
  EXPECT_THROW(trace(Tensor::matrix(2, 3, {1, 2, 3, 4, 5, 6})),
               std::invalid_argument);
}

TEST(OuterProduct, AccumulatesScaledVvT) {
  Tensor m{Shape{3, 3}};
  const Tensor v{Shape{3}, {1, 2, 3}};
  add_outer_product(m, v, 0.5);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 3.0);
  EXPECT_DOUBLE_EQ(m.at(2, 1), 3.0);
  EXPECT_DOUBLE_EQ(symmetry_error(m), 0.0);
  EXPECT_THROW(add_outer_product(m, Tensor{Shape{2}}, 1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace qhdl::tensor

namespace qhdl::tensor {
namespace {

TEST(CholeskySolve, RecoversKnownSolution) {
  // A = [[4,2],[2,3]], x = [1, -2] -> b = A x = [0, -4].
  const Tensor a = Tensor::matrix(2, 2, {4, 2, 2, 3});
  const Tensor b = Tensor::matrix(2, 1, {0, -4});
  const Tensor x = solve_spd(a, b);
  EXPECT_NEAR(x.at(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(x.at(1, 0), -2.0, 1e-12);
}

TEST(CholeskySolve, MultipleRightHandSides) {
  util::Rng rng{7};
  const Tensor basis = uniform(Shape{5, 5}, -1, 1, rng);
  Tensor a = gram(basis);
  for (std::size_t i = 0; i < 5; ++i) a.at(i, i) += 0.5;
  const Tensor x_true = uniform(Shape{5, 3}, -1, 1, rng);
  const Tensor b = matmul(a, x_true);
  const Tensor x = solve_spd(a, b);
  EXPECT_LT(max_abs_difference(x, x_true), 1e-9);
}

TEST(CholeskySolve, RidgeRegularizesSingularSystem) {
  const Tensor v = Tensor::matrix(1, 3, {1, 2, 3});
  const Tensor a = matmul_transpose_a(v, v);  // rank 1
  const Tensor b = Tensor::matrix(3, 1, {1, 2, 3});
  EXPECT_NO_THROW(solve_spd(a, b, 1e-6));
}

TEST(CholeskySolve, ShapeMismatchThrows) {
  const Tensor l = cholesky(Tensor::identity(3));
  EXPECT_THROW(cholesky_solve(l, Tensor{Shape{2, 1}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace qhdl::tensor
