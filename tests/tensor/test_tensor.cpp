#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

namespace qhdl::tensor {
namespace {

TEST(Shape, SizeAndRank) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s.size(), 24u);
  EXPECT_EQ(s[1], 3u);
}

TEST(Shape, ScalarShape) {
  const Shape s{};
  EXPECT_EQ(s.rank(), 0u);
  EXPECT_EQ(s.size(), 1u);
}

TEST(Shape, DimBoundsChecked) {
  const Shape s{2, 3};
  EXPECT_EQ(s.dim(0), 2u);
  EXPECT_THROW(s.dim(2), std::out_of_range);
}

TEST(Shape, EqualityAndToString) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_EQ(Shape({2, 3}).to_string(), "[2, 3]");
}

TEST(Shape, CheckSameShapeThrowsWithContext) {
  try {
    check_same_shape(Shape{2}, Shape{3}, "ctx");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("ctx"), std::string::npos);
  }
}

TEST(Tensor, DefaultIsScalarZero) {
  const Tensor t;
  EXPECT_EQ(t.rank(), 0u);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_DOUBLE_EQ(t[0], 0.0);
}

TEST(Tensor, ZeroInitialized) {
  const Tensor t{Shape{3, 4}};
  EXPECT_EQ(t.size(), 12u);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_DOUBLE_EQ(t[i], 0.0);
}

TEST(Tensor, ExplicitDataValidated) {
  EXPECT_NO_THROW((Tensor{Shape{2, 2}, {1, 2, 3, 4}}));
  EXPECT_THROW((Tensor{Shape{2, 2}, {1, 2, 3}}), std::invalid_argument);
}

TEST(Tensor, Factories) {
  EXPECT_DOUBLE_EQ(Tensor::ones(Shape{2})[1], 1.0);
  EXPECT_DOUBLE_EQ(Tensor::full(Shape{2}, 7.0)[0], 7.0);
  EXPECT_DOUBLE_EQ(Tensor::scalar(3.5)[0], 3.5);

  const Tensor r = Tensor::row({1, 2, 3});
  EXPECT_EQ(r.shape(), Shape({1, 3}));

  const Tensor m = Tensor::matrix(2, 2, {1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(m.at(1, 0), 3.0);

  const Tensor eye = Tensor::identity(3);
  EXPECT_DOUBLE_EQ(eye.at(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(eye.at(0, 1), 0.0);
}

TEST(Tensor, RankTwoAccessChecked) {
  Tensor t{Shape{2, 3}};
  t.at(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(t.at(1, 2), 5.0);
  EXPECT_THROW(t.at(2, 0), std::out_of_range);
  EXPECT_THROW(t.at(0, 3), std::out_of_range);
  Tensor v{Shape{4}};
  EXPECT_THROW(v.at(0, 0), std::logic_error);
}

TEST(Tensor, FlatAccessChecked) {
  Tensor t{Shape{2}};
  EXPECT_THROW(t.at(std::size_t{2}), std::out_of_range);
}

TEST(Tensor, RowsColsRequireRank2) {
  const Tensor m{Shape{3, 5}};
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 5u);
  const Tensor v{Shape{3}};
  EXPECT_THROW(v.rows(), std::logic_error);
}

TEST(Tensor, ReshapePreservesCount) {
  Tensor t{Shape{2, 6}};
  t.reshape(Shape{3, 4});
  EXPECT_EQ(t.shape(), Shape({3, 4}));
  EXPECT_THROW(t.reshape(Shape{5}), std::invalid_argument);
  const Tensor r = t.reshaped(Shape{12});
  EXPECT_EQ(r.rank(), 1u);
}

TEST(Tensor, ValueSemantics) {
  Tensor a{Shape{2}};
  a[0] = 1.0;
  Tensor b = a;
  b[0] = 2.0;
  EXPECT_DOUBLE_EQ(a[0], 1.0);  // deep copy
}

TEST(Tensor, FillAndToString) {
  Tensor t{Shape{2, 2}};
  t.fill(1.25);
  EXPECT_DOUBLE_EQ(t[3], 1.25);
  EXPECT_NE(t.to_string().find("1.25"), std::string::npos);
}

}  // namespace
}  // namespace qhdl::tensor
